"""The :class:`DeploymentPlan`: one declarative object for a whole fleet.

A plan captures everything the paper's Algorithm 1 decides — the class
partition, each sub-model's head-pruning number and resource footprint,
the device fleet, the sub-model→device mapping — plus the predicted
latency/energy/accuracy the planner scored it with.  The same plan object
drives the analytic simulator (:meth:`DeploymentPlan.deployment_spec`),
the process-based emulation (``WorkerSpec.from_plan`` /
``EdgeCluster.from_plan``), and the serving layer
(:class:`repro.planning.execute.PlannedSystem`), and it round-trips
through JSON so operators can version, diff, and ship it.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from ..assignment import (
    AssignmentPlan,
    DeviceSpec,
    InfeasibleAssignment,
    SubModelSpec,
    validate_plan,
)
from ..edge.codec import get_codec
from ..edge.device import DeviceModel
from ..edge.network import DEFAULT_OVERHEAD_S, LinkModel, StarTopology, TC_CAP_BPS
from ..edge.simulator import DeploymentSpec, SubModelProfile
from ..splitting.class_assignment import validate_partition
from .. import store as store_recipes

FORMAT_VERSION = 1

# Key under which the fusion MLP's artifact ref is recorded in
# DeploymentPlan.artifacts (sub-models are keyed by their model_id).
FUSION_ARTIFACT = "fusion"

# The subset of DeploymentPlan.build that determines the trained weights.
# Scoring knobs ("scoring", "codec_selection") and the wire codec change
# predictions, not parameters, so they must not change artifact digests.
_TRAIN_BUILD_KEYS = ("recipe", "model_kind", "image_size", "train_fusion",
                     "fusion_epochs")


@dataclasses.dataclass(frozen=True)
class PlannedSubModel:
    """One sub-model's identity, footprint, and rebuild recipe."""

    model_id: str
    classes: tuple[int, ...]           # class subset this sub-model covers
    hp: int                            # head-pruning number (0 = unpruned)
    size_bytes: int
    flops_per_sample: float
    feature_dim: int                   # width of forward_features output
    model_kind: str                    # repro.edge.runtime.MODEL_KINDS key
    model_config: dict                 # exact config dict to rebuild the module
    quant: str = "fp32"                # weight scheme served ("fp32"/"int8")

    def to_spec(self) -> SubModelSpec:
        """The assignment-problem view of this sub-model."""
        return SubModelSpec(model_id=self.model_id,
                            size_bytes=self.size_bytes,
                            flops_per_sample=self.flops_per_sample,
                            classes=self.classes)

    def profile(self, codec: str = "raw32") -> SubModelProfile:
        """The DES-simulator view of this sub-model.

        ``codec`` sets the wire codec the profile's per-sample feature
        bytes are estimated under, so DES scoring sees the same payload
        reduction the live fleet would.
        """
        return SubModelProfile(model_id=self.model_id,
                               flops_per_sample=self.flops_per_sample,
                               feature_dim=self.feature_dim,
                               codec=codec)

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["classes"] = list(self.classes)
        return data

    @staticmethod
    def from_dict(data: dict) -> "PlannedSubModel":
        data = dict(data)
        data["classes"] = tuple(int(c) for c in data["classes"])
        return PlannedSubModel(**data)


@dataclasses.dataclass(frozen=True)
class PlannedDevice:
    """One device's resource envelope plus its uplink parameters."""

    device_id: str
    macs_per_second: float
    memory_bytes: int
    energy_flops: float
    link_bandwidth_bps: float = TC_CAP_BPS
    link_overhead_s: float = DEFAULT_OVERHEAD_S

    def device_model(self) -> DeviceModel:
        return DeviceModel(device_id=self.device_id,
                           macs_per_second=self.macs_per_second,
                           memory_bytes=self.memory_bytes,
                           energy_flops=self.energy_flops)

    def link_model(self) -> LinkModel:
        return LinkModel(bandwidth_bps=self.link_bandwidth_bps,
                         overhead_seconds=self.link_overhead_s)

    def to_spec(self) -> DeviceSpec:
        return DeviceSpec(device_id=self.device_id,
                          memory_bytes=self.memory_bytes,
                          energy_flops=self.energy_flops)

    @staticmethod
    def from_device(device: DeviceModel,
                    link: LinkModel | None = None) -> "PlannedDevice":
        link = link or LinkModel()
        return PlannedDevice(device_id=device.device_id,
                             macs_per_second=device.macs_per_second,
                             memory_bytes=device.memory_bytes,
                             energy_flops=device.energy_flops,
                             link_bandwidth_bps=link.bandwidth_bps,
                             link_overhead_s=link.overhead_seconds)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "PlannedDevice":
        return PlannedDevice(**data)


@dataclasses.dataclass(frozen=True)
class PlanPrediction:
    """What the planner expects the deployment to deliver."""

    latency_s: float                   # mean per-sample end-to-end latency
    max_latency_s: float
    makespan_s: float
    throughput_sps: float              # samples / second over the DES run
    energy_j: float                    # fleet-wide joules for the DES run
    accuracy: float | None = None      # None when no trained system exists

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "PlanPrediction":
        return PlanPrediction(**data)


@dataclasses.dataclass
class DeploymentPlan:
    """A complete, executable deployment decision (Algorithm 1's output).

    ``mapping`` assigns every sub-model to a device; several sub-models may
    share one device.  ``build`` is a free-form recipe dict recording how
    the concrete model weights are (re)produced — deterministic seeds make
    a JSON plan sufficient to reboot an identical fleet.  ``history``
    accumulates replanning events (see :func:`repro.planning.replan.
    replan_on_failure`) so a recovered plan documents what failed and what
    moved.
    """

    num_classes: int
    partition: list[list[int]]
    submodels: list[PlannedSubModel]
    devices: list[PlannedDevice]
    mapping: dict[str, str]            # model_id -> device_id
    fusion_device: PlannedDevice
    fusion_flops: float
    fusion_config: dict                # repro.models.fusion.FusionConfig dict
    num_samples: int = 1               # workload sizing used for assignment
    seed: int = 0
    codec: str = "raw32"               # wire codec for shipped features
    # Artifact refs: model_id (plus FUSION_ARTIFACT) -> recipe digest in
    # a repro.store.ArtifactStore.  Populated the first time the plan is
    # materialized against a store; a later boot with the same store
    # warm-loads the checkpoints instead of retraining.
    artifacts: dict[str, str] = dataclasses.field(default_factory=dict)
    prediction: PlanPrediction | None = None
    build: dict = dataclasses.field(default_factory=dict)
    history: list[dict] = dataclasses.field(default_factory=list)
    format_version: int = FORMAT_VERSION

    # -- lookups -------------------------------------------------------
    @property
    def model_ids(self) -> list[str]:
        return [m.model_id for m in self.submodels]

    @property
    def device_ids(self) -> list[str]:
        return [d.device_id for d in self.devices]

    def submodel(self, model_id: str) -> PlannedSubModel:
        for model in self.submodels:
            if model.model_id == model_id:
                return model
        raise KeyError(f"unknown sub-model {model_id!r}")

    def device(self, device_id: str) -> PlannedDevice:
        for dev in self.devices:
            if dev.device_id == device_id:
                return dev
        if device_id == self.fusion_device.device_id:
            return self.fusion_device
        raise KeyError(f"unknown device {device_id!r}")

    def device_of(self, model_id: str) -> str:
        return self.mapping[model_id]

    def models_on(self, device_id: str) -> list[str]:
        return [m for m, d in self.mapping.items() if d == device_id]

    # -- derived views -------------------------------------------------
    def assignment_plan(self) -> AssignmentPlan:
        """Residual-resource view of the mapping (Eq. 1 bookkeeping)."""
        residual_memory = {d.device_id: d.memory_bytes for d in self.devices}
        residual_energy = {d.device_id: float(d.energy_flops)
                           for d in self.devices}
        for model_id, device_id in self.mapping.items():
            model = self.submodel(model_id)
            residual_memory[device_id] -= model.size_bytes
            residual_energy[device_id] -= (model.flops_per_sample
                                           * self.num_samples)
        return AssignmentPlan(mapping=dict(self.mapping),
                              residual_memory=residual_memory,
                              residual_energy=residual_energy)

    def deployment_spec(self) -> DeploymentSpec:
        """The DES-simulator view of this plan (for scoring/what-ifs)."""
        links = {d.device_id: d.link_model() for d in self.devices}
        links[self.fusion_device.device_id] = self.fusion_device.link_model()
        return DeploymentSpec(
            devices=[d.device_model() for d in self.devices],
            placement=dict(self.mapping),
            profiles={m.model_id: m.profile(codec=self.codec)
                      for m in self.submodels},
            fusion_device=self.fusion_device.device_model(),
            fusion_flops=self.fusion_flops,
            topology=StarTopology(device_links=links))

    def feature_dims(self) -> dict[str, int]:
        return {m.model_id: m.feature_dim for m in self.submodels}

    # -- artifact rebuild recipes --------------------------------------
    def train_recipe(self) -> dict:
        """The weight-determining slice of ``build`` (digest-stable)."""
        return {key: self.build[key] for key in _TRAIN_BUILD_KEYS
                if key in self.build}

    def submodel_recipe(self, model_id: str,
                        quant: str | None = None) -> dict:
        """The deterministic rebuild recipe one sub-model is keyed by.

        Everything that determines the served weights — kind, exact
        config, head-pruning number, class group, per-model seed, the
        training protocol, and the quantization scheme — and nothing
        that doesn't (codec, mapping, scoring), so a replanned or
        re-scored plan keeps its artifacts.  The shape is
        :func:`repro.store.submodel_recipe` (shared with the demo
        builder, so digest schemas cannot drift).  ``quant`` overrides
        the sub-model's recorded scheme, letting callers address a
        sibling variant (e.g. the fp32 artifact an int8 one is derived
        from) without mutating the plan.
        """
        index = self.model_ids.index(model_id)
        sub = self.submodels[index]
        if quant is None:
            quant = getattr(sub, "quant", "fp32")
        return store_recipes.submodel_recipe(
            kind=sub.model_kind, config=sub.model_config, hp=sub.hp,
            classes=sub.classes, seed=self.seed + index,
            train=self.train_recipe(), quant=quant)

    def fusion_recipe(self) -> dict:
        """The fusion MLP's rebuild recipe.

        Fusion trains on the concatenated features of *all* sub-models,
        so its identity embeds every sub-model recipe: retrain any
        sub-model and the fusion artifact is invalidated with it.  The
        embedded recipes are always the fp32 ones — fusion trains
        against full-precision features, and serving a quantized weight
        variant must not orphan the shared fusion artifact.
        """
        return store_recipes.fusion_recipe(
            config=self.fusion_config, seed=self.seed + 1000,
            train=self.train_recipe(),
            submodels=[self.submodel_recipe(m.model_id, quant="fp32")
                       for m in self.submodels])

    def artifact_recipes(self) -> dict[str, dict]:
        """All rebuild recipes, keyed like :attr:`artifacts`."""
        recipes = {m.model_id: self.submodel_recipe(m.model_id)
                   for m in self.submodels}
        recipes[FUSION_ARTIFACT] = self.fusion_recipe()
        return recipes

    def validate(self) -> None:
        """Raise if the plan is internally inconsistent or over capacity."""
        validate_partition(self.partition, self.num_classes)
        get_codec(self.codec)          # KeyError on an unknown codec name
        if sorted(self.mapping) != sorted(self.model_ids):
            raise InfeasibleAssignment(
                "mapping must place every sub-model exactly once")
        known = set(self.device_ids)
        for model_id, device_id in self.mapping.items():
            if device_id not in known:
                raise InfeasibleAssignment(
                    f"sub-model {model_id!r} mapped to unknown device "
                    f"{device_id!r}")
        plan = AssignmentPlan(mapping=dict(self.mapping),
                              residual_memory={}, residual_energy={})
        validate_plan(plan, [d.to_spec() for d in self.devices],
                      [m.to_spec() for m in self.submodels],
                      num_samples=self.num_samples)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format_version": self.format_version,
            "num_classes": self.num_classes,
            "partition": [list(group) for group in self.partition],
            "submodels": [m.to_dict() for m in self.submodels],
            "devices": [d.to_dict() for d in self.devices],
            "mapping": dict(self.mapping),
            "fusion_device": self.fusion_device.to_dict(),
            "fusion_flops": self.fusion_flops,
            "fusion_config": dict(self.fusion_config),
            "num_samples": self.num_samples,
            "seed": self.seed,
            "codec": self.codec,
            "artifacts": dict(self.artifacts),
            "prediction": None if self.prediction is None
            else self.prediction.to_dict(),
            "build": dict(self.build),
            "history": [dict(event) for event in self.history],
        }

    @staticmethod
    def from_dict(data: dict) -> "DeploymentPlan":
        version = data.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported plan format_version {version!r}")
        prediction = data.get("prediction")
        return DeploymentPlan(
            num_classes=int(data["num_classes"]),
            partition=[[int(c) for c in group] for group in data["partition"]],
            submodels=[PlannedSubModel.from_dict(m) for m in data["submodels"]],
            devices=[PlannedDevice.from_dict(d) for d in data["devices"]],
            mapping={str(m): str(d) for m, d in data["mapping"].items()},
            fusion_device=PlannedDevice.from_dict(data["fusion_device"]),
            fusion_flops=float(data["fusion_flops"]),
            fusion_config=dict(data["fusion_config"]),
            num_samples=int(data.get("num_samples", 1)),
            seed=int(data.get("seed", 0)),
            codec=str(data.get("codec", "raw32")),
            artifacts={str(k): str(v)
                       for k, v in data.get("artifacts", {}).items()},
            prediction=None if prediction is None
            else PlanPrediction.from_dict(prediction),
            build=dict(data.get("build", {})),
            history=[dict(event) for event in data.get("history", [])],
        )

    def to_json(self, indent: int | None = 2) -> str:
        # allow_nan=False: a NaN prediction field would otherwise ship as
        # the non-standard `NaN` token and break strict JSON readers.
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    @staticmethod
    def from_json(text: str) -> "DeploymentPlan":
        return DeploymentPlan.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @staticmethod
    def load(path: str | Path) -> "DeploymentPlan":
        return DeploymentPlan.from_json(Path(path).read_text())
