"""Deployment planning: one declarative plan from partition to serving.

The planning layer closes the paper's Algorithm 1 loop into a single
artifact: a :class:`DeploymentPlan` (class partition, per-sub-model
head-pruning number, device mapping, predicted latency/energy/accuracy)
produced by a :class:`Planner` that composes the class partitioner, the
analytic head-pruning schedule, greedy device assignment, analytic
profiling, and the discrete-event simulator — then executed directly:
:class:`PlannedSystem` boots an edge cluster and inference server from the
plan, and :func:`replan_on_failure` reassigns a failed device's sub-models
onto surviving devices' residual capacity at runtime so fusion recovers
real features instead of zero-filling forever.

:mod:`repro.planning.capacity` scales the planning question up from one
cluster to a fleet: :func:`plan_capacity` sweeps device class × fleet
size × codec/quant against an arrival trace through the vectorized DES
and returns the cost/latency Pareto frontier (the ``repro capacity``
CLI).
"""

from .capacity import (
    DEVICE_CLASSES,
    CapacityPoint,
    CapacityReport,
    DeviceClass,
    cheapest_within_slo,
    pareto_frontier,
    plan_capacity,
)
from .execute import (
    PlannedSystem,
    plan_artifact_digests,
    plan_demo_system,
    quantize_plan_artifacts,
)
from .plan import (
    FUSION_ARTIFACT,
    DeploymentPlan,
    PlanPrediction,
    PlannedDevice,
    PlannedSubModel,
)
from .planner import (
    DEFAULT_CANDIDATE_CODECS,
    Planner,
    PlannerConfig,
    PlanningError,
    score_plan,
)
from .replan import ReplanInfeasible, replan_on_failure, residual_capacity

__all__ = [
    "CapacityPoint",
    "CapacityReport",
    "DEFAULT_CANDIDATE_CODECS",
    "DEVICE_CLASSES",
    "DeploymentPlan",
    "DeviceClass",
    "FUSION_ARTIFACT",
    "PlanPrediction",
    "PlannedDevice",
    "PlannedSubModel",
    "PlannedSystem",
    "Planner",
    "PlannerConfig",
    "PlanningError",
    "ReplanInfeasible",
    "cheapest_within_slo",
    "pareto_frontier",
    "plan_artifact_digests",
    "plan_capacity",
    "plan_demo_system",
    "quantize_plan_artifacts",
    "replan_on_failure",
    "residual_capacity",
    "score_plan",
]
