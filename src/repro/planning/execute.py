"""Plan → execution bridge: boot and operate a fleet from a plan.

:class:`PlannedSystem` pairs a :class:`~repro.planning.plan.DeploymentPlan`
with the concrete modules it describes and turns it into running
infrastructure: ``make_cluster()`` boots an
:class:`~repro.edge.runtime.EdgeCluster` (one worker per sub-model, on the
plan-assigned devices), ``make_server()`` wraps it in a
:class:`~repro.serving.server.InferenceServer` whose replanner hook calls
:func:`repro.planning.replan.replan_on_failure` when a device dies and
spawns replacement workers on the surviving devices — so fusion recovers
real features instead of zero-filling the dead slots forever.

Because every plan carries a deterministic ``build`` recipe (seeds,
training protocol), :meth:`PlannedSystem.from_plan` can rebuild the exact
same weights from nothing but the JSON plan — the round trip
``plan → JSON → plan → serve`` is lossless.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..edge.device import DeviceModel
from ..edge.network import LinkModel
from ..edge.runtime import MODEL_KINDS, EdgeCluster, WorkerSpec
from ..models.fusion import FusionConfig, FusionMLP, build_fusion_for
from ..profiling import model_flops, module_param_count, param_bytes
from ..serving.demo import (
    DEMO_RECIPE,
    _tiny_model,
    demo_dataset,
    fused_labels,
    train_demo_system,
)
from ..serving.server import InferenceServer, ServerConfig
from ..splitting.class_assignment import balanced_class_partition
from ..store import ArtifactStore, recipe_digest, warm_load
from .plan import FUSION_ARTIFACT, DeploymentPlan, PlannedSubModel
from .planner import Planner, PlannerConfig
from .replan import replan_on_failure


def _build_model(kind: str, config: dict, rng: np.random.Generator):
    entry = MODEL_KINDS[kind]
    cfg = entry.config_from_dict(dict(config))
    try:
        return entry.build(cfg, rng=rng)
    except TypeError:                  # custom kind without an rng kwarg
        return entry.build(cfg)


def _build_submodel(plan: DeploymentPlan, index: int) -> nn.Module:
    """Fresh module for one planned sub-model, in its serving scheme.

    A quantized sub-model gets its module surgery applied *before* any
    state load: :func:`repro.nn.quantize_module` renames the weight
    buffers (``weight`` → ``weight_q8``/``weight_scale``), so the module
    must already be quantized for an int8 artifact's state dict to load
    strictly.
    """
    sub = plan.submodels[index]
    model = _build_model(sub.model_kind, sub.model_config,
                         np.random.default_rng(plan.seed + index))
    quant = getattr(sub, "quant", "fp32")
    if quant != "fp32":
        model = nn.quantize_module(model, scheme=quant)
    return model


def plan_artifact_digests(plan: DeploymentPlan) -> dict[str, str]:
    """Recipe digests for every artifact a plan rebuilds (incl. fusion)."""
    return {name: recipe_digest(recipe)
            for name, recipe in plan.artifact_recipes().items()}


def _warm_boot_from_store(plan: DeploymentPlan, store: ArtifactStore,
                          digests: dict[str, str],
                          ) -> tuple[list[nn.Module], FusionMLP] | None:
    """Checkpoint-load every module of ``plan`` from ``store``.

    Returns ``None`` when any artifact is missing (caller falls back to
    the deterministic rebuild); integrity failures raise
    :class:`repro.store.ArtifactCorrupt` rather than silently retraining
    over a tampered store.
    """
    if not all(store.has(digest) for digest in digests.values()):
        return None
    models = [_build_submodel(plan, index)
              for index in range(len(plan.submodels))]
    fusion = FusionMLP(FusionConfig.from_dict(dict(plan.fusion_config)),
                       rng=np.random.default_rng(plan.seed + 1000))
    modules: dict[str, nn.Module] = {
        sub.model_id: model
        for sub, model in zip(plan.submodels, models)}
    modules[FUSION_ARTIFACT] = fusion
    if not warm_load(store, digests, modules):
        return None                    # pragma: no cover - raced removal
    return models, fusion


def _populate_store(plan: DeploymentPlan, store: ArtifactStore,
                    digests: dict[str, str], models: list[nn.Module],
                    fusion: FusionMLP) -> None:
    """Write every module of a cold-built system into the store."""
    recipes = plan.artifact_recipes()
    for sub, model in zip(plan.submodels, models):
        store.put(digests[sub.model_id], model,
                  config=dict(sub.model_config), kind=sub.model_kind,
                  meta={"model_id": sub.model_id,
                        "quant": getattr(sub, "quant", "fp32"),
                        "recipe": recipes[sub.model_id]})
    store.put(digests[FUSION_ARTIFACT], fusion,
              config=dict(plan.fusion_config), kind=FUSION_ARTIFACT,
              meta={"model_id": FUSION_ARTIFACT,
                    "quant": "fp32",
                    "recipe": recipes[FUSION_ARTIFACT]})


def _quantize_planned_models(plan: DeploymentPlan,
                             models: list[nn.Module]) -> list[nn.Module]:
    """Convert trained fp32 modules to each sub-model's serving scheme."""
    return [nn.quantize_module(model, scheme=sub.quant)
            if getattr(sub, "quant", "fp32") != "fp32" else model
            for sub, model in zip(plan.submodels, models)]


def quantize_plan_artifacts(plan: DeploymentPlan, store: ArtifactStore,
                            scheme: str = "int8") -> list[dict]:
    """Derive quantized store artifacts from a plan's fp32 artifacts.

    For every sub-model the fp32 checkpoint is loaded from ``store``
    (by the plan's recorded ref or the fp32 recipe digest), its weights
    are per-channel quantized, and the result is stored under the
    quantized recipe's own digest — so fp32 and int8 variants coexist
    and dedup independently.  Existing quantized artifacts are kept
    (the derivation is deterministic).  Returns one report row per
    sub-model with both digests and byte sizes; raises ``KeyError``
    when a needed fp32 artifact is absent.
    """
    rows: list[dict] = []
    for index, sub in enumerate(plan.submodels):
        fp32_digest = recipe_digest(
            plan.submodel_recipe(sub.model_id, quant="fp32"))
        if getattr(sub, "quant", "fp32") == "fp32" \
                and plan.artifacts.get(sub.model_id):
            fp32_digest = plan.artifacts[sub.model_id]
        quant_recipe = plan.submodel_recipe(sub.model_id, quant=scheme)
        quant_digest = recipe_digest(quant_recipe)
        if not store.has(fp32_digest):
            raise KeyError(
                f"store has no fp32 artifact for {sub.model_id!r} "
                f"(digest {fp32_digest[:12]}); run the plan against the "
                "store first to populate it")
        state, config = store.get(fp32_digest)
        qstate = nn.quantize_state_dict(state)
        if not store.has(quant_digest):
            model = _build_model(sub.model_kind, config or sub.model_config,
                                 np.random.default_rng(plan.seed + index))
            model = nn.quantize_module(model, scheme=scheme)
            model.load_state_dict(qstate)
            store.put(quant_digest, model,
                      config=dict(config or sub.model_config),
                      kind=sub.model_kind,
                      meta={"model_id": sub.model_id, "quant": scheme,
                            "recipe": quant_recipe})
        rows.append({"model_id": sub.model_id,
                     "fp32_digest": fp32_digest,
                     "quant_digest": quant_digest,
                     "fp32_bytes": nn.state_dict_num_bytes(state),
                     "quant_bytes": nn.state_dict_num_bytes(qstate)})
    return rows


@dataclasses.dataclass
class PlannedSystem:
    """A deployment plan plus the concrete models/fusion it describes."""

    plan: DeploymentPlan
    models: list[nn.Module]            # aligned with plan.submodels
    fusion: FusionMLP
    time_scale: float = 0.0
    transport: str = "multiprocess"    # repro.edge.transport substrate
    warm_booted: bool = False          # weights came from an artifact store

    def __post_init__(self):
        # worker_id -> model_id; starts as identity (plan-booted clusters
        # name workers after their sub-model) and grows with every
        # replanning respawn ("submodel-0@edge-1" and the like).
        self._worker_model = {m.model_id: m.model_id
                              for m in self.plan.submodels}

    # -- plumbing ------------------------------------------------------
    @property
    def input_shape(self) -> tuple[int, int, int]:
        config = self.plan.submodels[0].model_config
        return (int(config["in_channels"]), int(config["image_size"]),
                int(config["image_size"]))

    @property
    def num_classes(self) -> int:
        return self.plan.num_classes

    def make_cluster(self) -> EdgeCluster:
        return EdgeCluster.from_plan(self.plan, self.models,
                                     time_scale=self.time_scale,
                                     transport=self.transport)

    def make_server(self, config: ServerConfig | None = None,
                    replan: bool = True) -> InferenceServer:
        """A serving stack for this plan; ``replan=False`` keeps the old
        zero-fill-forever failure behaviour (the comparison baseline)."""
        return InferenceServer(self.make_cluster(), self.fusion,
                               config=config,
                               replanner=self.replan_hook if replan else None)

    # -- local (in-process) reference predictions ----------------------
    def local_fused_labels(self, x: np.ndarray,
                           zero_models: tuple[int, ...] = ()) -> np.ndarray:
        """Reference fused prediction; ``zero_models`` emulates dead slots.

        The plan's wire codec is round-tripped over each feature array,
        so the reference matches what the served fleet actually fuses.
        """
        return fused_labels(self.models, self.fusion, x,
                            zero_indices=zero_models,
                            codec=self.plan.codec)

    def local_accuracy(self, x: np.ndarray, y: np.ndarray,
                       zero_models: tuple[int, ...] = ()) -> float:
        return float((self.local_fused_labels(x, zero_models) == y).mean())

    def eval_dataset(self):
        """The (seeded) dataset of the demo recipe, for accuracy checks."""
        build = self.plan.build
        if build.get("recipe") != DEMO_RECIPE:
            raise ValueError("plan has no demo dataset recipe")
        return demo_dataset(int(build["image_size"]), self.plan.seed)

    # -- replanning ----------------------------------------------------
    def replan_hook(self, server: InferenceServer,
                    down_workers: list[str]) -> dict[str, str] | None:
        """``InferenceServer`` replanner: respawn orphans on survivors.

        Failure is treated at device granularity (the paper's scenario):
        every sub-model on a dead worker's device is reassigned via
        :func:`replan_on_failure` and gets a fresh worker on its new
        device.  Returns the slot→worker hosting updates, or raises
        :class:`~repro.planning.replan.ReplanInfeasible` (the server then
        stays in zero-fill degraded mode).
        """
        down_models = {self._worker_model[w] for w in down_workers
                       if w in self._worker_model}
        down_devices = {self.plan.mapping[m] for m in down_models
                        if m in self.plan.mapping}
        if not down_devices:
            return None
        new_plan = replan_on_failure(self.plan, down_devices)
        moved = {m: d for m, d in new_plan.mapping.items()
                 if self.plan.mapping[m] != d}
        model_index = {m.model_id: i
                       for i, m in enumerate(self.plan.submodels)}
        hosting: dict[str, str] = {}
        spawned: list[str] = []
        try:
            for model_id, device_id in sorted(moved.items()):
                worker_id = f"{model_id}@{device_id}"
                spec = WorkerSpec.from_plan(
                    new_plan, model_id, self.models[model_index[model_id]],
                    worker_id=worker_id)
                server.cluster.add_worker(spec)
                spawned.append(worker_id)
                self._worker_model[worker_id] = model_id
                hosting[model_id] = worker_id
        except Exception:
            # Roll back a partial recovery: retire replacements already
            # spawned so they neither leak as idle processes nor leave
            # the hosting map split-brained; the plan stays unchanged and
            # the server keeps zero-filling the failed slots.
            for worker_id in spawned:
                server.cluster.mark_down(worker_id, "replan rolled back")
                self._worker_model.pop(worker_id, None)
            raise
        # Retire live co-hosted workers on the failed devices: the device
        # is considered gone, and their sub-models have moved.
        for worker_id, model_id in list(self._worker_model.items()):
            if model_id in moved and worker_id != hosting[model_id] \
                    and server.cluster.is_alive(worker_id):
                server.cluster.mark_down(worker_id,
                                         "device retired by replanning")
        self.plan = new_plan
        return hosting

    # -- rolling deployment --------------------------------------------
    def swap_from_store(self, server: InferenceServer, model_id: str,
                        store: ArtifactStore,
                        digest: str | None = None,
                        quant: str | None = None) -> str:
        """Zero-downtime rolling swap of one sub-model from an artifact.

        Boots a fresh worker for ``model_id`` from the store artifact
        (``digest`` defaults to the plan's recorded ref, falling back to
        the recipe digest), then hands it to
        :meth:`~repro.serving.server.InferenceServer.swap_worker`, which
        drains in-flight batches and atomically retargets the fusion
        slot — no request is dropped.  Returns the new worker id.

        ``quant`` retargets the slot to another weight scheme mid-flight
        (the live fp32→int8 rollout): the plan's sub-model entry is
        switched to the scheme, and a missing quantized artifact is
        derived on demand from the fp32 one in the store.
        """
        index = self.plan.model_ids.index(model_id)
        sub = self.plan.submodels[index]
        if quant is not None and quant != getattr(sub, "quant", "fp32"):
            if quant != "fp32":
                quantize_plan_artifacts(self.plan, store, scheme=quant)
            sub = dataclasses.replace(sub, quant=quant)
            self.plan.submodels[index] = sub
            self.plan.artifacts.pop(model_id, None)  # old variant's ref
            if digest is None:
                digest = recipe_digest(self.plan.submodel_recipe(model_id))
        if digest is None:
            digest = self.plan.artifacts.get(model_id) \
                or recipe_digest(self.plan.submodel_recipe(model_id))
        state, config = store.get(digest)
        model = _build_model(sub.model_kind, config or sub.model_config,
                             np.random.default_rng(self.plan.seed + index))
        if getattr(sub, "quant", "fp32") != "fp32":
            model = nn.quantize_module(model, scheme=sub.quant)
        model.load_state_dict(state)
        size = nn.state_dict_num_bytes(state)
        if size != sub.size_bytes:     # keep assignment bookkeeping honest
            sub = dataclasses.replace(sub, size_bytes=size)
            self.plan.submodels[index] = sub
        generation = 1 + sum(
            1 for worker in server.cluster.worker_ids
            if worker.startswith(f"{model_id}@swap"))
        worker_id = f"{model_id}@swap{generation}"
        spec = WorkerSpec.from_plan(self.plan, model_id, model,
                                    worker_id=worker_id)
        swapped = server.swap_worker(model_id, spec)
        self._worker_model[worker_id] = model_id
        self.models[index] = model     # keep the local twin in sync
        self.plan.artifacts[model_id] = digest
        return swapped

    # -- deterministic rebuild -----------------------------------------
    @staticmethod
    def from_plan(plan: DeploymentPlan,
                  time_scale: float = 0.0,
                  transport: str = "multiprocess",
                  store: ArtifactStore | None = None) -> "PlannedSystem":
        """Rebuild models, weights, and fusion from a plan's recipe.

        Every module is constructed from its stored config with the
        plan-seeded rng, then (for trained recipes) re-trained with the
        recorded deterministic protocol — so a JSON plan alone is enough
        to reproduce the exact system that was planned.

        ``store`` short-circuits the expensive part: when every artifact
        the plan references is present, weights are checkpoint-loaded
        (warm boot, no training); otherwise the cold rebuild runs and its
        results populate the store.  Either way ``plan.artifacts``
        records the refs afterwards.
        """
        digests: dict[str, str] = {}
        if store is not None:
            digests = plan_artifact_digests(plan)
            loaded = _warm_boot_from_store(plan, store, digests)
            if loaded is not None:
                models, fusion = loaded
                plan.artifacts = dict(digests)
                return PlannedSystem(plan=plan, models=models, fusion=fusion,
                                     time_scale=time_scale,
                                     transport=transport, warm_booted=True)
        # Cold rebuild always trains in fp32; quantized serving schemes
        # are applied afterwards (quantization is post-training, and the
        # shared fusion artifact is defined over fp32 features).
        models = [_build_model(sub.model_kind, sub.model_config,
                               np.random.default_rng(plan.seed + index))
                  for index, sub in enumerate(plan.submodels)]
        fusion = FusionMLP(FusionConfig.from_dict(dict(plan.fusion_config)),
                           rng=np.random.default_rng(plan.seed + 1000))
        build = plan.build
        if build.get("train_fusion"):
            if build.get("recipe") != DEMO_RECIPE:
                raise ValueError(
                    f"unknown training recipe {build.get('recipe')!r}")
            train_demo_system(models, fusion,
                              image_size=int(build["image_size"]),
                              seed=plan.seed,
                              fusion_epochs=int(build.get("fusion_epochs", 8)))
        models = _quantize_planned_models(plan, models)
        if store is not None:
            _populate_store(plan, store, digests, models, fusion)
            plan.artifacts = dict(digests)
        return PlannedSystem(plan=plan, models=models, fusion=fusion,
                             time_scale=time_scale, transport=transport)


def plan_demo_system(num_workers: int = 2, model_kind: str = "vit",
                     num_classes: int = 10, image_size: int = 8,
                     seed: int = 0, throughputs: list[float] | None = None,
                     train_fusion: bool = False, fusion_epochs: int = 8,
                     time_scale: float = 0.0,
                     config: PlannerConfig | None = None,
                     codec: str = "raw32",
                     transport: str = "multiprocess",
                     store: ArtifactStore | None = None,
                     quant: str = "fp32",
                     memory_headroom: float = 3.0) -> PlannedSystem:
    """Plan a small (optionally heterogeneous) serveable demo fleet.

    Builds one tiny sub-model per class group, profiles them, sizes a
    fleet of ``num_workers`` devices with per-device ``throughputs``
    multipliers, and runs the :class:`~repro.planning.planner.Planner`
    (greedy assignment + DES scoring) to produce an executable
    :class:`DeploymentPlan`.  Device budgets leave enough residual memory
    and energy that one failed device's sub-model fits on a survivor —
    the replanning path is exercisable out of the box.

    ``codec`` names the wire codec recorded in the plan; ``"auto"`` lets
    :meth:`Planner.select_codec` search the candidate pool for the best
    predicted latency within the accuracy-drop bound — measured against
    the trained system when ``train_fusion`` is set, by nominal codec
    drops otherwise.

    ``store`` warm-boots the weights from artifacts when every ref of
    the plan's rebuild recipe is present (skipping training), and
    populates the store after a cold build; the emitted plan records the
    artifact refs either way.

    ``quant`` selects the served weight scheme: ``"fp32"``, ``"int8"``
    (per-channel post-training quantization, ~3-4x smaller artifacts),
    or ``"auto"`` — fp32 when it fits the device memory budgets,
    falling back to int8 otherwise.  ``memory_headroom`` scales each
    device's memory budget in units of the largest fp32 sub-model (the
    default 3.0 keeps replanning headroom; below ~1.0 fp32 no longer
    fits and ``"auto"`` selects int8).
    """
    if throughputs is None:
        throughputs = [1.0 / (1 + 0.5 * i) for i in range(num_workers)]
    if len(throughputs) != num_workers:
        raise ValueError("need one throughput multiplier per worker")

    models = [_tiny_model(model_kind, num_classes, image_size,
                          np.random.default_rng(seed + index))
              for index in range(num_workers)]
    fusion = build_fusion_for([m.feature_dim() for m in models],
                              num_classes=num_classes,
                              rng=np.random.default_rng(seed + 1000))
    build = {"recipe": DEMO_RECIPE, "model_kind": model_kind,
             "image_size": image_size, "train_fusion": bool(train_fusion),
             "fusion_epochs": fusion_epochs}

    partition = balanced_class_partition(num_classes, num_workers,
                                         rng=np.random.default_rng(seed))
    submodels = [
        PlannedSubModel(model_id=f"submodel-{index}",
                        classes=tuple(int(c) for c in partition[index]),
                        hp=0,
                        size_bytes=param_bytes(module_param_count(model)),
                        flops_per_sample=float(model_flops(model_kind,
                                                           model.config)),
                        feature_dim=int(model.feature_dim()),
                        model_kind=model_kind,
                        model_config=model.config.to_dict())
        for index, model in enumerate(models)]

    # Budgets sized so every device can absorb one orphaned sub-model on
    # top of its own (the replanning headroom).
    max_size = max(m.size_bytes for m in submodels)
    max_flops = max(m.flops_per_sample for m in submodels)
    select = codec == "auto"
    if config is None:
        planner_config = PlannerConfig(seed=seed,
                                       codec="raw32" if select else codec)
    elif not select and codec != "raw32" and config.codec != codec:
        # An explicit codec argument must not be silently dropped just
        # because an explicit PlannerConfig was also supplied.
        if config.codec != "raw32":
            raise ValueError(
                f"conflicting codecs: codec={codec!r} vs "
                f"PlannerConfig.codec={config.codec!r}")
        planner_config = dataclasses.replace(config, codec=codec)
    else:
        planner_config = config
    if planner_config.seed != seed:
        # The models, partition, and training protocol are all seeded by
        # the ``seed`` argument; the plan (and therefore every artifact
        # recipe and the cold rebuild) records ``config.seed``.  A split
        # seed would store weights under a recipe digest the rebuild
        # cannot reproduce — keep one seed source.
        planner_config = dataclasses.replace(planner_config, seed=seed)
    devices = [DeviceModel(device_id=f"edge-{index}",
                           macs_per_second=1e12 * factor,
                           memory_bytes=max(1, int(memory_headroom
                                                   * max_size)),
                           energy_flops=3 * max_flops
                           * max(1, planner_config.num_samples))
               for index, factor in enumerate(throughputs)]
    fusion_device = DeviceModel(device_id="fusion", macs_per_second=1e12)
    link = LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0)

    int8_sizes = None
    if quant in ("int8", "auto"):
        int8_sizes = {
            f"submodel-{index}": nn.state_dict_num_bytes(
                nn.quantize_state_dict(model.state_dict()))
            for index, model in enumerate(models)}
    planner = Planner(devices, fusion_device, link, planner_config)
    # The plan is assembled *before* training so its artifact recipes are
    # the single source of digest truth for the store lookup below.
    plan = planner.plan_submodels(num_classes, partition, submodels,
                                  build=build,
                                  quant=None if quant == "fp32" else quant,
                                  int8_sizes=int8_sizes)

    warm = False
    digests: dict[str, str] = {}
    if store is not None:
        digests = plan_artifact_digests(plan)
        loaded = _warm_boot_from_store(plan, store, digests)
        if loaded is not None:
            models, fusion = loaded
            warm = True
    dataset = None
    if train_fusion:
        if warm:
            dataset = demo_dataset(image_size, seed)
        else:
            dataset = train_demo_system(models, fusion, image_size, seed,
                                        fusion_epochs)
    if not warm:
        # Post-training quantization to each sub-model's planned scheme
        # (a no-op for fp32 plans); the store then receives — and the
        # accuracy/codec measurements below see — exactly what serves.
        models = _quantize_planned_models(plan, models)
    if store is not None:
        if not warm:
            _populate_store(plan, store, digests, models, fusion)
        plan.artifacts = dict(digests)

    if train_fusion:
        labels = fused_labels(models, fusion, dataset.x_test)
        accuracy = float((labels == dataset.y_test).mean())
        plan.prediction = dataclasses.replace(plan.prediction,
                                              accuracy=accuracy)
    if select:
        measure = None
        if train_fusion:
            def measure(codec_name: str) -> float:
                labels = fused_labels(models, fusion, dataset.x_test,
                                      codec=codec_name)
                return float((labels == dataset.y_test).mean())
        plan = planner.select_codec(plan, measure_accuracy=measure)
    return PlannedSystem(plan=plan, models=models, fusion=fusion,
                         time_scale=time_scale, transport=transport,
                         warm_booted=warm)
