"""Trace-driven capacity planning over the vectorized fleet simulator.

Answers the deployment question ROADMAP item 5 poses: *how many devices
of which class does a workload need to meet a latency SLO, and at what
cost?*  A fleet is modelled as ``R`` independent ED-ViT replicas — each
replica is ``G`` worker devices plus one fusion device of the same class
— behind a round-robin front-end that deals the arrival trace across
replicas.  Every replica is scored with the bit-exact vectorized DES
(:mod:`repro.edge.fastsim` via ``engine="vector"``), which is what makes
sweeping thousand-device fleets × traffic traces × codec/quant choices
interactive instead of hours-long.

:func:`plan_capacity` sweeps the configuration grid, checks per-device
memory feasibility (falling back to int8 weights exactly like
``Planner.plan(quant="auto")`` does), and returns every scored point plus
the cost/latency Pareto frontier.  :func:`cheapest_within_slo` picks the
cheapest frontier point meeting a p95 target.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..core.experiments import PAPER_BUDGETS_MB, plan_split
from ..edge.device import PI4B_MACS_PER_SECOND, PI4B_MEMORY_BYTES, DeviceModel
from ..edge.simulator import DeploymentSpec, SubModelProfile, simulate_inference
from ..models.vit import vit_base_config
from ..profiling import fusion_flops
from ..serving.telemetry import percentile
from ..serving.traffic import ArrivalTrace


@dataclasses.dataclass(frozen=True)
class DeviceClass:
    """A purchasable device tier: throughput, memory and unit cost."""

    name: str
    speed_factor: float                # × Raspberry Pi 4B MAC throughput
    memory_bytes: int
    unit_cost_usd: float

    @property
    def macs_per_second(self) -> float:
        return PI4B_MACS_PER_SECOND * self.speed_factor

    def device(self, device_id: str) -> DeviceModel:
        return DeviceModel(device_id=device_id,
                           macs_per_second=self.macs_per_second,
                           memory_bytes=self.memory_bytes)


# Street prices (2024-ish USD) for the boards the paper's testbed story
# spans; speed factors are rough MAC-throughput ratios vs the Pi 4B.
DEVICE_CLASSES: dict[str, DeviceClass] = {
    "pi-zero2": DeviceClass("pi-zero2", speed_factor=0.35,
                            memory_bytes=512 * 2 ** 20, unit_cost_usd=15.0),
    "pi4b": DeviceClass("pi4b", speed_factor=1.0,
                        memory_bytes=PI4B_MEMORY_BYTES, unit_cost_usd=55.0),
    "pi5": DeviceClass("pi5", speed_factor=2.0,
                       memory_bytes=8 * 2 ** 30, unit_cost_usd=80.0),
    "orin-nano": DeviceClass("orin-nano", speed_factor=8.0,
                             memory_bytes=8 * 2 ** 30, unit_cost_usd=249.0),
}

# Mirrors Planner._int8_variant's analytic fallback: per-channel int8
# keeps biases/norms and scale vectors, landing near size/3 (not /4).
_INT8_SHRINK = 3


@dataclasses.dataclass(frozen=True)
class CapacityPoint:
    """One scored fleet configuration."""

    device_class: str
    fleet_size: int                    # requested fleet budget (devices)
    devices_used: int                  # replicas × (group_count + 1)
    replicas: int
    group_count: int                   # workers per replica
    codec: str
    quant: str                         # "fp32" or "int8"
    cost_usd: float
    feasible: bool
    reason: str = ""                   # why infeasible (empty when feasible)
    p50_s: float | None = None
    p95_s: float | None = None
    max_s: float | None = None
    mean_s: float | None = None
    throughput_rps: float | None = None
    worker_utilization: float | None = None

    def row(self) -> dict:
        def ms(v: float | None) -> float | None:
            return None if v is None else round(v * 1e3, 2)

        return {
            "class": self.device_class,
            "fleet": self.fleet_size,
            "used": self.devices_used,
            "replicas": self.replicas,
            "groups": self.group_count,
            "codec": self.codec,
            "quant": self.quant,
            "cost_usd": round(self.cost_usd, 2),
            "feasible": self.feasible,
            "reason": self.reason,
            "p50_ms": ms(self.p50_s),
            "p95_ms": ms(self.p95_s),
            "max_ms": ms(self.max_s),
            "throughput_rps": None if self.throughput_rps is None
            else round(self.throughput_rps, 2),
            "util": None if self.worker_utilization is None
            else round(self.worker_utilization, 3),
        }


@dataclasses.dataclass
class CapacityReport:
    """Everything :func:`plan_capacity` learned about one trace."""

    trace_requests: int
    trace_duration_s: float
    trace_mean_rps: float
    points: list[CapacityPoint]
    frontier: list[CapacityPoint]      # cost-ascending Pareto front

    def feasible_points(self) -> list[CapacityPoint]:
        return [p for p in self.points if p.feasible]

    def to_json(self) -> dict:
        return {
            "trace": {
                "num_requests": self.trace_requests,
                "duration_s": round(self.trace_duration_s, 3),
                "mean_rps": round(self.trace_mean_rps, 2),
            },
            "points": [p.row() for p in self.points],
            "frontier": [p.row() for p in self.frontier],
        }


def pareto_frontier(points: Sequence[CapacityPoint]) -> list[CapacityPoint]:
    """Non-dominated feasible points over (cost_usd, p95), cost-ascending.

    A point is dominated when another feasible point costs no more AND has
    a p95 no higher (with at least one strict).  Along the returned list
    cost strictly increases and p95 strictly decreases.
    """
    feasible = [p for p in points if p.feasible and p.p95_s is not None]
    feasible.sort(key=lambda p: (p.cost_usd, p.p95_s))
    frontier: list[CapacityPoint] = []
    best_p95 = float("inf")
    for point in feasible:
        if point.p95_s < best_p95:
            frontier.append(point)
            best_p95 = point.p95_s
    return frontier


def cheapest_within_slo(report: CapacityReport,
                        slo_p95_s: float) -> CapacityPoint | None:
    """The cheapest feasible point meeting the p95 target, if any."""
    meeting = [p for p in report.feasible_points()
               if p.p95_s is not None and p.p95_s <= slo_p95_s]
    return min(meeting, key=lambda p: (p.cost_usd, p.p95_s), default=None)


def _replica_spec(device_class: DeviceClass, group_count: int, codec: str,
                  num_classes: int,
                  split_cache: dict[int, object]) -> tuple[DeploymentSpec,
                                                           int, str]:
    """Build one replica's deployment; returns (spec, size/device, quant).

    Raises ValueError when the per-worker sub-model does not fit the
    class's memory even as int8 — the configuration is infeasible.
    """
    if group_count not in split_cache:
        split_cache[group_count] = plan_split(
            vit_base_config(num_classes=num_classes), group_count,
            num_classes=num_classes, budget_mb=PAPER_BUDGETS_MB["vit-base"])
    point = split_cache[group_count]

    size_fp32 = max(f.size_bytes for f in point.footprints)
    if size_fp32 <= device_class.memory_bytes:
        quant, size = "fp32", size_fp32
    elif size_fp32 // _INT8_SHRINK <= device_class.memory_bytes:
        quant, size = "int8", size_fp32 // _INT8_SHRINK
    else:
        raise ValueError(
            f"sub-model needs {size_fp32 // 2**20} MB fp32 "
            f"({size_fp32 // _INT8_SHRINK // 2**20} MB int8); "
            f"{device_class.name} has {device_class.memory_bytes // 2**20} MB")

    workers = [device_class.device(f"{device_class.name}-{i}")
               for i in range(group_count)]
    fusion = device_class.device(f"{device_class.name}-fusion")
    profiles = {}
    placement = {}
    for i, foot in enumerate(point.footprints):
        model_id = f"submodel-{i}"
        profiles[model_id] = SubModelProfile(
            model_id=model_id, flops_per_sample=foot.flops_per_sample,
            feature_dim=foot.config.embed_dim, codec=codec)
        placement[model_id] = workers[i].device_id
    total_feature = sum(point.feature_dims)
    spec = DeploymentSpec(
        devices=workers, placement=placement, profiles=profiles,
        fusion_device=fusion,
        fusion_flops=float(fusion_flops(total_feature, num_classes, 0.5)))
    return spec, size, quant


def plan_capacity(trace: ArrivalTrace,
                  device_classes: Sequence[str] = ("pi4b", "pi5"),
                  fleet_sizes: Sequence[int] = (12, 60, 300, 1000),
                  group_counts: Sequence[int] = (2, 3, 5),
                  codecs: Sequence[str] = ("raw32", "q8"),
                  num_classes: int = 10) -> CapacityReport:
    """Sweep fleet configurations against ``trace``; score every point.

    Each (class, fleet size, group count, codec) combination carves the
    fleet into ``fleet_size // (group_count + 1)`` replicas, deals the
    trace round-robin across them, and simulates every replica with the
    vectorized engine.  Memory-infeasible or replica-less combinations are
    kept in the report (``feasible=False``) so sweeps are auditable.
    """
    for name in device_classes:
        if name not in DEVICE_CLASSES:
            raise KeyError(f"unknown device class {name!r}; "
                           f"choose from {sorted(DEVICE_CLASSES)}")
    split_cache: dict[int, object] = {}
    points: list[CapacityPoint] = []
    for class_name in device_classes:
        device_class = DEVICE_CLASSES[class_name]
        for group_count in group_counts:
            for codec in codecs:
                try:
                    spec, _, quant = _replica_spec(
                        device_class, group_count, codec, num_classes,
                        split_cache)
                except ValueError as exc:
                    for fleet_size in fleet_sizes:
                        points.append(CapacityPoint(
                            device_class=class_name, fleet_size=fleet_size,
                            devices_used=0, replicas=0,
                            group_count=group_count, codec=codec,
                            quant="-", cost_usd=0.0, feasible=False,
                            reason=str(exc)))
                    continue
                for fleet_size in fleet_sizes:
                    points.append(_score_point(
                        trace, device_class, fleet_size, group_count,
                        codec, quant, spec))
    return CapacityReport(
        trace_requests=trace.num_requests,
        trace_duration_s=trace.duration,
        trace_mean_rps=trace.mean_rps,
        points=points,
        frontier=pareto_frontier(points),
    )


def _score_point(trace: ArrivalTrace, device_class: DeviceClass,
                 fleet_size: int, group_count: int, codec: str, quant: str,
                 spec: DeploymentSpec) -> CapacityPoint:
    per_replica = group_count + 1
    replicas = fleet_size // per_replica
    if replicas < 1:
        return CapacityPoint(
            device_class=device_class.name, fleet_size=fleet_size,
            devices_used=0, replicas=0, group_count=group_count,
            codec=codec, quant=quant, cost_usd=0.0, feasible=False,
            reason=f"fleet of {fleet_size} cannot host one "
                   f"{per_replica}-device replica")
    # More replicas than requests would leave some idle (and an empty
    # shard is not a valid trace) — extra devices stay unbought.
    replicas = min(replicas, trace.num_requests)
    devices_used = replicas * per_replica
    cost = devices_used * device_class.unit_cost_usd

    latencies: list[float] = []
    makespan = 0.0
    busy = 0.0
    for shard in trace.split_round_robin(replicas):
        result = simulate_inference(spec, arrival_times=shard.arrivals,
                                    engine="vector")
        latencies.extend(result.latencies)
        makespan = max(makespan, result.makespan)
        busy += sum(result.device_busy[d.device_id] for d in spec.devices)
    throughput = len(latencies) / makespan if makespan > 0 else 0.0
    worker_seconds = replicas * group_count * makespan
    return CapacityPoint(
        device_class=device_class.name, fleet_size=fleet_size,
        devices_used=devices_used, replicas=replicas,
        group_count=group_count, codec=codec, quant=quant,
        cost_usd=cost, feasible=True,
        p50_s=percentile(latencies, 50),
        p95_s=percentile(latencies, 95),
        max_s=max(latencies),
        mean_s=sum(latencies) / len(latencies),
        throughput_rps=throughput,
        worker_utilization=(busy / worker_seconds) if worker_seconds > 0
        else 0.0,
    )
