"""The planner: Algorithm 1 end to end, scored by the DES simulator.

:class:`Planner` composes the pieces the repo previously exercised only in
isolation — balanced class partitioning (:mod:`repro.splitting.
class_assignment`), the analytic head-pruning schedule loop
(:func:`repro.splitting.schedule.plan_head_schedule`), greedy device
assignment (:mod:`repro.assignment`), analytic profiling
(:mod:`repro.profiling`), and the discrete-event simulator
(:mod:`repro.edge.simulator`) — into one pipeline that emits a scored
:class:`~repro.planning.plan.DeploymentPlan`.

Candidate search: when the number of sub-models is not pinned, the planner
builds one candidate plan per feasible group count, scores each with the
DES simulator, and returns the plan with the lowest predicted mean
latency — the paper's latency-vs-N trade-off, automated.

Codec search: :meth:`Planner.select_codec` plays the same game over wire
codecs — each candidate's *encoded* per-sample payload bytes flow into
the DES link model, and the lowest-predicted-latency codec wins among
those whose fused-accuracy cost stays within the configured bound.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..assignment import InfeasibleAssignment, greedy_assign
from ..edge.codec import get_codec
from ..edge.device import DeviceModel
from ..edge.network import LinkModel, tc_capped_link
from ..edge.simulator import energy_report, simulate_inference
from ..models.fusion import FusionConfig
from ..models.vit import ViTConfig
from ..profiling import fusion_flops
from ..splitting.class_assignment import balanced_class_partition
from ..splitting.schedule import ScheduleInfeasible, plan_head_schedule
from .plan import (
    DeploymentPlan,
    PlanPrediction,
    PlannedDevice,
    PlannedSubModel,
)


class PlanningError(RuntimeError):
    """No candidate plan satisfied the constraints."""


# Codecs the planner tries when asked to pick one (see select_codec).
DEFAULT_CANDIDATE_CODECS = ("raw32", "f16", "q8", "q8+zlib")


@dataclasses.dataclass(frozen=True)
class PlannerConfig:
    """Knobs for plan construction and scoring."""

    num_samples: int = 1               # workload sizing for assignment (L)
    des_samples: int = 4               # samples simulated when scoring
    arrival_interval_s: float = 0.0    # 0 = batch arrivals in the DES run
    candidate_groups: tuple[int, ...] | None = None  # group counts to try
    memory_budget_bytes: int | None = None  # None = fleet-wide sum
    seed: int = 0
    codec: str = "raw32"               # wire codec recorded in the plan
    candidate_codecs: tuple[str, ...] | None = None  # select_codec pool
    accuracy_drop_bound: float = 0.01  # max fused-accuracy cost of a codec


def score_plan(plan: DeploymentPlan, des_samples: int = 4,
               arrival_interval_s: float = 0.0,
               accuracy: float | None = None) -> PlanPrediction:
    """Predict latency/energy for ``plan`` with the DES simulator."""
    spec = plan.deployment_spec()
    result = simulate_inference(spec, num_samples=des_samples,
                                arrival_interval=arrival_interval_s)
    energy = sum(energy_report(spec, result).values())
    return PlanPrediction(latency_s=result.mean_latency,
                          max_latency_s=result.max_latency,
                          makespan_s=result.makespan,
                          throughput_sps=result.throughput,
                          energy_j=energy,
                          accuracy=accuracy)


class Planner:
    """Builds and scores :class:`DeploymentPlan` candidates for a fleet."""

    def __init__(self, devices: list[DeviceModel],
                 fusion_device: DeviceModel | None = None,
                 link: LinkModel | None = None,
                 config: PlannerConfig | None = None):
        if not devices:
            raise ValueError("need at least one device")
        self.devices = list(devices)
        self.fusion_device = fusion_device or DeviceModel(device_id="fusion")
        self.link = link or tc_capped_link()
        self.config = config or PlannerConfig()

    # ------------------------------------------------------------------
    def _planned_devices(self) -> list[PlannedDevice]:
        return [PlannedDevice.from_device(d, self.link) for d in self.devices]

    def _memory_budget(self) -> int:
        if self.config.memory_budget_bytes is not None:
            return self.config.memory_budget_bytes
        return sum(d.memory_bytes for d in self.devices)

    # ------------------------------------------------------------------
    def plan_vit(self, base: ViTConfig,
                 num_groups: int | None = None) -> DeploymentPlan:
        """Full analytic pipeline for a ViT split (Algorithm 1 + scoring).

        ``num_groups`` pins the number of sub-models; when ``None`` the
        planner tries every count in ``config.candidate_groups`` (default:
        2..len(devices)) and keeps the best-scoring feasible plan.
        """
        if num_groups is not None:
            counts: tuple[int, ...] = (num_groups,)
        elif self.config.candidate_groups is not None:
            counts = self.config.candidate_groups
        else:
            counts = tuple(range(2, len(self.devices) + 1)) or (1,)

        best: DeploymentPlan | None = None
        failures: list[str] = []
        for count in counts:
            try:
                candidate = self._plan_vit_candidate(base, count)
            except (ScheduleInfeasible, InfeasibleAssignment, ValueError) as exc:
                failures.append(f"N={count}: {exc}")
                continue
            if best is None or (candidate.prediction.latency_s
                                < best.prediction.latency_s):
                best = candidate
        if best is None:
            raise PlanningError(
                "no feasible plan for any candidate group count: "
                + "; ".join(failures))
        return best

    def _plan_vit_candidate(self, base: ViTConfig,
                            num_groups: int) -> DeploymentPlan:
        config = self.config
        rng = np.random.default_rng(config.seed)
        partition = balanced_class_partition(base.num_classes, num_groups,
                                             rng=rng)
        schedule = plan_head_schedule(
            base, partition, [d.to_spec() for d in self.devices],
            self._memory_budget(), config.num_samples)
        submodels = [
            PlannedSubModel(model_id=f"submodel-{foot.index}",
                            classes=tuple(group),
                            hp=foot.hp,
                            size_bytes=foot.size_bytes,
                            flops_per_sample=foot.flops_per_sample,
                            feature_dim=foot.config.embed_dim,
                            model_kind="vit",
                            model_config=foot.config.to_dict())
            for foot, group in zip(schedule.footprints, partition)]
        return self._assemble(base.num_classes, partition, submodels,
                              mapping=dict(schedule.plan.mapping))

    # ------------------------------------------------------------------
    def plan_submodels(self, num_classes: int, partition: list[list[int]],
                       submodels: list[PlannedSubModel],
                       build: dict | None = None,
                       accuracy: float | None = None,
                       quant: str | None = None,
                       int8_sizes: dict[str, int] | None = None,
                       ) -> DeploymentPlan:
        """Assign and score pre-built sub-models (no head schedule).

        This is the path for concrete, already-trained fleets (e.g. the
        demo systems): footprints come from the real modules, placement
        from :func:`repro.assignment.greedy_assign`, prediction from the
        DES simulator.

        ``quant`` selects the weight scheme the fleet serves: ``"fp32"``
        (or ``None``) keeps the sub-models as given, ``"int8"`` plans
        the per-channel-quantized variants, and ``"auto"`` tries fp32
        first and falls back to int8 only when the fp32 footprints do
        not fit the device memory budgets — the planner's knob for
        memory-constrained fleets.  ``int8_sizes`` supplies the exact
        quantized byte sizes per model id (e.g. from
        ``nn.state_dict_num_bytes(nn.quantize_state_dict(...))``);
        without it a conservative ~3x shrink estimate stands in.  The
        search is recorded in ``build["quant_selection"]``.
        """
        if quant not in (None, "fp32", "int8", "auto"):
            raise ValueError(f"unknown quant scheme {quant!r}; "
                             "choose from 'fp32', 'int8', 'auto'")
        schemes = {"int8": ("int8",), "auto": ("fp32", "int8")}.get(
            quant, ("fp32",))
        attempts: list[dict] = []
        failure: InfeasibleAssignment | None = None
        for scheme in schemes:
            candidates = submodels if scheme == "fp32" \
                else [self._int8_variant(m, int8_sizes) for m in submodels]
            try:
                assignment = greedy_assign(
                    [d.to_spec() for d in self.devices],
                    [m.to_spec() for m in candidates],
                    self.config.num_samples)
            except InfeasibleAssignment as exc:
                attempts.append({"quant": scheme, "feasible": False,
                                 "error": str(exc)})
                failure = exc
                continue
            attempts.append({"quant": scheme, "feasible": True})
            build = dict(build or {})
            if quant not in (None, "fp32"):
                build["quant_selection"] = {"requested": quant,
                                            "selected": scheme,
                                            "attempts": attempts}
            return self._assemble(num_classes, partition, candidates,
                                  mapping=dict(assignment.mapping),
                                  build=build, accuracy=accuracy)
        raise failure

    @staticmethod
    def _int8_variant(sub: PlannedSubModel,
                      int8_sizes: dict[str, int] | None) -> PlannedSubModel:
        if int8_sizes is not None and sub.model_id in int8_sizes:
            size = int(int8_sizes[sub.model_id])
        else:
            # Per-channel int8 keeps biases/norms and the scale vectors
            # in fp32, so the true shrink is a bit under 4x; ~3x is a
            # safe planning estimate when exact sizes are not supplied.
            size = max(1, sub.size_bytes // 3)
        return dataclasses.replace(sub, quant="int8", size_bytes=size)

    # ------------------------------------------------------------------
    def _assemble(self, num_classes: int, partition: list[list[int]],
                  submodels: list[PlannedSubModel], mapping: dict[str, str],
                  build: dict | None = None,
                  accuracy: float | None = None) -> DeploymentPlan:
        config = self.config
        input_dim = sum(m.feature_dim for m in submodels)
        fusion_config = FusionConfig(input_dim=input_dim,
                                     num_classes=num_classes)
        build = dict(build or {})
        # Record the scoring knobs so replanning re-scores the recovered
        # plan under the same load assumptions.
        build["scoring"] = {"des_samples": config.des_samples,
                            "arrival_interval_s": config.arrival_interval_s}
        plan = DeploymentPlan(
            num_classes=num_classes,
            partition=[list(group) for group in partition],
            submodels=list(submodels),
            devices=self._planned_devices(),
            mapping=mapping,
            fusion_device=PlannedDevice.from_device(self.fusion_device,
                                                    self.link),
            fusion_flops=float(fusion_flops(input_dim, num_classes)),
            fusion_config=fusion_config.to_dict(),
            num_samples=config.num_samples,
            seed=config.seed,
            codec=config.codec,
            build=build,
        )
        plan.validate()
        plan.prediction = score_plan(plan, config.des_samples,
                                     config.arrival_interval_s,
                                     accuracy=accuracy)
        return plan

    # ------------------------------------------------------------------
    def select_codec(self, plan: DeploymentPlan,
                     candidates: tuple[str, ...] | None = None,
                     measure_accuracy=None) -> DeploymentPlan:
        """Pick the wire codec with the best predicted latency.

        Every candidate codec is scored through the DES simulator with
        its *reduced* per-sample payload bytes; candidates whose fused
        accuracy costs more than ``config.accuracy_drop_bound`` are
        rejected.  The drop is measured by calling
        ``measure_accuracy(codec_name) -> float`` (e.g. fused accuracy
        with the codec's encode→decode round trip applied to the
        features) against its ``raw32`` value; without a measurement
        hook — untrained, analytic plans — each codec's
        ``nominal_accuracy_drop`` stands in.

        Returns a rescored copy of ``plan`` carrying the winning codec
        (``plan.build["codec_selection"]`` records the search); raises
        :class:`PlanningError` if no candidate passes the bound.
        """
        config = self.config
        candidates = tuple(candidates or config.candidate_codecs
                           or DEFAULT_CANDIDATE_CODECS)
        bound = config.accuracy_drop_bound
        baseline = (measure_accuracy("raw32")
                    if measure_accuracy is not None else None)
        best: DeploymentPlan | None = None
        considered: list[dict] = []
        for name in candidates:
            codec = get_codec(name)    # KeyError on unknown candidates
            if baseline is not None:
                accuracy = float(measure_accuracy(name))
                drop = baseline - accuracy
            else:
                accuracy = plan.prediction.accuracy if name == "raw32" \
                    and plan.prediction is not None else None
                drop = codec.nominal_accuracy_drop
            candidate = DeploymentPlan.from_dict(plan.to_dict())
            candidate.codec = name
            candidate.prediction = score_plan(
                candidate, config.des_samples, config.arrival_interval_s,
                accuracy=accuracy)
            considered.append({"codec": name,
                               "latency_s": candidate.prediction.latency_s,
                               "accuracy_drop": drop,
                               "admitted": bool(drop <= bound + 1e-12)})
            if drop > bound + 1e-12:
                continue
            if best is None or (candidate.prediction.latency_s
                                < best.prediction.latency_s):
                best = candidate
        if best is None:
            raise PlanningError(
                f"no candidate codec within accuracy drop bound {bound}: "
                f"{considered}")
        best.build["codec_selection"] = {"candidates": considered,
                                         "accuracy_drop_bound": bound}
        return best
