"""Online replanning: reassign a failed device's sub-models (Section VI).

When the serving layer marks a device down, its sub-models' feature slots
are zero-filled and accuracy drops by roughly that device's class share —
permanently, in the pre-planning architecture.  :func:`replan_on_failure`
instead re-runs greedy assignment for the orphaned sub-models over the
*residual* capacity of the surviving devices, producing a new
:class:`~repro.planning.plan.DeploymentPlan` whose mapping the executor
(:mod:`repro.planning.execute`) turns into freshly spawned workers — so
fusion recovers real features instead of zeros.
"""

from __future__ import annotations

from ..assignment import DeviceSpec, InfeasibleAssignment, greedy_assign
from .plan import DeploymentPlan
from .planner import score_plan


class ReplanInfeasible(RuntimeError):
    """Surviving devices cannot absorb the failed devices' sub-models."""


def residual_capacity(plan: DeploymentPlan,
                      down_devices: set[str]) -> list[DeviceSpec]:
    """Surviving devices' capacity after the sub-models they already host.

    Devices with nothing left to give (zero or negative residual on either
    axis) are omitted — :class:`~repro.assignment.DeviceSpec` requires
    positive budgets, and they could never host an orphan anyway.
    """
    specs: list[DeviceSpec] = []
    for device in plan.devices:
        if device.device_id in down_devices:
            continue
        hosted = [plan.submodel(m) for m in plan.models_on(device.device_id)]
        memory = device.memory_bytes - sum(m.size_bytes for m in hosted)
        energy = device.energy_flops - sum(
            m.flops_per_sample * plan.num_samples for m in hosted)
        if memory > 0 and energy > 0:
            specs.append(DeviceSpec(device_id=device.device_id,
                                    memory_bytes=memory,
                                    energy_flops=energy))
    return specs


def replan_on_failure(plan: DeploymentPlan,
                      down_devices: set[str] | frozenset[str],
                      ) -> DeploymentPlan:
    """Reassign every sub-model hosted on ``down_devices`` onto survivors.

    Returns a new plan whose ``devices`` exclude the failed hardware,
    whose ``mapping`` places the orphaned sub-models into surviving
    residual capacity (largest first, most-residual-energy device first —
    the same Algorithm 3 greedy used at initial planning time), whose
    ``prediction`` is re-scored on the shrunken fleet, and whose
    ``history`` records the event.  Raises :class:`ReplanInfeasible` when
    the orphans cannot all be placed (callers then stay in zero-fill
    degraded mode).
    """
    down = set(down_devices)
    known = set(plan.device_ids) | {plan.fusion_device.device_id}
    if not down <= known:
        raise KeyError(f"unknown devices marked down: {sorted(down - known)}")
    if plan.fusion_device.device_id in down:
        raise ReplanInfeasible("the fusion device itself is down")
    survivors = [d for d in plan.devices if d.device_id not in down]
    if not survivors:
        raise ReplanInfeasible("no surviving devices")

    orphans = [plan.submodel(m) for m, dev in sorted(plan.mapping.items())
               if dev in down]
    try:
        moved = greedy_assign(residual_capacity(plan, down),
                              [m.to_spec() for m in orphans],
                              plan.num_samples)
    except InfeasibleAssignment as exc:
        raise ReplanInfeasible(
            f"orphaned sub-models do not fit in surviving capacity: {exc}"
        ) from exc

    mapping = {m: d for m, d in plan.mapping.items() if d not in down}
    mapping.update(moved.mapping)
    event = {
        "kind": "replan",
        "down_devices": sorted(down),
        "moved": dict(moved.mapping),
    }
    accuracy = plan.prediction.accuracy if plan.prediction else None
    new_plan = DeploymentPlan(
        num_classes=plan.num_classes,
        partition=[list(group) for group in plan.partition],
        submodels=list(plan.submodels),
        devices=survivors,
        mapping=mapping,
        fusion_device=plan.fusion_device,
        fusion_flops=plan.fusion_flops,
        fusion_config=dict(plan.fusion_config),
        num_samples=plan.num_samples,
        seed=plan.seed,
        codec=plan.codec,
        build=dict(plan.build),
        history=[dict(e) for e in plan.history] + [event],
    )
    new_plan.validate()
    # The moved sub-models run on shared devices now; re-score so the plan
    # is honest about the post-failure latency, under the same scoring
    # knobs the original prediction used (recorded in the build recipe).
    # Accuracy carries over: every feature slot is real again.
    scoring = plan.build.get("scoring", {})
    new_plan.prediction = score_plan(
        new_plan,
        des_samples=int(scoring.get("des_samples", 4)),
        arrival_interval_s=float(scoring.get("arrival_interval_s", 0.0)),
        accuracy=accuracy)
    return new_plan
