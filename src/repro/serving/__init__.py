"""Asynchronous request-level serving over the emulated edge fleet.

Pipeline: clients ``submit()`` requests -> a dynamic batcher coalesces
them (max batch size / max wait deadline) -> the dispatcher scatters each
batch to every live worker concurrently and gathers by polling all pipes
at once -> dead or timed-out workers are marked down and zero-filled
(degraded fusion) -> the fusion MLP classifies -> per-request futures
resolve with labels and a full latency breakdown.

See :mod:`repro.serving.loadgen` for the Poisson open-loop / concurrent
closed-loop / trace-replay load generator, :mod:`repro.serving.traffic`
for the arrival-trace model and traffic-shape generators it shares with
the fleet simulator, and :mod:`repro.serving.demo` for one-call demo
fleets used by the CLI, CI smoke job, and benchmarks.
"""

from .batcher import (
    Batch,
    BatchingConfig,
    DynamicBatcher,
    QueueFullError,
    RequestError,
    ServedFuture,
)
from .demo import DemoSystem, build_demo_system
from .loadgen import (
    LoadgenConfig,
    LoadgenResult,
    run_load,
    sweep_offered_load,
)
from .server import InferenceServer, ServerConfig
from .telemetry import RequestTelemetry, ServingReport, percentile
from .traffic import (
    ArrivalTrace,
    burst_trace,
    diurnal_trace,
    flash_crowd_trace,
    mmpp_trace,
    poisson_trace,
)

__all__ = [
    "ArrivalTrace",
    "Batch",
    "BatchingConfig",
    "DemoSystem",
    "DynamicBatcher",
    "InferenceServer",
    "LoadgenConfig",
    "LoadgenResult",
    "QueueFullError",
    "RequestError",
    "RequestTelemetry",
    "ServedFuture",
    "ServerConfig",
    "ServingReport",
    "build_demo_system",
    "burst_trace",
    "diurnal_trace",
    "flash_crowd_trace",
    "mmpp_trace",
    "percentile",
    "poisson_trace",
    "run_load",
    "sweep_offered_load",
]
