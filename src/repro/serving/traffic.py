"""Arrival traces and traffic generators shared by loadgen and simulator.

The serving load generator (:mod:`repro.serving.loadgen`) and the fleet
simulator (:func:`repro.edge.simulator.simulate_inference` via
``arrival_times``) both consume the same :class:`ArrivalTrace`: a sorted
schedule of absolute arrival seconds.  That makes capacity planning
honest — the trace that sizes a fleet in simulation is byte-for-byte the
trace the real server can be driven with.

Generators cover the canonical traffic shapes:

* :func:`poisson_trace` — homogeneous Poisson at a constant rate;
* :func:`mmpp_trace` — Markov-modulated Poisson (exponential dwells in
  each rate state, uniform jumps to another state);
* :func:`diurnal_trace` — sinusoidal day/night rate;
* :func:`burst_trace` — periodic on/off bursts over a base rate;
* :func:`flash_crowd_trace` — a sudden spike that decays exponentially.

All non-homogeneous generators use Lewis–Shedler thinning against the
peak rate, so the produced process is an exact non-homogeneous Poisson
process for the given rate function.  Every generator is deterministic
in its ``seed``.

Traces serialize to JSONL (``repro.arrivals.v1``): a header object, then
one ``{"t": <seconds>}`` object per arrival.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

TRACE_FORMAT = "repro.arrivals.v1"


@dataclasses.dataclass(frozen=True)
class ArrivalTrace:
    """A sorted schedule of absolute arrival times, in seconds from t=0."""

    arrivals: tuple[float, ...]

    def __post_init__(self):
        if not self.arrivals:
            raise ValueError("a trace must contain at least one arrival")
        object.__setattr__(self, "arrivals",
                           tuple(float(t) for t in self.arrivals))
        if not all(math.isfinite(t) for t in self.arrivals):
            raise ValueError("arrival times must be finite")
        if self.arrivals[0] < 0:
            raise ValueError("arrival times must be non-negative")
        for earlier, later in zip(self.arrivals, self.arrivals[1:]):
            if later < earlier:
                raise ValueError("arrival times must be sorted")

    @property
    def num_requests(self) -> int:
        return len(self.arrivals)

    @property
    def duration(self) -> float:
        """Span from t=0 to the last arrival."""
        return self.arrivals[-1]

    @property
    def mean_rps(self) -> float:
        """Mean offered rate over the trace span (0 for an instant trace)."""
        if self.duration <= 0:
            return 0.0
        return self.num_requests / self.duration

    def split_round_robin(self, n: int) -> list["ArrivalTrace"]:
        """Deal arrivals across ``n`` consumers, preserving absolute times.

        This is how a front-end balances a request stream over ``n``
        replicas; shard ``i`` gets arrivals ``i, i+n, i+2n, ...``.  Shards
        beyond the number of arrivals would be empty — that raises, since
        an empty trace is invalid (use fewer replicas instead).
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        if n > self.num_requests:
            raise ValueError(
                f"cannot split {self.num_requests} arrivals {n} ways")
        return [ArrivalTrace(self.arrivals[i::n]) for i in range(n)]

    def rescaled(self, rate_factor: float) -> "ArrivalTrace":
        """Scale the offered rate by ``rate_factor`` (times shrink by it)."""
        if rate_factor <= 0:
            raise ValueError("rate_factor must be positive")
        return ArrivalTrace(tuple(t / rate_factor for t in self.arrivals))

    def to_jsonl(self, path: str | Path) -> None:
        header = {"format": TRACE_FORMAT, "num_requests": self.num_requests,
                  "duration_s": self.duration}
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, allow_nan=False) + "\n")
            for t in self.arrivals:
                fh.write(json.dumps({"t": t}, allow_nan=False) + "\n")

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "ArrivalTrace":
        with open(path, "r", encoding="utf-8") as fh:
            header_line = fh.readline()
            if not header_line.strip():
                raise ValueError(f"{path}: empty trace file")
            header = json.loads(header_line)
            if header.get("format") != TRACE_FORMAT:
                raise ValueError(
                    f"{path}: expected format {TRACE_FORMAT!r}, "
                    f"got {header.get('format')!r}")
            arrivals = []
            for line in fh:
                if line.strip():
                    arrivals.append(float(json.loads(line)["t"]))
        if header.get("num_requests") != len(arrivals):
            raise ValueError(
                f"{path}: header says {header.get('num_requests')} arrivals, "
                f"file has {len(arrivals)}")
        return cls(tuple(arrivals))


def poisson_trace(rate_rps: float, duration_s: float,
                  seed: int = 0) -> ArrivalTrace:
    """Homogeneous Poisson arrivals at ``rate_rps`` over ``duration_s``."""
    if rate_rps <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    times = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_rps)
        if t >= duration_s:
            break
        times.append(t)
    if not times:
        # Degenerate draw (tiny rate*duration): keep the trace valid by
        # placing one arrival mid-window.
        times = [duration_s / 2]
    return ArrivalTrace(tuple(times))


def _thinned(rate_fn: Callable[[float], float], rate_max: float,
             duration_s: float, rng: np.random.Generator) -> ArrivalTrace:
    """Lewis–Shedler thinning: exact NHPP sampling for ``rate_fn``."""
    times = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_max)
        if t >= duration_s:
            break
        if rng.uniform() * rate_max <= rate_fn(t):
            times.append(t)
    if not times:
        times = [duration_s / 2]
    return ArrivalTrace(tuple(times))


def mmpp_trace(rates_rps: Sequence[float], mean_dwell_s: float,
               duration_s: float, seed: int = 0) -> ArrivalTrace:
    """Markov-modulated Poisson process over the given rate states.

    The process dwells in each state for an Exponential(``mean_dwell_s``)
    time, emitting Poisson arrivals at that state's rate, then jumps
    uniformly at random to one of the *other* states.
    """
    if len(rates_rps) < 2:
        raise ValueError("an MMPP needs at least two rate states")
    if any(r < 0 for r in rates_rps) or max(rates_rps) <= 0:
        raise ValueError("rates must be non-negative with a positive max")
    if mean_dwell_s <= 0 or duration_s <= 0:
        raise ValueError("dwell and duration must be positive")
    rng = np.random.default_rng(seed)
    times = []
    t = 0.0
    state = int(rng.integers(len(rates_rps)))
    while t < duration_s:
        dwell_end = min(t + rng.exponential(mean_dwell_s), duration_s)
        rate = rates_rps[state]
        if rate > 0:
            clock = t
            while True:
                clock += rng.exponential(1.0 / rate)
                if clock >= dwell_end:
                    break
                times.append(clock)
        t = dwell_end
        jump = int(rng.integers(len(rates_rps) - 1))
        state = jump if jump < state else jump + 1
    if not times:
        times = [duration_s / 2]
    return ArrivalTrace(tuple(times))


def diurnal_trace(base_rps: float, peak_rps: float, period_s: float,
                  duration_s: float, seed: int = 0) -> ArrivalTrace:
    """Sinusoidal day/night rate: base at the trough, ``peak_rps`` at noon."""
    if not 0 <= base_rps <= peak_rps or peak_rps <= 0:
        raise ValueError("need 0 <= base_rps <= peak_rps with peak > 0")
    if period_s <= 0 or duration_s <= 0:
        raise ValueError("period and duration must be positive")
    mid = (base_rps + peak_rps) / 2
    amp = (peak_rps - base_rps) / 2

    def rate(t: float) -> float:
        # Trough at t=0, peak at t=period/2.
        return mid - amp * math.cos(2 * math.pi * t / period_s)

    return _thinned(rate, peak_rps, duration_s, np.random.default_rng(seed))


def burst_trace(base_rps: float, burst_rps: float, burst_every_s: float,
                burst_duration_s: float, duration_s: float,
                seed: int = 0) -> ArrivalTrace:
    """Base-rate traffic with periodic bursts at ``burst_rps``.

    A burst of ``burst_duration_s`` starts every ``burst_every_s`` (the
    first at ``t = burst_every_s``, so the trace opens calm).
    """
    if base_rps < 0 or burst_rps <= base_rps:
        raise ValueError("need 0 <= base_rps < burst_rps")
    if not 0 < burst_duration_s < burst_every_s or duration_s <= 0:
        raise ValueError("need 0 < burst_duration_s < burst_every_s "
                         "and positive duration")

    def rate(t: float) -> float:
        phase = t % burst_every_s
        in_burst = burst_every_s - burst_duration_s <= phase
        return burst_rps if in_burst else base_rps

    return _thinned(rate, burst_rps, duration_s, np.random.default_rng(seed))


def flash_crowd_trace(base_rps: float, peak_rps: float, onset_s: float,
                      decay_s: float, duration_s: float,
                      seed: int = 0) -> ArrivalTrace:
    """A flash crowd: rate jumps to ``peak_rps`` at ``onset_s`` and decays
    exponentially back toward ``base_rps`` with time constant ``decay_s``."""
    if not 0 <= base_rps < peak_rps:
        raise ValueError("need 0 <= base_rps < peak_rps")
    if onset_s < 0 or decay_s <= 0 or duration_s <= onset_s:
        raise ValueError("need onset in [0, duration) and positive decay")

    def rate(t: float) -> float:
        if t < onset_s:
            return base_rps
        return base_rps + (peak_rps - base_rps) * math.exp(
            -(t - onset_s) / decay_s)

    return _thinned(rate, peak_rps, duration_s, np.random.default_rng(seed))
