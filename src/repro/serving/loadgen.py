"""Load generator for the serving layer.

Two canonical client models:

* **open loop** — requests arrive on a Poisson process at a configured
  offered rate, independent of completions (models external traffic; the
  honest way to measure tail latency under load); and
* **closed loop** — a fixed number of concurrent clients each submit,
  wait, and immediately submit again (models a worker pool; measures
  sustainable throughput).

:func:`sweep_offered_load` runs the open loop at several rates and
returns the latency-vs-offered-load curve the benchmarks plot.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from typing import Callable

import numpy as np

from .batcher import RequestError, ServedFuture
from .server import InferenceServer
from .telemetry import ServingReport, _round, percentile


@dataclasses.dataclass(frozen=True)
class LoadgenConfig:
    num_requests: int = 200
    mode: str = "closed"               # "open" (Poisson) or "closed"
    offered_rps: float = 100.0         # open loop: mean arrival rate
    concurrency: int = 4               # closed loop: in-flight clients
    images_per_request: int = 1
    request_timeout_s: float = 30.0
    seed: int = 0


# Supplies each request's input: (rng, images_per_request) -> array.
# Lets callers stream real data (e.g. labelled test images) through the
# generator's arrival pacing instead of synthetic noise.
MakeInput = Callable[[np.random.Generator, int], np.ndarray]


@dataclasses.dataclass
class LoadgenResult:
    config: LoadgenConfig
    offered_rps: float                 # requested rate (nan for closed loop)
    achieved_rps: float
    completed: int
    errors: int
    dropped: int                       # admission-control rejections
    latencies_s: list[float]
    report: ServingReport
    # Resolved futures in submission order (open loop) — lets callers
    # match per-request telemetry/labels back to their inputs.
    futures: list[ServedFuture] = dataclasses.field(default_factory=list)

    @property
    def p50_s(self) -> float | None:
        return percentile(self.latencies_s, 50)

    @property
    def p95_s(self) -> float | None:
        return percentile(self.latencies_s, 95)

    @property
    def p99_s(self) -> float | None:
        return percentile(self.latencies_s, 99)

    def row(self) -> dict:
        return {
            "mode": self.config.mode,
            "offered_rps": None if math.isnan(self.offered_rps)
            else round(self.offered_rps, 1),
            "achieved_rps": round(self.achieved_rps, 2),
            "completed": self.completed,
            "errors": self.errors,
            "dropped": self.dropped,
            "p50_ms": _round(self.p50_s, 3, 1e3),
            "p95_ms": _round(self.p95_s, 3, 1e3),
            "p99_ms": _round(self.p99_s, 3, 1e3),
            "wire_in_kb": round(self.report.wire_bytes_in / 1024, 1),
            "bw_mbps": round(self.report.effective_bw_mbps, 3),
        }


def _make_input(rng: np.random.Generator, input_shape: tuple[int, ...],
                count: int) -> np.ndarray:
    return rng.normal(size=(count, *input_shape)).astype(np.float32)


def run_load(server: InferenceServer, input_shape: tuple[int, ...],
             config: LoadgenConfig | None = None,
             make_input: MakeInput | None = None) -> LoadgenResult:
    """Drive ``server`` with traffic and collect latency stats.

    ``input_shape`` is one sample's shape, e.g. ``(3, 8, 8)``.  By default
    requests carry synthetic noise; pass ``make_input`` to supply real
    per-request payloads (see :data:`MakeInput`).
    """
    config = config or LoadgenConfig()
    if make_input is None:
        def make_input(rng, count):
            return _make_input(rng, input_shape, count)
    if config.mode == "open":
        return _run_open_loop(server, config, make_input)
    if config.mode == "closed":
        return _run_closed_loop(server, config, make_input)
    raise ValueError(f"unknown loadgen mode {config.mode!r}; "
                     "choose 'open' or 'closed'")


def _collect(server: InferenceServer, config: LoadgenConfig,
             futures: list[ServedFuture], dropped: int,
             wall_seconds: float, offered_rps: float,
             records_before: int,
             started_at: float | None = None) -> LoadgenResult:
    latencies: list[float] = []
    errors = 0
    for future in futures:
        try:
            future.result(config.request_timeout_s)
            latencies.append(future.telemetry.total_s)
        except Exception:
            errors += 1
    # Scope the report to THIS run's records (the server may have served
    # earlier runs — e.g. previous rates of a sweep — on the same stats).
    run_records = server.records()[records_before:]
    return LoadgenResult(
        config=config,
        offered_rps=offered_rps,
        achieved_rps=len(latencies) / max(wall_seconds, 1e-12),
        completed=len(latencies),
        errors=errors,
        dropped=dropped,
        latencies_s=latencies,
        report=ServingReport.from_records(
            run_records, wall_seconds=wall_seconds,
            worker_health=server.worker_health(),
            started_at=started_at),
        futures=futures,
    )


def _run_open_loop(server: InferenceServer, config: LoadgenConfig,
                   make_input: MakeInput) -> LoadgenResult:
    rng = np.random.default_rng(config.seed)
    futures: list[ServedFuture] = []
    dropped = 0
    records_before = len(server.records())
    started_at = time.time()
    start = time.perf_counter()
    next_arrival = start
    for _ in range(config.num_requests):
        next_arrival += rng.exponential(1.0 / config.offered_rps)
        delay = next_arrival - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            futures.append(server.submit(
                make_input(rng, config.images_per_request)))
        except RequestError:
            dropped += 1
    for future in futures:             # wall clock covers full drain
        try:
            future.result(config.request_timeout_s)
        except Exception:
            pass                       # recorded as an error during collect
    wall = time.perf_counter() - start
    return _collect(server, config, futures, dropped, wall,
                    offered_rps=config.offered_rps,
                    records_before=records_before, started_at=started_at)


def _run_closed_loop(server: InferenceServer, config: LoadgenConfig,
                     make_input: MakeInput) -> LoadgenResult:
    futures: list[ServedFuture] = []
    futures_lock = threading.Lock()
    counter = {"next": 0, "dropped": 0}
    records_before = len(server.records())

    def client(seed: int) -> None:
        rng = np.random.default_rng(seed)
        while True:
            with futures_lock:
                if counter["next"] >= config.num_requests:
                    return
                counter["next"] += 1
            try:
                future = server.submit(
                    make_input(rng, config.images_per_request))
            except RequestError:
                with futures_lock:
                    counter["dropped"] += 1
                continue
            with futures_lock:
                futures.append(future)
            try:
                future.result(config.request_timeout_s)
            except Exception:
                pass                   # recorded as an error during collect

    started_at = time.time()
    start = time.perf_counter()
    threads = [threading.Thread(target=client, args=(config.seed + i,),
                                daemon=True)
               for i in range(config.concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return _collect(server, config, futures, counter["dropped"], wall,
                    offered_rps=float("nan"),
                    records_before=records_before, started_at=started_at)


def sweep_offered_load(server: InferenceServer, input_shape: tuple[int, ...],
                       rates_rps: list[float], num_requests: int = 100,
                       seed: int = 0) -> list[LoadgenResult]:
    """Open-loop latency-vs-offered-load curve (one result per rate)."""
    results = []
    for rate in rates_rps:
        config = LoadgenConfig(num_requests=num_requests, mode="open",
                               offered_rps=rate, seed=seed)
        results.append(run_load(server, input_shape, config))
    return results
