"""Load generator for the serving layer.

Two canonical client models:

* **open loop** — requests arrive on a Poisson process at a configured
  offered rate, independent of completions (models external traffic; the
  honest way to measure tail latency under load); and
* **closed loop** — a fixed number of concurrent clients each submit,
  wait, and immediately submit again (models a worker pool; measures
  sustainable throughput).

A third mode, **trace**, replays an explicit arrival schedule (a
:class:`repro.serving.traffic.ArrivalTrace`) against the real server —
the same schedule :func:`repro.edge.simulator.simulate_inference`
accepts as ``arrival_times``, so simulated capacity plans can be
validated against live serving with identical traffic.

:func:`sweep_offered_load` runs the open loop at several rates and
returns the latency-vs-offered-load curve the benchmarks plot.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from typing import Callable

import numpy as np

from .batcher import RequestError, ServedFuture
from .server import InferenceServer
from .telemetry import ServingReport, _round, percentile


@dataclasses.dataclass(frozen=True)
class LoadgenConfig:
    num_requests: int = 200
    mode: str = "closed"               # "open" (Poisson), "closed", "trace"
    offered_rps: float = 100.0         # open loop: mean arrival rate
    concurrency: int = 4               # closed loop: in-flight clients
    images_per_request: int = 1
    request_timeout_s: float = 30.0
    seed: int = 0
    # Trace mode: absolute arrival offsets in seconds from run start
    # (sorted, non-negative — e.g. an ArrivalTrace's ``arrivals``).
    # Overrides num_requests/offered_rps.
    arrivals: tuple[float, ...] | None = None


# Supplies each request's input: (rng, images_per_request) -> array.
# Lets callers stream real data (e.g. labelled test images) through the
# generator's arrival pacing instead of synthetic noise.
MakeInput = Callable[[np.random.Generator, int], np.ndarray]


@dataclasses.dataclass
class LoadgenResult:
    config: LoadgenConfig
    # Requested rate; None for closed-loop runs, where there is no offered
    # rate (arrivals are completion-driven).  Must stay None rather than
    # NaN so row() serializes under json.dumps(..., allow_nan=False).
    offered_rps: float | None
    achieved_rps: float
    completed: int
    errors: int
    dropped: int                       # admission-control rejections
    latencies_s: list[float]
    report: ServingReport
    # Resolved futures in submission order (open loop) — lets callers
    # match per-request telemetry/labels back to their inputs.
    futures: list[ServedFuture] = dataclasses.field(default_factory=list)

    @property
    def p50_s(self) -> float | None:
        return percentile(self.latencies_s, 50)

    @property
    def p95_s(self) -> float | None:
        return percentile(self.latencies_s, 95)

    @property
    def p99_s(self) -> float | None:
        return percentile(self.latencies_s, 99)

    def row(self) -> dict:
        return {
            "mode": self.config.mode,
            # Guard NaN as well as None: a pre-fix caller may still pass
            # float("nan") for closed-loop runs.
            "offered_rps": None
            if self.offered_rps is None or math.isnan(self.offered_rps)
            else round(self.offered_rps, 1),
            "achieved_rps": round(self.achieved_rps, 2),
            "completed": self.completed,
            "errors": self.errors,
            "dropped": self.dropped,
            "p50_ms": _round(self.p50_s, 3, 1e3),
            "p95_ms": _round(self.p95_s, 3, 1e3),
            "p99_ms": _round(self.p99_s, 3, 1e3),
            "wire_in_kb": round(self.report.wire_bytes_in / 1024, 1),
            "bw_mbps": round(self.report.effective_bw_mbps, 3),
        }


def _make_input(rng: np.random.Generator, input_shape: tuple[int, ...],
                count: int) -> np.ndarray:
    return rng.normal(size=(count, *input_shape)).astype(np.float32)


def run_load(server: InferenceServer, input_shape: tuple[int, ...],
             config: LoadgenConfig | None = None,
             make_input: MakeInput | None = None) -> LoadgenResult:
    """Drive ``server`` with traffic and collect latency stats.

    ``input_shape`` is one sample's shape, e.g. ``(3, 8, 8)``.  By default
    requests carry synthetic noise; pass ``make_input`` to supply real
    per-request payloads (see :data:`MakeInput`).
    """
    config = config or LoadgenConfig()
    if make_input is None:
        def make_input(rng, count):
            return _make_input(rng, input_shape, count)
    if config.mode in ("open", "trace"):
        return _run_open_loop(server, config, make_input)
    if config.mode == "closed":
        return _run_closed_loop(server, config, make_input)
    raise ValueError(f"unknown loadgen mode {config.mode!r}; "
                     "choose 'open', 'closed' or 'trace'")


def _collect(server: InferenceServer, config: LoadgenConfig,
             futures: list[ServedFuture], dropped: int,
             wall_seconds: float, offered_rps: float,
             records_before: int,
             started_at: float | None = None) -> LoadgenResult:
    latencies: list[float] = []
    errors = 0
    for future in futures:
        try:
            future.result(config.request_timeout_s)
            latencies.append(future.telemetry.total_s)
        except Exception:
            errors += 1
    # Scope the report to THIS run's records (the server may have served
    # earlier runs — e.g. previous rates of a sweep — on the same stats).
    run_records = server.records()[records_before:]
    return LoadgenResult(
        config=config,
        offered_rps=offered_rps,
        achieved_rps=len(latencies) / max(wall_seconds, 1e-12),
        completed=len(latencies),
        errors=errors,
        dropped=dropped,
        latencies_s=latencies,
        report=ServingReport.from_records(
            run_records, wall_seconds=wall_seconds,
            worker_health=server.worker_health(),
            started_at=started_at),
        futures=futures,
    )


def _trace_offsets(config: LoadgenConfig) -> list[float]:
    """Validated arrival offsets for trace mode (seconds from run start)."""
    if not config.arrivals:
        raise ValueError("trace mode requires config.arrivals")
    offsets = [float(t) for t in config.arrivals]
    if not all(math.isfinite(t) for t in offsets) or offsets[0] < 0:
        raise ValueError("trace arrivals must be finite and non-negative")
    if any(b < a for a, b in zip(offsets, offsets[1:])):
        raise ValueError("trace arrivals must be sorted")
    return offsets


def _run_open_loop(server: InferenceServer, config: LoadgenConfig,
                   make_input: MakeInput) -> LoadgenResult:
    """Arrival-paced driver: Poisson ("open") or trace replay ("trace")."""
    offsets = _trace_offsets(config) if config.mode == "trace" else None
    rng = np.random.default_rng(config.seed)
    futures: list[ServedFuture] = []
    dropped = 0
    records_before = len(server.records())
    started_at = time.time()
    start = time.perf_counter()
    next_arrival = start
    num_requests = config.num_requests if offsets is None else len(offsets)
    for k in range(num_requests):
        if offsets is None:
            next_arrival += rng.exponential(1.0 / config.offered_rps)
        else:
            next_arrival = start + offsets[k]
        delay = next_arrival - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            futures.append(server.submit(
                make_input(rng, config.images_per_request)))
        except RequestError:
            dropped += 1
    for future in futures:             # wall clock covers full drain
        try:
            future.result(config.request_timeout_s)
        except Exception:
            pass                       # recorded as an error during collect
    wall = time.perf_counter() - start
    if offsets is None:
        offered = config.offered_rps
    else:                              # trace: mean rate over the span
        offered = (len(offsets) / offsets[-1]) if offsets[-1] > 0 else None
    return _collect(server, config, futures, dropped, wall,
                    offered_rps=offered,
                    records_before=records_before, started_at=started_at)


def _run_closed_loop(server: InferenceServer, config: LoadgenConfig,
                     make_input: MakeInput) -> LoadgenResult:
    futures: list[ServedFuture] = []
    futures_lock = threading.Lock()
    counter = {"next": 0, "dropped": 0}
    records_before = len(server.records())

    def client(seed: int) -> None:
        rng = np.random.default_rng(seed)
        while True:
            with futures_lock:
                if counter["next"] >= config.num_requests:
                    return
                counter["next"] += 1
            try:
                future = server.submit(
                    make_input(rng, config.images_per_request))
            except RequestError:
                with futures_lock:
                    counter["dropped"] += 1
                continue
            with futures_lock:
                futures.append(future)
            try:
                future.result(config.request_timeout_s)
            except Exception:
                pass                   # recorded as an error during collect

    started_at = time.time()
    start = time.perf_counter()
    threads = [threading.Thread(target=client, args=(config.seed + i,),
                                daemon=True)
               for i in range(config.concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return _collect(server, config, futures, counter["dropped"], wall,
                    offered_rps=None,
                    records_before=records_before, started_at=started_at)


def sweep_offered_load(server: InferenceServer, input_shape: tuple[int, ...],
                       rates_rps: list[float], num_requests: int = 100,
                       seed: int = 0) -> list[LoadgenResult]:
    """Open-loop latency-vs-offered-load curve (one result per rate).

    Determinism contract: one child seed per rate is derived from ``seed``
    via ``np.random.SeedSequence(seed).spawn``, so the same (seed, rates)
    pair always replays the identical sweep, while every rate's arrival
    jitter and payloads are statistically independent of every other
    rate's.  (Reusing ``seed`` verbatim at each rate — the old behaviour —
    made all points of the curve share one correlated random stream.)
    """
    children = np.random.SeedSequence(seed).spawn(len(rates_rps))
    results = []
    for rate, child in zip(rates_rps, children):
        config = LoadgenConfig(num_requests=num_requests, mode="open",
                               offered_rps=rate,
                               seed=int(child.generate_state(1)[0]))
        results.append(run_load(server, input_shape, config))
    return results
