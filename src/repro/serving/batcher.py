"""Request queue and dynamic batcher.

Clients submit single requests (one or a few images each) and get a
:class:`ServedFuture` back immediately.  The serving loop pulls
:class:`Batch` objects from the :class:`DynamicBatcher`: it blocks for the
first pending request, then keeps coalescing arrivals until either
``max_batch_samples`` images are collected or ``max_wait_s`` has elapsed
since the batch opened — the classic dynamic-batching policy (max batch
size + max wait deadline) from Clipper-style serving systems.  With
``max_batch_samples=1`` / ``max_wait_s=0`` it degenerates to FIFO
one-request-at-a-time dispatch, which is the baseline the benchmarks
compare against.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time

import numpy as np

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer, tracing_enabled
from .telemetry import RequestTelemetry

# Batch occupancy is small-integer valued; these bounds make the
# histogram read as "how often did we flush at size <= N".
BATCH_SAMPLES_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class RequestError(RuntimeError):
    """The server failed (or refused) to serve a request."""


class QueueFullError(RequestError):
    """Admission control rejected the request: the queue is at capacity."""


class ServedFuture:
    """Handle to an in-flight request; resolves to per-sample labels."""

    def __init__(self, request_id: int, x: np.ndarray,
                 telemetry: RequestTelemetry):
        self.request_id = request_id
        self.x = x
        self.telemetry = telemetry
        self._done = threading.Event()
        self._result: np.ndarray | None = None
        self._error: Exception | None = None

    def set_result(self, labels: np.ndarray) -> None:
        self._result = labels
        self._done.set()

    def set_error(self, error: Exception) -> None:
        self._error = error
        self.telemetry.error = str(error)
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until served; returns predicted labels for every sample."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not served within {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclasses.dataclass
class Batch:
    """A set of coalesced requests dispatched as one fused forward."""

    requests: list[ServedFuture]

    @property
    def sizes(self) -> list[int]:
        return [len(r.x) for r in self.requests]

    @property
    def num_samples(self) -> int:
        return sum(self.sizes)

    def concatenated(self) -> np.ndarray:
        if len(self.requests) == 1:
            return self.requests[0].x
        return np.concatenate([r.x for r in self.requests], axis=0)


@dataclasses.dataclass(frozen=True)
class BatchingConfig:
    max_batch_samples: int = 16    # flush when this many images are pending
    max_wait_s: float = 0.002      # ...or this long after the batch opened
    queue_capacity: int = 4096     # admission-control bound on pending requests


class DynamicBatcher:
    """Thread-safe request queue with deadline-based batch formation."""

    def __init__(self, config: BatchingConfig | None = None):
        self.config = config or BatchingConfig()
        self._queue: "queue.Queue[ServedFuture]" = queue.Queue(
            maxsize=self.config.queue_capacity)
        self._closed = threading.Event()
        registry = get_registry()
        self._queue_depth = registry.gauge("serving.queue_depth")
        self._occupancy = registry.histogram("serving.batch_samples",
                                             bounds=BATCH_SAMPLES_BOUNDS)

    # -- client side ----------------------------------------------------
    def submit(self, future: ServedFuture) -> None:
        if self._closed.is_set():
            raise RequestError("server is shut down")
        try:
            self._queue.put_nowait(future)
        except queue.Full:
            raise QueueFullError(
                f"queue at capacity ({self.config.queue_capacity})") from None

    def close(self) -> None:
        self._closed.set()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def pending(self) -> int:
        return self._queue.qsize()

    def drain(self) -> list[ServedFuture]:
        """Remove and return everything still queued (used at shutdown)."""
        out = []
        while True:
            try:
                out.append(self._queue.get_nowait())
            except queue.Empty:
                return out

    # -- server side ----------------------------------------------------
    def next_batch(self, poll_interval: float = 0.05) -> Batch | None:
        """Block for the next batch; ``None`` once closed and drained.

        The batch opens when the first request arrives; further requests
        join until the sample cap or the wait deadline is hit.  Requests
        never split across batches, so one oversized request (more samples
        than ``max_batch_samples``) still dispatches — alone.
        """
        config = self.config
        while True:
            try:
                first = self._queue.get(timeout=poll_interval)
                break
            except queue.Empty:
                if self._closed.is_set():
                    return None
        form_wall = time.time()
        form_t0 = time.perf_counter()
        requests = [first]
        num_samples = len(first.x)
        deadline = form_t0 + config.max_wait_s
        while num_samples < config.max_batch_samples:
            remaining = deadline - time.perf_counter()
            if remaining <= 0 and self._queue.empty():
                break
            try:
                nxt = self._queue.get(timeout=max(0.0, remaining))
            except queue.Empty:
                break
            requests.append(nxt)
            num_samples += len(nxt.x)
        self._queue_depth.set(self._queue.qsize())
        self._occupancy.observe(num_samples)
        if tracing_enabled():
            # Batch formation belongs to the trace of the request that
            # opened the batch (the one that waited for coalescing).
            get_tracer().emit(
                "batch.form", trace_id=first.request_id,
                ts=form_wall, duration_s=time.perf_counter() - form_t0,
                attrs={"requests": len(requests), "samples": num_samples})
        return Batch(requests=requests)
