"""Self-contained demo systems for the serving layer.

Builds a small N-worker split (one tiny sub-model per emulated device plus
a fusion MLP) without the full ED-ViT pipeline, so the CLI subcommands,
the CI serving-smoke job, the benchmarks, and the examples can all stand
up a serveable fleet in well under a second.  Any registered model kind
("vit", "vgg", "snn") can be served; ``train_fusion=True`` additionally
fits the fusion MLP on synthetic data so degraded-mode accuracy is
meaningful rather than random.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..core.inference import extract_features
from ..core.training import TrainConfig, train_classifier
from ..data import cifar10_like
from ..edge.codec import get_codec
from ..edge.device import DeviceModel
from ..edge.network import LinkModel
from ..edge.runtime import EdgeCluster, WorkerSpec
from ..models.fusion import FusionMLP, build_fusion_for
from ..models.snn import ConvSNN, SNNConfig
from ..models.vgg import VGG, VGGConfig
from ..models.vit import ViTConfig, VisionTransformer


def _tiny_model(kind: str, num_classes: int, image_size: int,
                rng: np.random.Generator) -> nn.Module:
    if kind == "vit":
        return VisionTransformer(
            ViTConfig(image_size=image_size, patch_size=4,
                      num_classes=num_classes, depth=1, embed_dim=8,
                      num_heads=2),
            rng=rng)
    if kind == "vgg":
        return VGG(
            VGGConfig(plan="vgg8", image_size=image_size,
                      num_classes=num_classes, width_scale=0.0625,
                      classifier_hidden=128),
            rng=rng)
    if kind == "snn":
        return ConvSNN(
            SNNConfig(image_size=image_size, num_classes=num_classes,
                      channels=(4, 8, 8), time_steps=2,
                      classifier_hidden=16),
            rng=rng)
    raise KeyError(f"unknown demo model kind {kind!r}; "
                   "choose 'vit', 'vgg', or 'snn'")


def fused_labels(models: list[nn.Module], fusion: FusionMLP, x: np.ndarray,
                 zero_indices: tuple[int, ...] = (),
                 codec: str | None = None) -> np.ndarray:
    """Reference fused prediction computed in-process (no cluster).

    ``zero_indices`` zero-fills those sub-models' feature slots, matching
    the server's degraded-fusion path exactly.  ``codec`` additionally
    round-trips each feature array through that wire codec's
    encode→decode, reproducing the quantization the served fleet would
    fuse — the hook the planner's codec selection measures accuracy
    with.  Shared by the demo and planning layers so the fusion
    reference exists only once.
    """
    wire = None if codec in (None, "raw32") else get_codec(codec)
    chunks = []
    for index, model in enumerate(models):
        feats = extract_features(model, x)
        if index in zero_indices:
            feats = np.zeros_like(feats)
        elif wire is not None:
            feats = wire.decode(wire.encode(feats))
        chunks.append(feats)
    logits = fusion.predict(np.concatenate(chunks, axis=-1))
    return logits.argmax(axis=-1)


@dataclasses.dataclass
class DemoSystem:
    """A ready-to-serve fleet: worker specs, local twins, and fusion."""

    specs: list[WorkerSpec]
    models: list[nn.Module]            # in-process copies of the sub-models
    fusion: FusionMLP
    input_shape: tuple[int, int, int]  # one sample, (C, H, W)
    num_classes: int
    time_scale: float = 0.0
    transport: str = "multiprocess"    # repro.edge.transport substrate
    codec: str = "raw32"               # wire codec the specs carry

    def make_cluster(self) -> EdgeCluster:
        return EdgeCluster(self.specs, time_scale=self.time_scale,
                           transport=self.transport)

    def local_fused_labels(self, x: np.ndarray,
                           zero_workers: tuple[int, ...] = ()) -> np.ndarray:
        """Reference prediction; ``zero_workers`` emulates dead workers.

        Applies the system's wire-codec round trip, so served labels are
        comparable even under lossy codecs.
        """
        return fused_labels(self.models, self.fusion, x,
                            zero_indices=zero_workers, codec=self.codec)


def train_demo_system(models: list[nn.Module], fusion: FusionMLP,
                      image_size: int, seed: int, fusion_epochs: int = 8):
    """The deterministic demo training protocol; returns the dataset used.

    First gives each sub-model informative features (brief classifier
    training), then fits the fusion MLP on the frozen concatenated
    features — mirroring the paper's train-then-fuse protocol at demo
    scale.  Fully seeded, so the same (models, seed, epochs) always
    reproduces the same weights; the planning layer relies on this to
    rebuild a trained system from a JSON plan recipe.
    """
    if fusion.config.num_classes != 10:
        raise ValueError("train_fusion uses the 10-class synthetic set; "
                         "pass num_classes=10")
    dataset = cifar10_like(image_size=image_size, train_per_class=48,
                           test_per_class=16, noise_std=0.3, seed=seed)
    for index, model in enumerate(models):
        train_classifier(model, dataset.x_train, dataset.y_train,
                         TrainConfig(epochs=fusion_epochs, lr=3e-3,
                                     seed=seed + index))
    features = np.concatenate(
        [extract_features(m, dataset.x_train) for m in models], axis=-1)
    train_classifier(fusion, features, dataset.y_train,
                     TrainConfig(epochs=2 * fusion_epochs, lr=3e-3,
                                 seed=seed))
    return dataset


def build_demo_system(num_workers: int = 2, model_kind: str = "vit",
                      num_classes: int = 10, image_size: int = 8,
                      seed: int = 0, time_scale: float = 0.0,
                      train_fusion: bool = False,
                      fusion_epochs: int = 8,
                      transport: str = "multiprocess",
                      codec: str = "raw32",
                      link: LinkModel | None = None) -> DemoSystem:
    """Build an ``num_workers``-device demo split of ``model_kind``.

    ``transport`` picks the worker substrate, ``codec`` the feature wire
    codec, and ``link`` overrides the default (effectively free) uplink —
    e.g. :func:`repro.edge.network.tc_capped_link` plus a nonzero
    ``time_scale`` makes the fleet communication-bound like the paper's.
    """
    models = [_tiny_model(model_kind, num_classes, image_size,
                          np.random.default_rng(seed + index))
              for index in range(num_workers)]
    link = link or LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0)
    specs = [WorkerSpec.from_model(
        f"w{index}", model, model_kind, flops_per_sample=1e6,
        device=DeviceModel(device_id=f"w{index}", macs_per_second=1e12),
        link=link, codec=codec)
        for index, model in enumerate(models)]
    fusion = build_fusion_for([m.feature_dim() for m in models],
                              num_classes=num_classes,
                              rng=np.random.default_rng(seed + 1000))
    if train_fusion:
        train_demo_system(models, fusion, image_size, seed, fusion_epochs)
        # Refresh the worker specs so they ship the trained weights.
        for spec, model in zip(specs, models):
            spec.state_blob = nn.state_dict_to_bytes(model.state_dict())
    return DemoSystem(specs=specs, models=models, fusion=fusion,
                      input_shape=(3, image_size, image_size),
                      num_classes=num_classes, time_scale=time_scale,
                      transport=transport, codec=codec)
