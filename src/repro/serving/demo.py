"""Self-contained demo systems for the serving layer.

Builds a small N-worker split (one tiny sub-model per emulated device plus
a fusion MLP) without the full ED-ViT pipeline, so the CLI subcommands,
the CI serving-smoke job, the benchmarks, and the examples can all stand
up a serveable fleet in well under a second.  Any registered model kind
("vit", "vgg", "snn") can be served; ``train_fusion=True`` additionally
fits the fusion MLP on synthetic data so degraded-mode accuracy is
meaningful rather than random.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..core.inference import extract_features
from ..core.training import TrainConfig, train_classifier
from ..data import cifar10_like
from ..edge.codec import get_codec
from ..edge.device import DeviceModel
from ..edge.network import LinkModel
from ..edge.runtime import EdgeCluster, WorkerSpec
from ..models.fusion import FusionMLP, build_fusion_for
from ..models.snn import ConvSNN, SNNConfig
from ..models.vgg import VGG, VGGConfig
from ..models.vit import ViTConfig, VisionTransformer
from ..store import (
    ArtifactStore,
    fusion_recipe,
    recipe_digest,
    submodel_recipe,
    warm_load,
)

# Name of the deterministic demo training protocol; recorded in plan
# ``build`` dicts and artifact recipes so a digest pins the exact
# protocol the weights came from.
DEMO_RECIPE = "demo-v1"


def demo_dataset(image_size: int, seed: int):
    """The seeded synthetic dataset of the ``demo-v1`` training recipe."""
    return cifar10_like(image_size=image_size, train_per_class=48,
                        test_per_class=16, noise_std=0.3, seed=seed)


def _tiny_model(kind: str, num_classes: int, image_size: int,
                rng: np.random.Generator) -> nn.Module:
    if kind == "vit":
        return VisionTransformer(
            ViTConfig(image_size=image_size, patch_size=4,
                      num_classes=num_classes, depth=1, embed_dim=8,
                      num_heads=2),
            rng=rng)
    if kind == "vgg":
        return VGG(
            VGGConfig(plan="vgg8", image_size=image_size,
                      num_classes=num_classes, width_scale=0.0625,
                      classifier_hidden=128),
            rng=rng)
    if kind == "snn":
        return ConvSNN(
            SNNConfig(image_size=image_size, num_classes=num_classes,
                      channels=(4, 8, 8), time_steps=2,
                      classifier_hidden=16),
            rng=rng)
    raise KeyError(f"unknown demo model kind {kind!r}; "
                   "choose 'vit', 'vgg', or 'snn'")


def fused_labels(models: list[nn.Module], fusion: FusionMLP, x: np.ndarray,
                 zero_indices: tuple[int, ...] = (),
                 codec: str | None = None) -> np.ndarray:
    """Reference fused prediction computed in-process (no cluster).

    ``zero_indices`` zero-fills those sub-models' feature slots, matching
    the server's degraded-fusion path exactly.  ``codec`` additionally
    round-trips each feature array through that wire codec's
    encode→decode, reproducing the quantization the served fleet would
    fuse — the hook the planner's codec selection measures accuracy
    with.  Shared by the demo and planning layers so the fusion
    reference exists only once.
    """
    wire = None if codec in (None, "raw32") else get_codec(codec)
    chunks = []
    for index, model in enumerate(models):
        feats = extract_features(model, x)
        if index in zero_indices:
            feats = np.zeros_like(feats)
        elif wire is not None:
            feats = wire.decode(wire.encode(feats))
        chunks.append(feats)
    logits = fusion.predict(np.concatenate(chunks, axis=-1))
    return logits.argmax(axis=-1)


@dataclasses.dataclass
class DemoSystem:
    """A ready-to-serve fleet: worker specs, local twins, and fusion."""

    specs: list[WorkerSpec]
    models: list[nn.Module]            # in-process copies of the sub-models
    fusion: FusionMLP
    input_shape: tuple[int, int, int]  # one sample, (C, H, W)
    num_classes: int
    time_scale: float = 0.0
    transport: str = "multiprocess"    # repro.edge.transport substrate
    codec: str = "raw32"               # wire codec the specs carry
    warm_booted: bool = False          # weights came from an artifact store
    artifacts: dict[str, str] = dataclasses.field(default_factory=dict)

    def make_cluster(self) -> EdgeCluster:
        return EdgeCluster(self.specs, time_scale=self.time_scale,
                           transport=self.transport)

    def local_fused_labels(self, x: np.ndarray,
                           zero_workers: tuple[int, ...] = ()) -> np.ndarray:
        """Reference prediction; ``zero_workers`` emulates dead workers.

        Applies the system's wire-codec round trip, so served labels are
        comparable even under lossy codecs.
        """
        return fused_labels(self.models, self.fusion, x,
                            zero_indices=zero_workers, codec=self.codec)


def train_demo_system(models: list[nn.Module], fusion: FusionMLP,
                      image_size: int, seed: int, fusion_epochs: int = 8):
    """The deterministic demo training protocol; returns the dataset used.

    First gives each sub-model informative features (brief classifier
    training), then fits the fusion MLP on the frozen concatenated
    features — mirroring the paper's train-then-fuse protocol at demo
    scale.  Fully seeded, so the same (models, seed, epochs) always
    reproduces the same weights; the planning layer relies on this to
    rebuild a trained system from a JSON plan recipe.
    """
    if fusion.config.num_classes != 10:
        raise ValueError("train_fusion uses the 10-class synthetic set; "
                         "pass num_classes=10")
    dataset = demo_dataset(image_size, seed)
    for index, model in enumerate(models):
        train_classifier(model, dataset.x_train, dataset.y_train,
                         TrainConfig(epochs=fusion_epochs, lr=3e-3,
                                     seed=seed + index))
    features = np.concatenate(
        [extract_features(m, dataset.x_train) for m in models], axis=-1)
    train_classifier(fusion, features, dataset.y_train,
                     TrainConfig(epochs=2 * fusion_epochs, lr=3e-3,
                                 seed=seed))
    return dataset


def _demo_recipes(models: list[nn.Module], fusion: FusionMLP,
                  model_kind: str, image_size: int, train_fusion: bool,
                  fusion_epochs: int, seed: int) -> dict[str, dict]:
    """Rebuild recipes for a demo fleet, keyed by worker id + "fusion".

    The same shape as :meth:`repro.planning.DeploymentPlan.
    submodel_recipe` (kind, config, hp, classes, seed, train settings),
    with ``classes=None`` because the demo trains every sub-model on all
    classes rather than a partition subset.
    """
    train = {"recipe": DEMO_RECIPE, "model_kind": model_kind,
             "image_size": int(image_size),
             "train_fusion": bool(train_fusion),
             "fusion_epochs": int(fusion_epochs)}
    recipes = {f"w{index}": submodel_recipe(kind=model_kind,
                                            config=model.config.to_dict(),
                                            hp=0, classes=None,
                                            seed=seed + index, train=train)
               for index, model in enumerate(models)}
    recipes["fusion"] = fusion_recipe(config=fusion.config.to_dict(),
                                      seed=seed + 1000, train=train,
                                      submodels=list(recipes.values()))
    return recipes


def build_demo_system(num_workers: int = 2, model_kind: str = "vit",
                      num_classes: int = 10, image_size: int = 8,
                      seed: int = 0, time_scale: float = 0.0,
                      train_fusion: bool = False,
                      fusion_epochs: int = 8,
                      transport: str = "multiprocess",
                      codec: str = "raw32",
                      link: LinkModel | None = None,
                      store: ArtifactStore | None = None) -> DemoSystem:
    """Build an ``num_workers``-device demo split of ``model_kind``.

    ``transport`` picks the worker substrate, ``codec`` the feature wire
    codec, and ``link`` overrides the default (effectively free) uplink —
    e.g. :func:`repro.edge.network.tc_capped_link` plus a nonzero
    ``time_scale`` makes the fleet communication-bound like the paper's.

    ``store`` enables warm boot: when every artifact of this system's
    rebuild recipe is present, the weights are checkpoint-loaded and
    training is skipped entirely; otherwise the system is built cold and
    the store is populated, so the next boot is warm.
    """
    models = [_tiny_model(model_kind, num_classes, image_size,
                          np.random.default_rng(seed + index))
              for index in range(num_workers)]
    link = link or LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0)
    fusion = build_fusion_for([m.feature_dim() for m in models],
                              num_classes=num_classes,
                              rng=np.random.default_rng(seed + 1000))
    warm = False
    digests: dict[str, str] = {}
    recipes: dict[str, dict] = {}
    if store is not None:
        recipes = _demo_recipes(models, fusion, model_kind, image_size,
                                train_fusion, fusion_epochs, seed)
        digests = {name: recipe_digest(recipe)
                   for name, recipe in recipes.items()}
        modules = {f"w{index}": model
                   for index, model in enumerate(models)}
        modules["fusion"] = fusion
        warm = warm_load(store, digests, modules)
    if not warm and train_fusion:
        train_demo_system(models, fusion, image_size, seed, fusion_epochs)
    if not warm and store is not None:
        for index, model in enumerate(models):
            name = f"w{index}"
            store.put(digests[name], model, config=model.config.to_dict(),
                      kind=model_kind,
                      meta={"model_id": name, "recipe": recipes[name]})
        store.put(digests["fusion"], fusion,
                  config=fusion.config.to_dict(), kind="fusion",
                  meta={"model_id": "fusion", "recipe": recipes["fusion"]})
    # Specs are cut after the weights are resolved (warm-loaded or
    # trained), so every worker ships the final state blob.
    specs = [WorkerSpec.from_model(
        f"w{index}", model, model_kind, flops_per_sample=1e6,
        device=DeviceModel(device_id=f"w{index}", macs_per_second=1e12),
        link=link, codec=codec)
        for index, model in enumerate(models)]
    return DemoSystem(specs=specs, models=models, fusion=fusion,
                      input_shape=(3, image_size, image_size),
                      num_classes=num_classes, time_scale=time_scale,
                      transport=transport, codec=codec,
                      warm_booted=warm, artifacts=dict(digests))
