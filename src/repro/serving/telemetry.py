"""Per-request telemetry and aggregate serving statistics.

Every request that passes through :class:`repro.serving.InferenceServer`
gets a :class:`RequestTelemetry` record with the full latency breakdown
(queue wait, scatter/gather, emulated compute and transfer, fusion), and
:class:`ServingReport` aggregates a run's records into throughput,
p50/p95/p99 latency, and per-worker health — the numbers a serving
dashboard would plot.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

import numpy as np

# Version stamp on every exported report dict; bump on breaking shape
# changes so downstream consumers of `repro serve --json` can dispatch.
SERVING_SCHEMA_VERSION = 1


def percentile(values: Sequence[float], q: float) -> float | None:
    """Linear-interpolated percentile (``q`` in [0, 100]); None when empty.

    An empty window has no percentile — returning ``None`` (not NaN)
    keeps aggregate reports JSON-serializable: ``json.dumps`` renders
    ``None`` as ``null`` but emits the non-standard token ``NaN`` for
    ``float("nan")``, which breaks downstream parsers of the CLI's
    machine-readable output.
    """
    if not len(values):
        return None
    return float(np.percentile(values, q))


def _round(value: float | None, digits: int, scale: float = 1.0):
    """Scale+round for display/json rows; passes ``None`` through."""
    if value is None:
        return None
    return round(value * scale, digits)


@dataclasses.dataclass
class RequestTelemetry:
    """Latency breakdown for one served request (all durations seconds)."""

    request_id: int
    num_samples: int                   # images in this request
    enqueued_at: float                 # perf_counter timestamps
    enqueued_wall: float = 0.0         # wall clock (unix s): aligns spans
    dispatched_at: float = 0.0
    completed_at: float = 0.0
    batch_requests: int = 0            # requests coalesced into its batch
    batch_samples: int = 0             # images in that batch
    queue_s: float = 0.0               # enqueue -> dispatch
    gather_s: float = 0.0              # scatter -> last worker reply
    fusion_s: float = 0.0              # fusion forward
    emulated_compute_s: float = 0.0    # critical-path worker compute
    emulated_transfer_s: float = 0.0   # critical-path feature transfer
    bytes_out: int = 0                 # input bytes scattered to workers
    bytes_in: int = 0                  # encoded feature bytes gathered
    degraded: bool = False             # zero-filled features were used
    workers_down: tuple[str, ...] = ()
    error: str | None = None

    @property
    def total_s(self) -> float:
        return self.completed_at - self.enqueued_at

    @property
    def service_s(self) -> float:
        return self.completed_at - self.dispatched_at


@dataclasses.dataclass
class ServingReport:
    """Aggregate statistics over a window of completed requests."""

    completed: int
    failed: int
    wall_seconds: float
    throughput_rps: float              # requests / second
    throughput_sps: float              # samples (images) / second
    # Latency stats are None for an empty window (no completed requests):
    # there is no meaningful percentile, and None stays valid JSON.
    latency_p50_s: float | None
    latency_p95_s: float | None
    latency_p99_s: float | None
    latency_mean_s: float | None
    queue_mean_s: float | None
    gather_mean_s: float | None
    fusion_mean_s: float | None
    mean_batch_requests: float | None
    degraded_requests: int
    worker_health: dict[str, str]      # worker_id -> "up" | reason it is down
    wire_bytes_out: int = 0            # total input bytes scattered
    wire_bytes_in: int = 0             # total encoded feature bytes gathered
    effective_bw_mbps: float = 0.0     # gathered wire Mbit per wall second
    started_at: float | None = None    # wall clock (unix s) the window began
    metrics: dict | None = None        # registry snapshot, when requested

    # Packed column layout for the single-pass aggregation below.
    _COLS = ("total", "queue", "gather", "fusion", "samples",
             "batch_requests", "bytes_out", "bytes_in", "ok", "degraded")

    @staticmethod
    def from_records(records: Iterable[RequestTelemetry],
                     wall_seconds: float,
                     worker_health: dict[str, str] | None = None,
                     started_at: float | None = None,
                     metrics: dict | None = None,
                     ) -> "ServingReport":
        # One python pass packs every record into a (n, 10) float64 matrix;
        # all aggregation (masking, sums, means, percentiles) then runs as
        # numpy column reductions.  At loadgen scale this path executes per
        # report per rate point, so it must not re-walk the records once
        # per field.
        records = list(records)
        n = len(records)
        cols = np.empty((n, len(ServingReport._COLS)), dtype=np.float64)
        for i, r in enumerate(records):
            cols[i] = (r.completed_at - r.enqueued_at, r.queue_s, r.gather_s,
                       r.fusion_s, r.num_samples, r.batch_requests,
                       r.bytes_out, r.bytes_in, r.error is None, r.degraded)
        ok = cols[:, 8].astype(bool) if n else np.zeros(0, dtype=bool)
        done = cols[ok]
        completed = int(done.shape[0])
        failed = n - completed
        wall = max(wall_seconds, 1e-12)

        if completed:
            totals = done[:, 0]
            p50, p95, p99 = (float(v) for v in
                             np.percentile(totals, (50, 95, 99)))
            means = done[:, :4].mean(axis=0)
            lat_mean, queue_mean, gather_mean, fusion_mean = \
                (float(v) for v in means)
            batch_mean = float(done[:, 5].mean())
        else:
            p50 = p95 = p99 = lat_mean = None
            queue_mean = gather_mean = fusion_mean = batch_mean = None
        sums = done[:, (4, 6, 7, 9)].sum(axis=0) if completed else \
            np.zeros(4)
        samples, wire_out, wire_in, degraded = (float(v) for v in sums)

        return ServingReport(
            completed=completed,
            failed=failed,
            wall_seconds=wall_seconds,
            throughput_rps=completed / wall,
            throughput_sps=samples / wall,
            latency_p50_s=p50,
            latency_p95_s=p95,
            latency_p99_s=p99,
            latency_mean_s=lat_mean,
            queue_mean_s=queue_mean,
            gather_mean_s=gather_mean,
            fusion_mean_s=fusion_mean,
            mean_batch_requests=batch_mean,
            degraded_requests=int(degraded),
            worker_health=dict(worker_health or {}),
            wire_bytes_out=int(wire_out),
            wire_bytes_in=int(wire_in),
            effective_bw_mbps=wire_in * 8 / 1e6 / wall,
            started_at=started_at,
            metrics=metrics,
        )

    def to_dict(self) -> dict:
        """JSON-serializable view (empty-window stats are ``null``)."""
        data = dataclasses.asdict(self)
        data["schema_version"] = SERVING_SCHEMA_VERSION
        return data

    def row(self) -> dict:
        """One flat dict, ready for :func:`repro.core.metrics.format_table`."""
        down = sorted(w for w, s in self.worker_health.items() if s != "up")
        return {
            "completed": self.completed,
            "failed": self.failed,
            "rps": round(self.throughput_rps, 2),
            "img/s": round(self.throughput_sps, 2),
            "p50_ms": _round(self.latency_p50_s, 3, 1e3),
            "p95_ms": _round(self.latency_p95_s, 3, 1e3),
            "p99_ms": _round(self.latency_p99_s, 3, 1e3),
            "queue_ms": _round(self.queue_mean_s, 3, 1e3),
            "fusion_ms": _round(self.fusion_mean_s, 3, 1e3),
            "batch_reqs": _round(self.mean_batch_requests, 2),
            "wire_in_kb": round(self.wire_bytes_in / 1024, 1),
            "wire_out_kb": round(self.wire_bytes_out / 1024, 1),
            "bw_mbps": round(self.effective_bw_mbps, 3),
            "degraded": self.degraded_requests,
            "down": ",".join(down) or "-",
        }
