"""Asynchronous request-level inference server over an :class:`EdgeCluster`.

The server owns three moving parts:

* a :class:`~repro.serving.batcher.DynamicBatcher` that coalesces
  concurrent single-image requests into fused batches;
* a dispatcher thread that scatters each batch to every live worker at
  once and gathers replies by polling all pipes concurrently
  (``EdgeCluster.submit`` / ``EdgeCluster.poll``), so one slow device
  never serializes the gather; and
* failure-aware fusion: a worker that times out, errors, or dies is
  marked down and its feature slot is zero-filled, so the fleet keeps
  answering in degraded mode — the runtime version of
  ``examples/fault_tolerance.py``'s offline analysis.

Fusion layout is tracked as **slots**: one slot per sub-model, in the
order the fusion MLP was trained on, each currently hosted by some worker.
By default slot ids equal the initial worker ids (one sub-model per
worker).  An optional ``replanner`` hook (wired up by
:class:`repro.planning.execute.PlannedSystem`) is invoked when hosts go
down; it may spawn replacement workers (``EdgeCluster.add_worker``) and
return a new slot→worker hosting map, after which fusion recovers real
features for the failed slots instead of zero-filling them forever.

Every request carries a :class:`~repro.serving.telemetry.RequestTelemetry`
breakdown; :meth:`InferenceServer.stats` aggregates them into a
:class:`~repro.serving.telemetry.ServingReport`.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from typing import Callable

import numpy as np

from ..core.inference import predict, split_batch
from ..edge import wire
from ..edge.runtime import EdgeCluster, WorkerSpec
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer, new_span_id, tracing_enabled
from .batcher import (
    Batch,
    BatchingConfig,
    DynamicBatcher,
    RequestError,
    ServedFuture,
)
from .telemetry import RequestTelemetry, ServingReport


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    batching: BatchingConfig = dataclasses.field(default_factory=BatchingConfig)
    worker_timeout_s: float = 5.0      # per-batch gather deadline
    poll_interval_s: float = 0.02      # pipe-poll granularity
    max_records: int = 100_000         # telemetry ring-buffer bound


class InferenceServer:
    """Queue -> dynamic batcher -> concurrent scatter/gather -> fusion."""

    def __init__(self, cluster: EdgeCluster, fusion,
                 config: ServerConfig | None = None,
                 replanner: Callable[["InferenceServer", list[str]],
                                     dict[str, str] | None] | None = None):
        self.config = config or ServerConfig()
        self._cluster = cluster
        self._fusion = fusion
        self._batcher = DynamicBatcher(self.config.batching)
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        # Ring buffer: a long-lived server must not grow without bound.
        self._records: "collections.deque[RequestTelemetry]" = \
            collections.deque(maxlen=self.config.max_records)
        self._dropped = 0
        self._started_at = 0.0
        self._stopped_at: float | None = None
        self._health_snapshot: dict[str, str] | None = None
        self._input_shape: tuple[int, ...] | None = None
        # Fusion layout: one slot per sub-model (captured at first start),
        # each hosted by some worker.  Replanning rewrites the hosting;
        # rolling swaps retarget single slots from other threads, so all
        # hosting reads/writes go through _hosting_lock and the serve
        # loop works from a per-batch snapshot.
        self._replanner = replanner
        self._slots: list[str] = []
        self._hosting: dict[str, str] = {}
        self._hosting_lock = threading.Lock()
        self._inflight_hosts: set[str] = set()
        self._slot_dims: dict[str, int] = {}
        self._replan_attempted: set[str] = set()
        self._started_wall: float | None = None
        registry = get_registry()
        self._m_requests = registry.counter("serving.requests_total")
        self._m_dropped = registry.counter("serving.dropped_total")
        self._m_failed = registry.counter("serving.failed_total")
        self._m_degraded = registry.counter("serving.degraded_total")
        self._m_swaps = registry.counter("serving.swaps_total")

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("server already started")
        cluster_was_down = not self._cluster.started
        if cluster_was_down:
            self._cluster.start()
        if self._batcher.closed:       # restarting after stop(): fresh queue
            self._batcher = DynamicBatcher(self.config.batching)
        dims = self._cluster.feature_dims()
        if not self._slots:
            # First start: one slot per worker, in cluster (= fusion
            # training) order.  Kept across restarts so recovery workers
            # added by replanning never become extra slots.
            self._slots = list(self._cluster.worker_ids)
            self._slot_dims = {slot: dims[slot] for slot in self._slots}
        # Under the lock: a swap_worker or hosting() racing a restart must
        # see either the old map or the fresh identity map, never a
        # half-written one.
        with self._hosting_lock:
            if cluster_was_down or not self._hosting:
                # Fresh processes for every spec: identity hosting is
                # correct again.  When the cluster survived the stop
                # (shutdown_cluster=False), keep the replanned hosting —
                # the original workers may still be dead.
                self._hosting = {slot: slot for slot in self._slots}
                self._replan_attempted = set()
        self._input_shape = self._expected_input_shape()
        self._stopped_at = None
        self._health_snapshot = None
        self._started_at = time.perf_counter()
        self._started_wall = time.time()
        self._thread = threading.Thread(target=self._serve_loop,
                                        name="repro-serving", daemon=True)
        self._thread.start()

    def stop(self, shutdown_cluster: bool = True) -> None:
        """Stop serving.  Idempotent; pending requests fail cleanly."""
        if self._thread is None:
            return
        self._batcher.close()
        self._thread.join(timeout=30)
        self._thread = None
        self._stopped_at = time.perf_counter()
        # Cluster shutdown clears its down-map; freeze health for
        # post-stop stats()/worker_health() calls.
        self._health_snapshot = self.worker_health()
        for future in self._batcher.drain():
            future.telemetry.completed_at = time.perf_counter()
            future.set_error(RequestError("server stopped"))
            self._record(future.telemetry)
        if shutdown_cluster:
            self._cluster.shutdown()

    def __enter__(self) -> "InferenceServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _expected_input_shape(self) -> tuple[int, ...] | None:
        """Per-sample input shape derived from the worker model configs."""
        config = self._cluster.specs[0].model_config
        try:
            size = int(config["image_size"])
            channels = int(config["in_channels"])
        except (KeyError, TypeError, ValueError):
            return None                # custom kind without standard keys
        return (channels, size, size)

    def submit(self, x: np.ndarray) -> ServedFuture:
        """Enqueue one request (a small stack of images); never blocks.

        Shape-mismatched requests are rejected here with a typed
        :class:`RequestError`, so one bad client cannot poison the batch
        its request would have been coalesced into.
        """
        if self._thread is None:
            raise RuntimeError("server not started; use start() or a with-block")
        # Canonicalize to the wire dtype up front: a float64 client must
        # not double the bytes (and emulated transfer time) of the batch
        # its request is coalesced into.
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.ndim == 3:                # single image -> batch of one
            x = x[None]
        if self._input_shape is not None and x.shape[1:] != self._input_shape:
            with self._lock:
                self._dropped += 1
            self._m_dropped.inc()
            raise RequestError(
                f"bad request shape {x.shape[1:]}; this fleet serves "
                f"samples of shape {self._input_shape}")
        telemetry = RequestTelemetry(request_id=self._cluster.next_request_id(),
                                     num_samples=len(x),
                                     enqueued_at=time.perf_counter(),
                                     enqueued_wall=time.time())
        future = ServedFuture(telemetry.request_id, x, telemetry)
        try:
            self._batcher.submit(future)
        except RequestError:
            with self._lock:
                self._dropped += 1
            self._m_dropped.inc()
            raise
        self._m_requests.inc()
        return future

    def infer(self, x: np.ndarray, timeout: float | None = 60.0) -> np.ndarray:
        """Synchronous convenience wrapper: submit and wait for labels."""
        return self.submit(x).result(timeout)

    # ------------------------------------------------------------------
    @property
    def cluster(self) -> EdgeCluster:
        """The underlying fleet (e.g. for health probes or kill injection)."""
        return self._cluster

    @property
    def slots(self) -> list[str]:
        """Fusion-layout slot ids (one per sub-model), in fusion order."""
        return list(self._slots)

    def hosting(self) -> dict[str, str]:
        """Current slot→worker hosting map (identity until a replan/swap)."""
        with self._hosting_lock:
            return dict(self._hosting)

    def swap_worker(self, slot: str, spec: WorkerSpec,
                    drain_timeout_s: float = 30.0) -> str:
        """Zero-downtime rolling swap: replace ``slot``'s hosting worker.

        The rolling-deployment primitive: boot ``spec`` (e.g. a worker
        carrying a new model artifact), wait until it reports ready,
        atomically retarget the fusion slot at it, drain any in-flight
        batch still owed by the old worker, then retire the old worker.
        Requests are never dropped: batches dispatched before the swap
        gather from the old worker (still alive until drained), batches
        after it from the new one.

        The replacement must produce the slot's feature width (the
        fusion MLP's input layout is immutable).  Raises if the new
        worker fails to start — the old worker keeps serving, so a bad
        artifact cannot take the slot down.  Returns the new worker id.
        """
        if not self._slots:
            raise RuntimeError("no fusion layout yet; start the server "
                               "before swapping workers")
        if slot not in self._slots:
            raise KeyError(f"unknown fusion slot {slot!r}; "
                           f"slots: {self._slots}")
        expected = self._slot_dims.get(slot)
        if expected is not None and spec.feature_dim is not None \
                and int(spec.feature_dim) != int(expected):
            raise ValueError(
                f"slot {slot!r} fuses {expected}-dim features but the "
                f"replacement produces {spec.feature_dim}")
        # Spawn first, swap second: the slot keeps its old worker until
        # the replacement has proven it can serve.
        self._cluster.add_worker(spec)
        with self._hosting_lock:
            old = self._hosting.get(slot, slot)
            self._hosting[slot] = spec.worker_id
            # The swap runs on a caller thread while _maybe_replan runs on
            # the serve thread; the attempted-set is shared mutable state
            # and rides under the same lock as the hosting map.
            self._replan_attempted.discard(spec.worker_id)
        if old == spec.worker_id or not self._cluster.started:
            return spec.worker_id
        if old in set(self.hosting().values()):
            # The old worker still hosts another slot (co-hosted after a
            # replan); it must keep running.
            return spec.worker_id
        # Drain: wait for the serve loop to finish any batch the old
        # worker was dispatched in, then retire it.  Even on timeout the
        # batch merely degrades (zero-fill) — it is never dropped.
        deadline = time.perf_counter() + drain_timeout_s
        while time.perf_counter() < deadline:
            with self._hosting_lock:
                busy = old in self._inflight_hosts
            if not busy:
                break
            time.sleep(min(0.002, self.config.poll_interval_s))
        self._cluster.mark_down(old, "retired by rolling swap")
        self._m_swaps.inc()
        return spec.worker_id

    def worker_health(self) -> dict[str, str]:
        """``worker_id -> "up"`` or the reason the worker was marked down."""
        if self._health_snapshot is not None:
            return dict(self._health_snapshot)
        down = self._cluster.down_workers
        return {wid: down.get(wid, "up") for wid in self._cluster.worker_ids}

    @property
    def dropped(self) -> int:
        """Requests rejected at admission (queue full)."""
        with self._lock:
            return self._dropped

    def records(self) -> list[RequestTelemetry]:
        with self._lock:
            return list(self._records)

    def stats(self, include_metrics: bool = False) -> ServingReport:
        end = self._stopped_at if self._stopped_at is not None \
            else time.perf_counter()
        metrics = get_registry().snapshot() if include_metrics else None
        return ServingReport.from_records(
            self.records(), wall_seconds=end - self._started_at,
            worker_health=self.worker_health(),
            started_at=self._started_wall, metrics=metrics)

    def _record(self, telemetry: RequestTelemetry) -> None:
        with self._lock:
            self._records.append(telemetry)

    # ------------------------------------------------------------------
    def _serve_loop(self) -> None:
        while True:
            batch = self._batcher.next_batch(self.config.poll_interval_s)
            if batch is None:
                return
            try:
                self._serve_batch(batch)
            except Exception as exc:   # a bad batch must not kill the server
                now = time.perf_counter()
                for future in batch.requests:
                    future.telemetry.completed_at = now
                    future.set_error(RequestError(f"serving failed: {exc}"))
                    self._record(future.telemetry)
                self._m_failed.inc(len(batch.requests))
            finally:
                with self._hosting_lock:
                    self._inflight_hosts = set()

    def _trace_requests(self, batch: Batch, batch_id: int) -> None:
        """Retroactively emit per-request spans from telemetry the serve
        path measured anyway (no double timing)."""
        tracer = get_tracer()
        for future in batch.requests:
            t = future.telemetry
            root = new_span_id()
            attrs = {"batch_id": batch_id, "samples": t.num_samples}
            if t.degraded:
                attrs["degraded"] = True
            if t.error is not None:
                attrs["error"] = t.error
            tracer.emit("request", trace_id=t.request_id, span_id=root,
                        ts=t.enqueued_wall, duration_s=t.total_s,
                        attrs=attrs)
            tracer.emit("request.queue", trace_id=t.request_id,
                        parent_id=root, ts=t.enqueued_wall,
                        duration_s=t.queue_s)

    def _serve_batch(self, batch: Batch) -> None:
        traced = tracing_enabled()
        dispatched_at = time.perf_counter()
        dispatched_wall = time.time()
        for future in batch.requests:
            telemetry = future.telemetry
            telemetry.dispatched_at = dispatched_at
            telemetry.queue_s = dispatched_at - telemetry.enqueued_at
            telemetry.batch_requests = len(batch.requests)
            telemetry.batch_samples = batch.num_samples
        x = batch.concatenated()

        # Snapshot the hosting map for this whole batch: a rolling swap
        # landing mid-batch must not change which worker's features fill
        # which slot after dispatch already happened.  _inflight_hosts
        # tells swap_worker which workers still owe this batch a reply.
        with self._hosting_lock:
            hosting = dict(self._hosting)
            self._inflight_hosts = set(hosting.values())

        # Scatter to every live hosting worker under one shared request id.
        # The batch span id is minted *before* dispatch so worker-process
        # spans can parent to it via the propagated trace context; the
        # span itself is emitted retroactively once the batch resolves.
        request_id = self._cluster.next_request_id()
        batch_span_id = new_span_id() if traced else None
        trace_ctx = {"trace_id": request_id,
                     "parent_id": batch_span_id} if traced else None
        hosts = sorted(set(hosting.values()))
        pending: set[str] = set()
        for worker_id in hosts:
            # submit() detects dead processes / closed pipes itself and
            # marks the worker down, so no liveness pre-check here.
            if self._cluster.submit(worker_id, request_id, x,
                                    trace=trace_ctx):
                pending.add(worker_id)
        bytes_out = x.nbytes * len(pending)
        if not pending:
            # Whole fleet down: answering from an all-zeros fusion input
            # would be a constant-label lie — fail loudly instead.
            now = time.perf_counter()
            for future in batch.requests:
                future.telemetry.completed_at = now
                future.telemetry.workers_down = tuple(self._slots)
                future.set_error(RequestError("no live workers"))
                self._record(future.telemetry)
            self._m_failed.inc(len(batch.requests))
            if traced:
                self._trace_requests(batch, request_id)
            self._maybe_replan()
            return

        # Gather concurrently: poll all pipes, detect deaths and deadline
        # misses, and degrade instead of hanging.
        features: dict[str, np.ndarray] = {}
        stats: dict[str, dict[str, float]] = {}
        deadline = dispatched_at + self.config.worker_timeout_s
        while pending:
            step = min(self.config.poll_interval_s,
                       max(0.0, deadline - time.perf_counter()))
            for worker_id, message in self._cluster.poll(step):
                if worker_id not in pending:
                    continue           # stale reply from an aborted batch
                if wire.command(message) == wire.FEATURES \
                        and wire.request_id(message) == request_id:
                    features[worker_id] = wire.payload(message)
                    stats[worker_id] = wire.stats(message)
                    pending.discard(worker_id)
                elif wire.command(message) == wire.ERROR \
                        and wire.request_id(message) == request_id:
                    # Per-request failure: the worker itself survives (its
                    # loop keeps serving), so only this batch degrades —
                    # its feature slot is zero-filled below.
                    pending.discard(worker_id)
            for worker_id in list(pending):
                if not self._cluster.is_alive(worker_id) \
                        and not self._cluster.has_buffered_reply(worker_id):
                    self._cluster.mark_down(worker_id, "process died mid-request")
                    pending.discard(worker_id)
            if pending and time.perf_counter() >= deadline:
                for worker_id in pending:
                    self._cluster.mark_down(
                        worker_id,
                        f"no reply within {self.config.worker_timeout_s}s")
                pending.clear()
        gather_s = time.perf_counter() - dispatched_at

        if not features:
            # Every dispatched worker errored (or died) on this batch —
            # answering from an all-zeros fusion would fabricate a
            # constant label, so fail these requests loudly instead.
            now = time.perf_counter()
            for future in batch.requests:
                future.telemetry.completed_at = now
                future.telemetry.gather_s = gather_s
                future.set_error(RequestError(
                    "no worker produced features for this batch"))
                self._record(future.telemetry)
            self._m_failed.inc(len(batch.requests))
            if traced:
                self._trace_requests(batch, request_id)
            return

        # Degraded fusion: zero-fill the feature slot of every sub-model
        # whose hosting worker did not answer, preserving the concatenation
        # layout the fusion MLP was trained on.
        missing = tuple(slot for slot in self._slots
                        if hosting[slot] not in features)
        ordered = []
        for slot in self._slots:
            host = hosting[slot]
            if host in features:
                ordered.append(features[host])
            else:
                ordered.append(np.zeros(
                    (len(x), self._slot_dims[slot]), dtype=np.float32))
        fusion_start = time.perf_counter()
        logits = predict(self._fusion, np.concatenate(ordered, axis=-1),
                         keep_workspaces=True)
        fusion_s = time.perf_counter() - fusion_start

        emulated_compute = max((s["emulated_compute_s"]
                                for s in stats.values()), default=0.0)
        emulated_transfer = max((s["emulated_transfer_s"]
                                 for s in stats.values()), default=0.0)
        # Wire accounting: inputs out to every dispatched worker, encoded
        # features back from every answering one — apportioned to the
        # coalesced requests by their share of the batch's samples.
        wire_in = int(sum(s.get("bytes_out", 0.0) for s in stats.values()))
        completed_at = time.perf_counter()
        labels = logits.argmax(axis=-1)
        for future, chunk in zip(batch.requests,
                                 split_batch(labels, batch.sizes)):
            telemetry = future.telemetry
            telemetry.completed_at = completed_at
            telemetry.gather_s = gather_s
            telemetry.fusion_s = fusion_s
            telemetry.emulated_compute_s = emulated_compute
            telemetry.emulated_transfer_s = emulated_transfer
            share = telemetry.num_samples / max(batch.num_samples, 1)
            telemetry.bytes_out = int(round(bytes_out * share))
            telemetry.bytes_in = int(round(wire_in * share))
            telemetry.degraded = bool(missing)
            telemetry.workers_down = missing
            future.set_result(chunk.copy())
            self._record(telemetry)
        if missing:
            self._m_degraded.inc(len(batch.requests))

        if traced:
            tracer = get_tracer()
            tracer.emit("batch.serve", trace_id=request_id,
                        span_id=batch_span_id, ts=dispatched_wall,
                        duration_s=completed_at - dispatched_at,
                        attrs={"requests": len(batch.requests),
                               "samples": batch.num_samples,
                               "workers": len(hosts),
                               "degraded": bool(missing)})
            tracer.emit("batch.gather", trace_id=request_id,
                        parent_id=batch_span_id, ts=dispatched_wall,
                        duration_s=gather_s)
            tracer.emit("batch.fusion", trace_id=request_id,
                        parent_id=batch_span_id,
                        ts=dispatched_wall + (fusion_start - dispatched_at),
                        duration_s=fusion_s)
            self._trace_requests(batch, request_id)

        # Degraded answers went out above; now try to recover the failed
        # slots so the *next* batch fuses real features again.
        if missing:
            self._maybe_replan()

    def _maybe_replan(self) -> None:
        """Invoke the replanner once per newly-down hosting worker.

        The hook runs on the serving thread, may spawn replacement workers
        via ``cluster.add_worker``, and returns an updated slot→worker
        hosting map (or ``None`` to stay in zero-fill degraded mode).  A
        host is only attempted once: a failed or infeasible replan must
        not turn into a respawn storm.
        """
        if self._replanner is None:
            return
        down = set(self._cluster.down_workers)
        with self._hosting_lock:
            hosts = set(self._hosting.values())
            attempted = set(self._replan_attempted)
        affected = sorted(
            host for host in hosts
            if (host in down or not self._cluster.is_alive(host))
            and host not in attempted)
        if not affected:
            return
        with self._hosting_lock:
            self._replan_attempted.update(affected)
        try:
            updated = self._replanner(self, affected)
        except Exception:              # infeasible/failed replan: degrade
            updated = None
        if updated:
            # Only known slots may be re-hosted; anything else is dropped.
            with self._hosting_lock:
                self._hosting.update({slot: worker
                                      for slot, worker in updated.items()
                                      if slot in self._hosting})
