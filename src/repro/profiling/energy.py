"""Energy accounting: the paper treats per-inference energy as proportional
to MAC count (Section III), with edge-device budgets expressed as available
FLOPs.  This module provides the conversion helpers used by the assignment
algorithm's energy constraint ``L · e_j ≤ E_i``.
"""

from __future__ import annotations

from ..models.vit import ViTConfig
from .flops import paper_flops

# Joules per MAC for a Raspberry-Pi-class in-order ARM core.  Only relative
# values matter for the optimization; this constant sets a physical scale
# (≈ 5 W at 0.456 GMAC/s effective throughput, see repro.edge.device).
JOULES_PER_MAC = 1.1e-8


def inference_energy_flops(config: ViTConfig) -> int:
    """Energy cost of one inference, in MACs (the paper's unit)."""
    return paper_flops(config)


def inference_energy_joules(config: ViTConfig) -> float:
    return paper_flops(config) * JOULES_PER_MAC


def workload_energy_flops(config: ViTConfig, num_samples: int) -> int:
    """``L · e_j`` — total FLOPs to process a workload of L samples."""
    return paper_flops(config) * num_samples
