"""Analytic FLOPs (MAC) accounting for ViT models — Section III of the paper.

The paper estimates energy as proportional to multiply-accumulate counts:

* fully-connected structures (patch embedding, FFN, MLP head) contribute
  ``FC_in × FC_out`` MACs per token;
* MHSA contributes ``3·p·d² + 2·p²·d`` MACs, i.e. the Q/K/V projections
  plus the two attention matmuls (the output projection is *not* counted —
  this matches the paper's own numbers: a sub-model with half the heads of
  ViT-Base reports exactly ViT-Small's 4.25 GMACs).

Two counters are provided:

* :func:`paper_flops` — faithful Section III accounting (used for the
  tables so ratios line up with the paper);
* :func:`detailed_flops` — full accounting including the attention output
  projection and final LayerNorm-free ops, for sanity cross-checks.
"""

from __future__ import annotations

import dataclasses

from ..models.vit import ViTConfig


@dataclasses.dataclass(frozen=True)
class FlopsBreakdown:
    """Per-component MAC counts for one forward pass of a ViT."""

    patch_embed: int
    attention_qkv: int
    attention_scores: int
    attention_output_proj: int
    ffn: int
    head: int

    @property
    def total(self) -> int:
        return (self.patch_embed + self.attention_qkv + self.attention_scores
                + self.attention_output_proj + self.ffn + self.head)

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self) | {"total": self.total}


def _breakdown(config: ViTConfig, include_output_proj: bool) -> FlopsBreakdown:
    p_img = config.num_patches            # patches from the image
    p = p_img + 1                         # +1 CLS token inside the blocks
    d = config.embed_dim
    a = config.resolved_attn_dim
    c = config.resolved_mlp_hidden
    patch_dim = config.in_channels * config.patch_size ** 2

    patch_embed = p_img * patch_dim * d
    qkv = config.depth * 3 * p * d * a
    scores = config.depth * 2 * p * p * a
    out_proj = config.depth * p * a * d if include_output_proj else 0
    ffn = config.depth * 2 * p * d * c
    head = d * config.num_classes
    return FlopsBreakdown(patch_embed, qkv, scores, out_proj, ffn, head)


def paper_flops(config: ViTConfig) -> int:
    """MAC count following Section III exactly (no attention output proj)."""
    return _breakdown(config, include_output_proj=False).total


def paper_flops_breakdown(config: ViTConfig) -> FlopsBreakdown:
    return _breakdown(config, include_output_proj=False)


def detailed_flops(config: ViTConfig) -> int:
    """MAC count including the attention output projection."""
    return _breakdown(config, include_output_proj=True).total


def mlp_flops(dims: list[int]) -> int:
    """MACs of a plain MLP given its layer widths (e.g. the fusion MLP)."""
    return sum(a * b for a, b in zip(dims[:-1], dims[1:]))


def fusion_flops(input_dim: int, num_classes: int, shrink: float = 0.5) -> int:
    hidden = max(4, int(round(input_dim * shrink)))
    return mlp_flops([input_dim, hidden, num_classes])


def vgg_flops(config) -> int:
    """MAC count of one VGG forward pass (convs + classifier).

    Conv layer: k^2 * C_in * C_out * H_out * W_out; maxpool is free in MAC
    terms.  Used to place the Split-CNN baseline on the simulated devices.
    """
    from ..models.vgg import VGGConfig  # local import to avoid a cycle

    assert isinstance(config, VGGConfig)
    total = 0
    in_ch = config.in_channels
    spatial = config.image_size
    for entry in config.scaled_plan():
        if entry == "M":
            spatial //= 2
            continue
        total += 9 * in_ch * entry * spatial * spatial
        in_ch = entry
    flat = in_ch * spatial * spatial
    hidden = max(8, int(round(config.classifier_hidden * config.width_scale)))
    total += flat * hidden + hidden * hidden + hidden * config.num_classes
    return total


def snn_flops(config) -> int:
    """Synaptic-operation count of one rate-coded ConvSNN forward pass.

    Every simulation time step re-runs the conv stack, so cost scales with
    ``time_steps`` — the reason Split-SNN shows the highest latency in the
    paper's Fig. 7 despite its small memory footprint.
    """
    from ..models.snn import SNNConfig

    assert isinstance(config, SNNConfig)
    per_step = 0
    in_ch = config.in_channels
    spatial = config.image_size
    for out_ch in config.scaled_channels():
        per_step += 9 * in_ch * out_ch * spatial * spatial
        spatial //= 2
        in_ch = out_ch
    flat = in_ch * spatial * spatial
    hidden = max(8, int(round(config.classifier_hidden * config.width_scale)))
    per_step += flat * hidden
    return per_step * config.time_steps + hidden * config.num_classes


def model_flops(kind: str, config) -> int:
    """Per-sample MAC count for any registered model family.

    ``kind`` matches the :data:`repro.edge.runtime.MODEL_KINDS` registry
    keys; the planning layer uses this to profile heterogeneous sub-models
    uniformly when building a :class:`~repro.planning.DeploymentPlan`.
    Custom kinds become plannable by passing a ``flops`` profiler to
    :func:`repro.edge.runtime.register_model_kind`.
    """
    from ..edge.runtime import MODEL_KINDS  # deferred: avoids an import cycle

    entry = MODEL_KINDS.get(kind)
    if entry is not None and entry.flops is not None:
        return entry.flops(config)
    raise KeyError(
        f"model kind {kind!r} has no registered flops profiler; pass "
        f"flops=... to register_model_kind (registered: {sorted(MODEL_KINDS)})")


def token_pruned_flops(config: ViTConfig, token_keep_ratio: float) -> int:
    """MACs with inference-time token pruning after the first block.

    Block 1 sees all ``p+1`` tokens; blocks 2..depth see ``k+1`` tokens
    where ``k = round(num_patches * keep_ratio)``.  Composes with the
    structural pruning encoded in ``config`` itself.
    """
    if not 0.0 < token_keep_ratio <= 1.0:
        raise ValueError("token_keep_ratio must be in (0, 1]")
    if config.depth < 2 or token_keep_ratio == 1.0:
        return paper_flops(config)
    full = _breakdown(config, include_output_proj=False)
    p_full = config.num_patches + 1
    kept = max(1, int(round(config.num_patches * token_keep_ratio))) + 1
    d, a, c = config.embed_dim, config.resolved_attn_dim, config.resolved_mlp_hidden

    def block_cost(p: int) -> int:
        return 3 * p * d * a + 2 * p * p * a + 2 * p * d * c

    blocks = block_cost(p_full) + (config.depth - 1) * block_cost(kept)
    return full.patch_embed + blocks + full.head
