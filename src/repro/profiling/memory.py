"""Parameter-count and memory-size accounting.

The paper reports model sizes in MB assuming float32 storage; its numbers
match ``parameters × 4 / 2**20`` (e.g. ViT-Base with a 10-class head is
85.86 M parameters = 327.6 MB, the paper's 327.38 MB).  We provide both an
analytic counter — usable for the full-size configs without materializing
86 M floats — and an exact counter for instantiated modules.
"""

from __future__ import annotations

from ..models.snn import SNNConfig
from ..models.vgg import VGGConfig
from ..models.vit import ViTConfig
from ..nn.modules import Module

BYTES_PER_PARAM = 4  # float32
MIB = float(2 ** 20)


def vit_param_count(config: ViTConfig) -> int:
    """Analytic parameter count of a (possibly pruned) ViT."""
    d = config.embed_dim
    a = config.resolved_attn_dim
    c = config.resolved_mlp_hidden
    patch_dim = config.in_channels * config.patch_size ** 2

    patch_embed = patch_dim * d + d
    cls_token = d
    pos_embed = (config.num_patches + 1) * d
    per_block = (
        2 * d                 # norm1
        + d * 3 * a + 3 * a   # qkv
        + a * d + d           # output projection
        + 2 * d               # norm2
        + d * c + c           # fc1
        + c * d + d           # fc2
    )
    final_norm = 2 * d
    head = d * config.num_classes + config.num_classes
    return (patch_embed + cls_token + pos_embed
            + config.depth * per_block + final_norm + head)


def vgg_param_count(config: VGGConfig) -> int:
    """Analytic parameter count of a VGG (with optional batch norm)."""
    total = 0
    in_ch = config.in_channels
    num_pools = 0
    for entry in config.scaled_plan():
        if entry == "M":
            num_pools += 1
            continue
        total += in_ch * entry * 9 + entry          # conv 3x3 + bias
        if config.batch_norm:
            total += 2 * entry                       # gamma/beta
        in_ch = entry
    spatial = config.image_size // (2 ** num_pools)
    flat = in_ch * spatial * spatial
    hidden = max(8, int(round(config.classifier_hidden * config.width_scale)))
    total += flat * hidden + hidden
    total += hidden * hidden + hidden
    total += hidden * config.num_classes + config.num_classes
    return total


def snn_param_count(config: SNNConfig) -> int:
    total = 0
    in_ch = config.in_channels
    for out_ch in config.scaled_channels():
        total += in_ch * out_ch * 9 + out_ch
        in_ch = out_ch
    spatial = config.image_size // (2 ** len(config.scaled_channels()))
    flat = in_ch * spatial * spatial
    hidden = max(8, int(round(config.classifier_hidden * config.width_scale)))
    total += flat * hidden + hidden
    total += hidden * config.num_classes + config.num_classes
    return total


def param_bytes(num_params: int) -> int:
    return num_params * BYTES_PER_PARAM


def size_mb(num_params: int) -> float:
    """Model size in MB (MiB, to match the paper's reporting)."""
    return param_bytes(num_params) / MIB


def module_param_count(module: Module) -> int:
    """Exact parameter count of an instantiated module."""
    return module.num_parameters()


def module_size_mb(module: Module) -> float:
    return size_mb(module_param_count(module))
