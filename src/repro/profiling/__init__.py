"""Analytic FLOPs / memory / energy profiling (Section III of the paper)."""

from .energy import (
    JOULES_PER_MAC,
    inference_energy_flops,
    inference_energy_joules,
    workload_energy_flops,
)
from .flops import (
    FlopsBreakdown,
    detailed_flops,
    fusion_flops,
    mlp_flops,
    model_flops,
    paper_flops,
    paper_flops_breakdown,
    snn_flops,
    token_pruned_flops,
    vgg_flops,
)
from .memory import (
    BYTES_PER_PARAM,
    module_param_count,
    module_size_mb,
    param_bytes,
    size_mb,
    snn_param_count,
    vgg_param_count,
    vit_param_count,
)

__all__ = [
    "BYTES_PER_PARAM",
    "FlopsBreakdown",
    "JOULES_PER_MAC",
    "detailed_flops",
    "fusion_flops",
    "inference_energy_flops",
    "inference_energy_joules",
    "mlp_flops",
    "model_flops",
    "module_param_count",
    "module_size_mb",
    "paper_flops",
    "paper_flops_breakdown",
    "param_bytes",
    "size_mb",
    "snn_flops",
    "snn_param_count",
    "token_pruned_flops",
    "vgg_flops",
    "vgg_param_count",
    "vit_param_count",
    "workload_energy_flops",
]
