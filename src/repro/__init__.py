"""ED-ViT reproduction: partitioning Vision Transformers across edge devices.

Reproduction of "Efficient Partitioning Vision Transformer on Edge Devices
for Distributed Inference" (ICDCS 2025).  Subpackages:

* :mod:`repro.nn` — from-scratch numpy autograd framework (the PyTorch
  substitute everything else is built on);
* :mod:`repro.models` — ViT (S/B/L + scaled), VGG and ConvSNN comparators,
  the tower fusion MLP;
* :mod:`repro.profiling` — Section III analytic FLOPs/memory/energy;
* :mod:`repro.data` — synthetic stand-ins for the five benchmark datasets;
* :mod:`repro.pruning` — the three-stage KL structured pruner (Alg. 2) and
  channel pruning for the baselines;
* :mod:`repro.splitting` — class partitioning, head scheduling (Alg. 1),
  fusion training (Section IV-E);
* :mod:`repro.assignment` — greedy placement (Alg. 3) plus an optimal
  reference;
* :mod:`repro.edge` — calibrated Raspberry-Pi device models, tc-capped
  links, a discrete-event simulator, and process-based device emulation;
* :mod:`repro.serving` — asynchronous request-level serving: dynamic
  batching, concurrent scatter/gather dispatch, failure-aware degraded
  fusion, telemetry, and a Poisson load generator;
* :mod:`repro.obs` — observability: cross-process request tracing,
  a metrics registry, kernel/store profiling hooks, and Perfetto/JSONL
  trace export;
* :mod:`repro.planning` — the declarative deployment layer: a
  :class:`repro.planning.DeploymentPlan` scored by the DES simulator,
  JSON round-tripping, plan→serving execution, and online replanning
  after device failures;
* :mod:`repro.core` — the :func:`repro.core.build_edvit` orchestrator,
  training loops, and the experiment harness regenerating every table and
  figure;
* :mod:`repro.baselines` — Split-CNN (NNFacet) and Split-SNN (EC-SNN)
  comparator systems.
"""

from . import (
    assignment,
    baselines,
    core,
    data,
    edge,
    models,
    nn,
    obs,
    planning,
    profiling,
    pruning,
    serving,
    splitting,
    store,
)
from .core import EDViTConfig, EDViTSystem, build_edvit

__version__ = "0.1.0"

__all__ = [
    "EDViTConfig",
    "EDViTSystem",
    "assignment",
    "baselines",
    "build_edvit",
    "core",
    "data",
    "edge",
    "models",
    "nn",
    "obs",
    "planning",
    "profiling",
    "pruning",
    "serving",
    "splitting",
    "store",
    "__version__",
]
