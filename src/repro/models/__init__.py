"""Model zoo: Vision Transformers, the VGG/SNN comparators, and fusion MLP."""

from .fusion import FusionConfig, FusionMLP, build_fusion_for
from .snn import ConvSNN, LIFConvLayer, SNNConfig, csnn_tiny_config, spike_fn
from .vgg import VGG, VGGConfig, vgg8_micro_config, vgg11_tiny_config, vgg16_config
from .vit import (
    Block,
    FeedForward,
    MultiHeadSelfAttention,
    PatchEmbed,
    STANDARD_CONFIGS,
    ViTConfig,
    VisionTransformer,
    build_vit,
    vit_base_config,
    vit_large_config,
    vit_small_config,
    vit_tiny_config,
)

__all__ = [
    "Block",
    "ConvSNN",
    "FeedForward",
    "FusionConfig",
    "FusionMLP",
    "LIFConvLayer",
    "MultiHeadSelfAttention",
    "PatchEmbed",
    "SNNConfig",
    "STANDARD_CONFIGS",
    "VGG",
    "VGGConfig",
    "ViTConfig",
    "VisionTransformer",
    "build_fusion_for",
    "build_vit",
    "csnn_tiny_config",
    "spike_fn",
    "vgg11_tiny_config",
    "vgg16_config",
    "vgg8_micro_config",
    "vit_base_config",
    "vit_large_config",
    "vit_small_config",
    "vit_tiny_config",
]
