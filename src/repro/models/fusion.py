"""Fusion MLP (Section IV-E of the paper).

The aggregation device concatenates the feature vectors produced by the N
sub-models and feeds them through a tower-structured MLP::

    N*d*s  ->  lambda * N*d*s  ->  num_classes        (lambda = 0.5)

Training happens once, after all sub-models are frozen.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..nn.tensor import Tensor, concat


@dataclasses.dataclass(frozen=True)
class FusionConfig:
    input_dim: int
    num_classes: int
    shrink: float = 0.5   # the paper's lambda, default 0.5
    name: str = "fusion-mlp"

    @property
    def hidden_dim(self) -> int:
        return max(4, int(round(self.input_dim * self.shrink)))

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "FusionConfig":
        return FusionConfig(**data)


class FusionMLP(nn.Module):
    """Tower MLP fusing concatenated sub-model features into class logits."""

    def __init__(self, config: FusionConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or nn.init.default_rng()
        self.config = config
        self.fc1 = nn.Linear(config.input_dim, config.hidden_dim, rng=rng)
        self.fc2 = nn.Linear(config.hidden_dim, config.num_classes, rng=rng)

    def forward(self, features: Tensor) -> Tensor:
        return self.fc2(self.fc1(features).relu())

    def fuse(self, per_device_features: list[Tensor]) -> Tensor:
        """Concatenate per-device features then classify."""
        return self.forward(concat(per_device_features, axis=-1))

    def predict(self, features: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Batched raw-array logits via the graph-free inference engine."""
        from ..core.inference import predict as _predict

        return _predict(self, features, batch_size)


def build_fusion_for(feature_dims: list[int], num_classes: int,
                     shrink: float = 0.5,
                     rng: np.random.Generator | None = None) -> FusionMLP:
    """Construct the fusion MLP matching a set of sub-model feature widths."""
    config = FusionConfig(input_dim=int(sum(feature_dims)),
                          num_classes=num_classes, shrink=shrink)
    return FusionMLP(config, rng=rng)
