"""Attention analysis tools for Vision Transformers.

Used to *explain* what the pruner keeps: per-head attention entropy and
CLS-attention maps show which heads and tokens carry information, and
attention rollout (Abnar & Zuidema, 2020) propagates attention through
residual connections to attribute the CLS decision to input patches.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from .vit import VisionTransformer


def collect_attention_maps(model: VisionTransformer,
                           x: Tensor | np.ndarray) -> list[np.ndarray]:
    """Per-block softmax attention maps, each (B, H, P, P)."""
    x = x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float32))
    maps: list[np.ndarray] = []
    with nn.no_grad():
        tokens = model._embed(x)
        for block in model.blocks:
            maps.append(block.attn.attention_weights(block.norm1(tokens)))
            tokens = block(tokens)
    return maps


def cls_attention_map(model: VisionTransformer, x: Tensor | np.ndarray,
                      block_index: int = -1) -> np.ndarray:
    """CLS->patch attention of one block, head-averaged; shape (B, patches).

    This is the signal the token pruner uses to rank tokens.
    """
    maps = collect_attention_maps(model, x)
    attn = maps[block_index]
    return attn.mean(axis=1)[:, 0, 1:]


def attention_entropy(model: VisionTransformer,
                      x: Tensor | np.ndarray) -> np.ndarray:
    """Mean attention entropy per (block, head); shape (depth, heads).

    Low-entropy heads focus on few tokens (often the informative ones);
    near-uniform heads are frequent pruning victims.
    """
    maps = collect_attention_maps(model, x)
    depth = len(maps)
    heads = maps[0].shape[1]
    out = np.empty((depth, heads), dtype=np.float64)
    for b, attn in enumerate(maps):
        probs = np.clip(attn, 1e-12, None)
        entropy = -(probs * np.log(probs)).sum(axis=-1)   # (B, H, P)
        out[b] = entropy.mean(axis=(0, 2))
    return out


def attention_rollout(model: VisionTransformer, x: Tensor | np.ndarray,
                      head_fusion: str = "mean") -> np.ndarray:
    """Attention rollout: input-patch attribution of the CLS token.

    Multiplies head-fused attention matrices (each mixed with the identity
    to model the residual connection) across blocks; returns the CLS row
    over patches, normalized per sample; shape (B, patches).
    """
    maps = collect_attention_maps(model, x)
    batch, _, p, _ = maps[0].shape
    rollout = np.tile(np.eye(p, dtype=np.float64), (batch, 1, 1))
    for attn in maps:
        if head_fusion == "mean":
            fused = attn.mean(axis=1)
        elif head_fusion == "max":
            fused = attn.max(axis=1)
        else:
            raise ValueError(f"unknown head_fusion {head_fusion!r}")
        fused = 0.5 * fused + 0.5 * np.eye(p)
        fused = fused / fused.sum(axis=-1, keepdims=True)
        rollout = fused @ rollout
    cls_row = rollout[:, 0, 1:]
    total = cls_row.sum(axis=-1, keepdims=True)
    return cls_row / np.where(total > 0, total, 1.0)


def head_importance_profile(model: VisionTransformer,
                            x: Tensor | np.ndarray) -> np.ndarray:
    """Mean |contribution| of each head's value output; shape (depth, heads).

    A cheap magnitude-style head ranking, complementary to the exact KL
    scoring in :mod:`repro.pruning.importance`.
    """
    x = x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float32))
    cfg = model.config
    out = np.empty((cfg.depth, cfg.num_heads), dtype=np.float64)
    with nn.no_grad():
        tokens = model._embed(x)
        for b, block in enumerate(model.blocks):
            normed = block.norm1(tokens)
            attn = block.attn
            bsz, p, _ = normed.shape
            qkv = attn.qkv(normed).reshape(bsz, p, 3, attn.num_heads,
                                           attn.head_dim)
            v = qkv.transpose(2, 0, 3, 1, 4)[2]           # (B, H, P, dh)
            weights = attn.attention_weights(normed)       # (B, H, P, P)
            per_head = Tensor(weights).matmul(v)           # (B, H, P, dh)
            out[b] = np.abs(per_head.data).mean(axis=(0, 2, 3))
            tokens = block(tokens)
    return out
