"""Vision Transformer (Dosovitskiy et al., 2020) on :mod:`repro.nn`.

The implementation is deliberately close to the original ViT so that the
paper's three-stage structured pruning (Fig. 2) has well-defined targets:

* ``embed_dim`` (paper's *d*) — the residual-stream width, prunable in
  stage 1;
* ``attn_dim`` (paper's *h × d_q*) — the total width of the Q/K/V
  projections across heads, prunable in stage 2 without discarding whole
  heads (dims are pruned *within* heads, so ``attn_dim`` need not equal
  ``embed_dim`` after pruning);
* ``mlp_hidden`` (paper's *c*) — the FFN expansion width, prunable in
  stage 3.

Standard configurations (ViT-Small/Base/Large at 224×224, patch 16) match
Table I of the paper; scaled-down configurations are provided for trainable
experiments on synthetic data.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from .. import nn
from ..nn import ops
from ..nn.backend import get_backend
from ..nn.tensor import Tensor, concat, is_grad_enabled, is_inference


@dataclasses.dataclass(frozen=True)
class ViTConfig:
    """Architecture hyper-parameters of a (possibly pruned) ViT."""

    image_size: int = 224
    patch_size: int = 16
    in_channels: int = 3
    num_classes: int = 1000
    depth: int = 12
    embed_dim: int = 768
    num_heads: int = 12
    attn_dim: int | None = None     # total q/k/v width; defaults to embed_dim
    mlp_hidden: int | None = None   # defaults to 4 * embed_dim
    dropout: float = 0.0
    name: str = "vit"

    def __post_init__(self):
        if self.image_size % self.patch_size != 0:
            raise ValueError("image_size must be divisible by patch_size")
        if self.resolved_attn_dim % self.num_heads != 0:
            raise ValueError("attn_dim must be divisible by num_heads")

    @property
    def resolved_attn_dim(self) -> int:
        return self.attn_dim if self.attn_dim is not None else self.embed_dim

    @property
    def resolved_mlp_hidden(self) -> int:
        return self.mlp_hidden if self.mlp_hidden is not None else 4 * self.embed_dim

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @property
    def head_dim(self) -> int:
        return self.resolved_attn_dim // self.num_heads

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "ViTConfig":
        return ViTConfig(**data)


class PatchEmbed(nn.Module):
    """Non-overlapping patch projection implemented as a strided conv."""

    def __init__(self, config: ViTConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.proj = nn.Conv2d(config.in_channels, config.embed_dim,
                              kernel_size=config.patch_size,
                              stride=config.patch_size, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        # (B, C, H, W) -> (B, D, H/ps, W/ps) -> (B, num_patches, D)
        feat = self.proj(x)
        b, d = feat.shape[0], feat.shape[1]
        return feat.reshape(b, d, -1).swapaxes(1, 2)


class MultiHeadSelfAttention(nn.Module):
    """MHSA with a decoupled internal width so pruning can shrink it.

    Q/K/V each project ``embed_dim -> attn_dim``; the output projection maps
    ``attn_dim -> embed_dim``.  With ``attn_dim == embed_dim`` this is the
    textbook ViT block.
    """

    def __init__(self, embed_dim: int, num_heads: int, attn_dim: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        attn_dim = attn_dim if attn_dim is not None else embed_dim
        if attn_dim % num_heads != 0:
            raise ValueError("attn_dim must be divisible by num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.attn_dim = attn_dim
        self.head_dim = attn_dim // num_heads
        self.scale = 1.0 / math.sqrt(self.head_dim)
        self.qkv = nn.Linear(embed_dim, 3 * attn_dim, rng=rng)
        self.proj = nn.Linear(attn_dim, embed_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            return Tensor._noback(self._fused_forward(x.data))
        b, p, _ = x.shape
        h, dh = self.num_heads, self.head_dim
        qkv = self.qkv(x)                              # (B, P, 3*A)
        qkv = qkv.reshape(b, p, 3, h, dh)
        qkv = qkv.transpose(2, 0, 3, 1, 4)             # (3, B, H, P, dh)
        q, k, v = qkv[0], qkv[1], qkv[2]
        attn = q.matmul(k.swapaxes(-1, -2)) * self.scale   # (B, H, P, P)
        attn = ops.softmax(attn, axis=-1)
        out = attn.matmul(v)                           # (B, H, P, dh)
        out = out.transpose(0, 2, 1, 3).reshape(b, p, h * dh)
        return self.proj(out)

    def _fused_forward(self, x):
        """Graph-free attention on raw arrays: one QKV GEMM, in-place scaled
        softmax, workspace-cached score/projection buffers."""
        bk = get_backend()
        ws = self.workspace if is_inference() else None
        b, p, _ = x.shape
        h, dh = self.num_heads, self.head_dim
        qkv = self.qkv.infer(
            bk, x,
            out=None if ws is None else ws.buffer(
                "qkv", (b, p, 3 * self.attn_dim), x.dtype))
        qkv = qkv.reshape(b, p, 3, h, dh).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = bk.matmul(
            q, k.swapaxes(-1, -2),
            out=None if ws is None else ws.buffer("scores", (b, h, p, p),
                                                  x.dtype))
        scores *= self.scale
        bk.softmax(scores, axis=-1, out=scores)
        ctx = bk.matmul(scores, v)                     # (B, H, P, dh)
        ctx = bk.ascontiguous(ctx.transpose(0, 2, 1, 3)).reshape(b, p, h * dh)
        return self.proj.infer(
            bk, ctx,
            out=None if ws is None else ws.buffer("proj", (b, p, self.embed_dim),
                                                  x.dtype))

    def attention_weights(self, x: Tensor) -> np.ndarray:
        """Return softmax attention maps (B, H, P, P) without building a graph."""
        with nn.no_grad():
            b, p, _ = x.shape
            h, dh = self.num_heads, self.head_dim
            qkv = self.qkv(x).reshape(b, p, 3, h, dh).transpose(2, 0, 3, 1, 4)
            q, k = qkv[0], qkv[1]
            attn = q.matmul(k.swapaxes(-1, -2)) * self.scale
            return ops.softmax(attn, axis=-1).data


class FeedForward(nn.Module):
    """Two-layer MLP with GELU (the FFN of a transformer block)."""

    def __init__(self, embed_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.fc1 = nn.Linear(embed_dim, hidden_dim, rng=rng)
        self.fc2 = nn.Linear(hidden_dim, embed_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            return Tensor._noback(self._fused_forward(x.data))
        return self.fc2(ops.gelu(self.fc1(x), self.workspace))

    def _fused_forward(self, x):
        """Graph-free FFN on raw arrays with the GELU fused as a GEMM
        epilogue (``Linear.infer``/``QuantizedLinear.infer``)."""
        bk = get_backend()
        ws = self.workspace if is_inference() else None
        h = self.fc1.infer(
            bk, x, activation="gelu",
            out=None if ws is None else ws.buffer(
                "ffn_hidden", x.shape[:-1] + (self.fc1.out_features,),
                x.dtype))
        return self.fc2.infer(
            bk, h,
            out=None if ws is None else ws.buffer(
                "ffn_out", x.shape[:-1] + (self.fc2.out_features,), x.dtype))


class Block(nn.Module):
    """Pre-norm transformer encoder block: x + MHSA(LN(x)); x + FFN(LN(x))."""

    def __init__(self, config: ViTConfig, rng: np.random.Generator):
        super().__init__()
        self.norm1 = nn.LayerNorm(config.embed_dim)
        self.attn = MultiHeadSelfAttention(config.embed_dim, config.num_heads,
                                           config.resolved_attn_dim, rng=rng)
        self.norm2 = nn.LayerNorm(config.embed_dim)
        self.mlp = FeedForward(config.embed_dim, config.resolved_mlp_hidden, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            return Tensor._noback(self._fused_forward(x.data))
        x = x + self.attn(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x

    def _fused_forward(self, x):
        """Graph-free block forward on raw arrays with in-place residuals.

        The second residual accumulates in place into the array freshly
        allocated by the first, so each block allocates exactly one
        residual-stream array; everything else lives in module workspaces
        under ``inference_mode()``.
        """
        h1 = self.norm1(Tensor._noback(x))
        x = x + self.attn._fused_forward(h1.data)
        h2 = self.norm2(Tensor._noback(x))
        x += self.mlp(h2).data
        return x


class VisionTransformer(nn.Module):
    """ViT classifier with a CLS token and learned positional embeddings."""

    def __init__(self, config: ViTConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or nn.init.default_rng()
        self.config = config
        self.patch_embed = PatchEmbed(config, rng)
        self.cls_token = nn.Parameter(
            nn.init.trunc_normal(rng, (1, 1, config.embed_dim)))
        self.pos_embed = nn.Parameter(
            nn.init.trunc_normal(rng, (1, config.num_patches + 1, config.embed_dim)))
        self.dropout = nn.Dropout(config.dropout, rng=rng)
        self.blocks = nn.ModuleList([Block(config, rng) for _ in range(config.depth)])
        self.norm = nn.LayerNorm(config.embed_dim)
        self.head = nn.Linear(config.embed_dim, config.num_classes, rng=rng)

    # ------------------------------------------------------------------
    def _embed(self, x: Tensor) -> Tensor:
        tokens = self.patch_embed(x)                    # (B, P, D)
        b = tokens.shape[0]
        if not is_grad_enabled():
            bk = get_backend()
            cls = bk.broadcast_to(self.cls_token.data,
                                  (b, 1, self.config.embed_dim))
            data = bk.concatenate([cls, tokens.data], axis=1)
            data += self.pos_embed.data
            return self.dropout(Tensor._noback(data))
        cls = self.cls_token + nn.zeros((b, 1, self.config.embed_dim))
        tokens = concat([cls, tokens], axis=1)
        return self.dropout(tokens + self.pos_embed)

    def forward_features(self, x: Tensor,
                         token_keep_ratio: float | None = None) -> Tensor:
        """Return the normalized CLS embedding (B, embed_dim).

        This is the feature each edge device transmits to the fusion device
        (Section IV-E): its byte size is what Section V-D's communication
        accounting measures.

        ``token_keep_ratio`` enables inference-time token pruning (the
        orthogonal "token reduction" direction the paper cites): after the
        first block, only the patches the CLS token attends to most are
        kept — an EViT/Evo-ViT-style speedup that composes with ED-ViT's
        structural pruning.  ``None`` or ``1.0`` disables it.
        """
        tokens = self._embed(x)
        for i, block in enumerate(self.blocks):
            tokens = block(tokens)
            if (token_keep_ratio is not None and token_keep_ratio < 1.0
                    and i == 0 and len(self.blocks) > 1):
                tokens = self._prune_tokens(tokens, token_keep_ratio,
                                            next_block=self.blocks[1])
        return self.norm(tokens)[:, 0, :]

    def _prune_tokens(self, tokens: Tensor, keep_ratio: float,
                      next_block: "Block") -> Tensor:
        """Keep the CLS token plus the most-attended patch tokens."""
        if not 0.0 < keep_ratio <= 1.0:
            raise ValueError("token_keep_ratio must be in (0, 1]")
        b, p, _ = tokens.shape
        num_patches = p - 1
        keep = max(1, int(round(num_patches * keep_ratio)))
        # CLS -> patch attention of the *next* block scores token utility.
        attn = next_block.attn.attention_weights(next_block.norm1(tokens))
        cls_attention = attn.mean(axis=1)[:, 0, 1:]      # (B, patches)
        top = np.argsort(cls_attention, axis=-1)[:, -keep:]
        top = np.sort(top, axis=-1) + 1                  # +1 skips CLS
        index = np.concatenate(
            [np.zeros((b, 1), dtype=np.int64), top], axis=1)
        rows = np.arange(b, dtype=np.int64)[:, None]
        return tokens[rows, index]

    def forward(self, x: Tensor,
                token_keep_ratio: float | None = None) -> Tensor:
        return self.head(self.forward_features(x, token_keep_ratio))

    # ------------------------------------------------------------------
    def feature_dim(self) -> int:
        return self.config.embed_dim

    def replace_head(self, num_classes: int,
                     rng: np.random.Generator | None = None) -> None:
        """Swap the classification head (used when a sub-model serves a
        class subset plus the implicit "other" bucket)."""
        rng = rng or nn.init.default_rng()
        self.head = nn.Linear(self.config.embed_dim, num_classes, rng=rng)
        self.config = dataclasses.replace(self.config, num_classes=num_classes)


# ----------------------------------------------------------------------
# Standard configurations (Table I of the paper)
# ----------------------------------------------------------------------
def vit_small_config(num_classes: int = 1000, image_size: int = 224,
                     in_channels: int = 3) -> ViTConfig:
    return ViTConfig(image_size=image_size, patch_size=16, in_channels=in_channels,
                     num_classes=num_classes, depth=12, embed_dim=384, num_heads=6,
                     name="vit-small")


def vit_base_config(num_classes: int = 1000, image_size: int = 224,
                    in_channels: int = 3) -> ViTConfig:
    return ViTConfig(image_size=image_size, patch_size=16, in_channels=in_channels,
                     num_classes=num_classes, depth=12, embed_dim=768, num_heads=12,
                     name="vit-base")


def vit_large_config(num_classes: int = 1000, image_size: int = 224,
                     in_channels: int = 3) -> ViTConfig:
    return ViTConfig(image_size=image_size, patch_size=16, in_channels=in_channels,
                     num_classes=num_classes, depth=24, embed_dim=1024, num_heads=16,
                     name="vit-large")


def vit_tiny_config(num_classes: int = 10, image_size: int = 32,
                    in_channels: int = 3, depth: int = 4, embed_dim: int = 64,
                    num_heads: int = 4, patch_size: int = 8) -> ViTConfig:
    """Scaled-down ViT used for *trained* experiments on synthetic data.

    The full-size configs above are exercised analytically (FLOPs, memory,
    device latency); this config keeps end-to-end training tractable on CPU
    while preserving every structural element the pruner touches.
    """
    return ViTConfig(image_size=image_size, patch_size=patch_size,
                     in_channels=in_channels, num_classes=num_classes,
                     depth=depth, embed_dim=embed_dim, num_heads=num_heads,
                     name="vit-tiny")


STANDARD_CONFIGS = {
    "vit-small": vit_small_config,
    "vit-base": vit_base_config,
    "vit-large": vit_large_config,
    "vit-tiny": vit_tiny_config,
}


def build_vit(name: str, rng: np.random.Generator | None = None,
              **overrides) -> VisionTransformer:
    """Build a ViT by standard-config name (``vit-small``/``base``/``large``/``tiny``)."""
    if name not in STANDARD_CONFIGS:
        raise KeyError(f"unknown ViT config {name!r}; choose from {sorted(STANDARD_CONFIGS)}")
    return VisionTransformer(STANDARD_CONFIGS[name](**overrides), rng=rng)
