"""Convolutional Spiking Neural Network for the Split-SNN baseline.

EC-SNN — the Split-SNN comparator in Table III / Fig. 7 — converts a
VGG-style CNN into a rate-coded spiking network and splits it across edge
devices.  We implement a leaky integrate-and-fire (LIF) network trained
with surrogate gradients (the standard approach for deep SNNs): the spike
nonlinearity is a Heaviside step in the forward pass and a fast-sigmoid
derivative in the backward pass.

The network integrates inputs over ``time_steps`` simulation steps and
classifies from the accumulated output current, matching the rate-coding
scheme used by the EC-SNN paper's CSNN backbone.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..nn.backend import get_backend
from ..nn.tensor import Tensor, is_grad_enabled


def spike_fn(membrane: Tensor, threshold: float = 1.0,
             surrogate_scale: float = 5.0) -> Tensor:
    """Heaviside spike with fast-sigmoid surrogate gradient.

    Forward: ``spike = 1[v >= threshold]``.
    Backward: ``d spike / d v = scale / (1 + scale*|v - threshold|)^2``.
    """
    v = membrane.data
    spikes = (v >= threshold).astype(v.dtype)
    if not is_grad_enabled():
        # Graph-free path: no surrogate, no closure.
        return Tensor._noback(spikes)
    backend = get_backend()
    diff = backend.abs(v - threshold)
    surrogate = surrogate_scale / (1.0 + surrogate_scale * diff) ** 2

    def backward(grad):
        return [(membrane, grad * surrogate)]

    return Tensor._make(spikes, (membrane,), backward)


class LIFState:
    """Per-layer membrane state carried across time steps."""

    def __init__(self):
        self.membrane: Tensor | None = None

    def reset(self) -> None:
        self.membrane = None


class LIFConvLayer(nn.Module):
    """Conv -> LIF neuron layer with decaying membrane and reset-by-subtraction."""

    def __init__(self, in_channels: int, out_channels: int, decay: float = 0.5,
                 threshold: float = 1.0, rng: np.random.Generator | None = None):
        super().__init__()
        self.conv = nn.Conv2d(in_channels, out_channels, kernel_size=3, padding=1,
                              rng=rng)
        self.decay = decay
        self.threshold = threshold
        self.state = LIFState()

    def forward(self, x: Tensor) -> Tensor:
        current = self.conv(x)
        if self.state.membrane is None:
            membrane = current
        else:
            membrane = self.state.membrane * self.decay + current
        spikes = spike_fn(membrane, self.threshold)
        # Reset by subtraction keeps residual charge (better rate coding).
        self.state.membrane = membrane - spikes * self.threshold
        return spikes

    def reset_state(self) -> None:
        self.state.reset()


@dataclasses.dataclass(frozen=True)
class SNNConfig:
    image_size: int = 32
    in_channels: int = 3
    num_classes: int = 10
    channels: tuple[int, ...] = (32, 64, 128)
    time_steps: int = 4
    decay: float = 0.5
    threshold: float = 1.0
    classifier_hidden: int = 128
    width_scale: float = 1.0
    name: str = "csnn"

    def scaled_channels(self) -> tuple[int, ...]:
        return tuple(max(1, int(round(c * self.width_scale))) for c in self.channels)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "SNNConfig":
        data = dict(data)
        data["channels"] = tuple(data["channels"])
        return SNNConfig(**data)


class ConvSNN(nn.Module):
    """Rate-coded convolutional SNN: repeated LIF conv blocks + pooling."""

    def __init__(self, config: SNNConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or nn.init.default_rng()
        self.config = config

        channels = config.scaled_channels()
        self.lif_layers = nn.ModuleList([])
        in_ch = config.in_channels
        for out_ch in channels:
            self.lif_layers.append(
                LIFConvLayer(in_ch, out_ch, config.decay, config.threshold, rng=rng))
            in_ch = out_ch
        self.pool = nn.AvgPool2d(2)

        spatial = config.image_size // (2 ** len(channels))
        if spatial < 1:
            raise ValueError("image too small for the configured depth")
        self._flat_dim = in_ch * spatial * spatial
        hidden = max(8, int(round(config.classifier_hidden * config.width_scale)))
        self.fc_hidden = nn.Linear(self._flat_dim, hidden, rng=rng)
        self.fc_out = nn.Linear(hidden, config.num_classes, rng=rng)

    def reset_states(self) -> None:
        for layer in self.lif_layers:
            layer.reset_state()

    def _step(self, x: Tensor) -> Tensor:
        out = x
        for layer in self.lif_layers:
            out = self.pool(layer(out))
        return nn.ops.flatten(out, 1)

    def forward_features(self, x: Tensor) -> Tensor:
        """Time-averaged penultimate activations (the transmitted feature)."""
        self.reset_states()
        accumulated = None
        for _ in range(self.config.time_steps):
            feat = self.fc_hidden(self._step(x)).relu()
            accumulated = feat if accumulated is None else accumulated + feat
        return accumulated * (1.0 / self.config.time_steps)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc_out(self.forward_features(x))

    def feature_dim(self) -> int:
        return self.fc_hidden.out_features


def csnn_tiny_config(num_classes: int = 10, image_size: int = 32,
                     width_scale: float = 1.0, time_steps: int = 4) -> SNNConfig:
    return SNNConfig(image_size=image_size, num_classes=num_classes,
                     width_scale=width_scale, time_steps=time_steps,
                     name="csnn-tiny")
