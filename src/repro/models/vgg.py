"""VGG networks (Simonyan & Zisserman, 2014) for the Split-CNN baseline.

NNFacet — the Split-CNN comparator in Table III / Fig. 7 — splits a
VGG-16 backbone into class-specific sub-models via filter pruning.  We
reproduce that protocol on this implementation.  Channel widths are
parametrized by a ``width_scale`` so channel-wise pruning can instantiate
thinner variants, exactly as filter pruning would.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn

# Standard VGG layer plans: numbers are conv output channels, "M" is maxpool.
VGG_PLANS: dict[str, list] = {
    "vgg8": [64, "M", 128, "M", 256, 256, "M"],
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
              512, 512, 512, "M", 512, 512, 512, "M"],
}


@dataclasses.dataclass(frozen=True)
class VGGConfig:
    plan: str = "vgg16"
    image_size: int = 224
    in_channels: int = 3
    num_classes: int = 1000
    width_scale: float = 1.0
    classifier_hidden: int = 4096
    batch_norm: bool = True
    name: str = "vgg"
    # Explicit per-layer widths (with "M" entries), set by filter pruning so
    # the config keeps describing the actual architecture.  When present it
    # replaces the named plan + width_scale.
    plan_override: tuple | None = None

    def scaled_plan(self) -> list:
        if self.plan_override is not None:
            return list(self.plan_override)
        out = []
        for entry in VGG_PLANS[self.plan]:
            if entry == "M":
                out.append("M")
            else:
                out.append(max(1, int(round(entry * self.width_scale))))
        return out

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "VGGConfig":
        data = dict(data)
        if data.get("plan_override") is not None:
            data["plan_override"] = tuple(data["plan_override"])
        return VGGConfig(**data)


class VGG(nn.Module):
    """VGG backbone + 3-layer classifier head."""

    def __init__(self, config: VGGConfig, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or nn.init.default_rng()
        self.config = config

        layers: list[nn.Module] = []
        in_ch = config.in_channels
        num_pools = 0
        for entry in config.scaled_plan():
            if entry == "M":
                layers.append(nn.MaxPool2d(2))
                num_pools += 1
                continue
            layers.append(nn.Conv2d(in_ch, entry, kernel_size=3, padding=1, rng=rng))
            if config.batch_norm:
                layers.append(nn.BatchNorm2d(entry))
            layers.append(nn.ReLU())
            in_ch = entry
        self.features = nn.Sequential(*layers)

        spatial = config.image_size // (2 ** num_pools)
        if spatial < 1:
            raise ValueError(
                f"image_size {config.image_size} too small for plan {config.plan}")
        self._feature_dim = in_ch * spatial * spatial
        hidden = max(8, int(round(config.classifier_hidden * config.width_scale)))
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Linear(self._feature_dim, hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden, hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden, config.num_classes, rng=rng),
        )
        # Pre-split classifier views (parameters stay registered under
        # ``classifier`` so state-dict keys are unchanged): the penultimate
        # stack feeds the fusion device, the last layer produces logits.
        self._feature_head = list(self.classifier)[1:-1]

    def forward_features(self, x: nn.Tensor) -> nn.Tensor:
        """Penultimate activations transmitted to the fusion device."""
        feat = self.features(x)
        out = nn.ops.flatten(feat, 1)
        for layer in self._feature_head:
            out = layer(out)
        return out

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.classifier(self.features(x))

    def feature_dim(self) -> int:
        hidden_layer: nn.Linear = list(self.classifier)[-3]
        return hidden_layer.out_features


def vgg16_config(num_classes: int = 10, image_size: int = 224,
                 width_scale: float = 1.0) -> VGGConfig:
    return VGGConfig(plan="vgg16", image_size=image_size, num_classes=num_classes,
                     width_scale=width_scale, name="vgg16")


def vgg11_tiny_config(num_classes: int = 10, image_size: int = 32,
                      width_scale: float = 0.25) -> VGGConfig:
    """Scaled-down VGG for trained baseline experiments on synthetic data."""
    return VGGConfig(plan="vgg11", image_size=image_size, num_classes=num_classes,
                     width_scale=width_scale, classifier_hidden=256, name="vgg11-tiny")


def vgg8_micro_config(num_classes: int = 10, image_size: int = 16,
                      width_scale: float = 0.25) -> VGGConfig:
    """A 3-pool VGG for 16x16 experiments (vgg11/16 pool below 1 px there)."""
    return VGGConfig(plan="vgg8", image_size=image_size, num_classes=num_classes,
                     width_scale=width_scale, classifier_hidden=128, name="vgg8-micro")
