"""Split-SNN baseline (EC-SNN, Yu et al.).

EC-SNN converts a CNN backbone into a convolutional spiking network and
splits it across edge devices with channel-wise pruning.  We apply the
same class-partition / prune / fuse protocol to our surrogate-gradient
ConvSNN, mirroring :mod:`repro.baselines.split_cnn`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.training import TrainConfig, train_classifier
from ..data.synthetic import Dataset
from ..models.fusion import FusionMLP
from ..models.snn import ConvSNN
from ..pruning.channel import prune_snn
from ..splitting.class_assignment import balanced_class_partition
from ..splitting.fusion import (
    fused_accuracy,
    fused_predict,
    softmax_average_accuracy,
    train_fusion_mlp,
)


@dataclasses.dataclass
class SplitSNNConfig:
    num_devices: int
    keep_ratio: float = 0.5
    adapt_epochs: int = 2
    finetune_epochs: int = 3
    fusion_epochs: int = 5
    probe_size: int = 32
    lr: float = 1e-3
    seed: int = 0


@dataclasses.dataclass
class SplitSNNSubModel:
    model: ConvSNN
    classes: list[int]
    history: dict[str, float]
    one_vs_rest: bool = False


@dataclasses.dataclass
class SplitSNNSystem:
    submodels: list[SplitSNNSubModel]
    fusion: FusionMLP
    partition: list[list[int]]
    num_classes: int

    def predict(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Fused class predictions via the batched graph-free engine."""
        return fused_predict(self.submodels, self.fusion, x, batch_size)

    def accuracy(self, dataset: Dataset) -> float:
        return fused_accuracy(self.submodels, self.fusion, dataset)

    def softmax_average_accuracy(self, dataset: Dataset) -> float:
        return softmax_average_accuracy(self.submodels, dataset)

    def total_params(self) -> int:
        return sum(sm.model.num_parameters() for sm in self.submodels)


def _adapt_head(base: ConvSNN, num_classes: int,
                rng: np.random.Generator) -> ConvSNN:
    cfg = dataclasses.replace(base.config, num_classes=num_classes)
    new = ConvSNN(cfg, rng=rng)
    state = base.state_dict()
    own = new.state_dict()
    for key, value in state.items():
        if key in own and own[key].shape == value.shape:
            own[key] = value
    new.load_state_dict(own, strict=True)
    return new


def build_split_snn(base: ConvSNN, dataset: Dataset,
                    config: SplitSNNConfig) -> SplitSNNSystem:
    rng = np.random.default_rng(config.seed)
    partition = balanced_class_partition(dataset.num_classes,
                                         config.num_devices, rng)
    submodels: list[SplitSNNSubModel] = []
    for classes in partition:
        one_vs_rest = len(classes) == 1
        if one_vs_rest:
            from ..data.synthetic import one_vs_rest_dataset

            subset = one_vs_rest_dataset(dataset, classes[0], rng)
        else:
            subset = dataset.subset_of_classes(classes)
        history: dict[str, float] = {}
        model = _adapt_head(base, subset.num_classes, rng)
        if config.adapt_epochs > 0:
            result = train_classifier(
                model, subset.x_train, subset.y_train,
                TrainConfig(epochs=config.adapt_epochs, lr=config.lr,
                            seed=config.seed))
            history["adapt_acc"] = result.final_accuracy
        if config.keep_ratio < 1.0:
            probe_idx = rng.choice(len(subset.x_train),
                                   size=min(config.probe_size,
                                            len(subset.x_train)),
                                   replace=False)
            model = prune_snn(model, config.keep_ratio,
                              subset.x_train[probe_idx])
        if config.finetune_epochs > 0:
            result = train_classifier(
                model, subset.x_train, subset.y_train,
                TrainConfig(epochs=config.finetune_epochs, lr=config.lr,
                            seed=config.seed))
            history["finetune_acc"] = result.final_accuracy
        submodels.append(SplitSNNSubModel(model=model, classes=list(classes),
                                          history=history,
                                          one_vs_rest=one_vs_rest))

    fusion = train_fusion_mlp(submodels, dataset, epochs=config.fusion_epochs,
                              seed=config.seed)
    return SplitSNNSystem(submodels=submodels, fusion=fusion,
                          partition=partition,
                          num_classes=dataset.num_classes)
