"""Comparator systems: Split-CNN (NNFacet) and Split-SNN (EC-SNN)."""

from .split_cnn import SplitCNNConfig, SplitCNNSubModel, SplitCNNSystem, build_split_cnn
from .split_snn import SplitSNNConfig, SplitSNNSubModel, SplitSNNSystem, build_split_snn

__all__ = [
    "SplitCNNConfig",
    "SplitCNNSubModel",
    "SplitCNNSystem",
    "SplitSNNConfig",
    "SplitSNNSubModel",
    "SplitSNNSystem",
    "build_split_cnn",
    "build_split_snn",
]
