"""The head-pruning schedule loop of Algorithm 1 (lines 7–20).

Algorithm 1 prunes all sub-models with the current head numbers, checks the
fleet memory budget, attempts a greedy assignment, and — on failure —
increments the pruning head number of the largest sub-model and repeats.

The memory size and FLOPs of a sub-model depend only on its ``hp`` (the
class subset changes the head layer by a negligible amount), so we run this
loop *analytically* using :func:`repro.pruning.structured.pruned_dims` and
only execute the expensive weight-level pruning once, after the schedule
converges.  This is semantically identical to the paper's loop while
avoiding wasted retraining.
"""

from __future__ import annotations

import dataclasses

from ..assignment import AssignmentPlan, DeviceSpec, SubModelSpec, try_greedy_assign
from ..models.vit import ViTConfig
from ..profiling import paper_flops, param_bytes, vit_param_count
from ..pruning.structured import pruned_dims


class ScheduleInfeasible(Exception):
    """No head schedule satisfies the budget/assignment constraints."""


@dataclasses.dataclass(frozen=True)
class SubModelFootprint:
    """Analytic footprint of one sub-model under a candidate ``hp``."""

    index: int
    hp: int
    config: ViTConfig
    size_bytes: int
    flops_per_sample: float

    def to_spec(self, classes: tuple[int, ...]) -> SubModelSpec:
        return SubModelSpec(model_id=f"submodel-{self.index}",
                            size_bytes=self.size_bytes,
                            flops_per_sample=self.flops_per_sample,
                            classes=classes)


def submodel_config(base: ViTConfig, hp: int, num_classes: int) -> ViTConfig:
    """The ViT config a sub-model will have after pruning with ``hp``."""
    dims = pruned_dims(base, hp)
    return dataclasses.replace(
        base, embed_dim=dims["embed_dim"], attn_dim=dims["attn_dim"],
        mlp_hidden=dims["mlp_hidden"], num_classes=num_classes,
        name=f"{base.name}-hp{hp}")


def footprint(base: ViTConfig, index: int, hp: int,
              num_classes: int) -> SubModelFootprint:
    cfg = submodel_config(base, hp, num_classes)
    return SubModelFootprint(index=index, hp=hp, config=cfg,
                             size_bytes=param_bytes(vit_param_count(cfg)),
                             flops_per_sample=float(paper_flops(cfg)))


@dataclasses.dataclass
class HeadSchedule:
    """The converged output of Algorithm 1's scheduling loop."""

    hps: list[int]
    footprints: list[SubModelFootprint]
    plan: AssignmentPlan
    iterations: int

    @property
    def total_size_bytes(self) -> int:
        return sum(f.size_bytes for f in self.footprints)


def plan_head_schedule(base: ViTConfig, class_groups: list[list[int]],
                       devices: list[DeviceSpec], memory_budget_bytes: int,
                       num_samples: int,
                       initial_hp: list[int] | int | None = None,
                       max_iterations: int = 10_000) -> HeadSchedule:
    """Iterate head-pruning numbers until the fleet fits (Algorithm 1).

    ``initial_hp`` defaults to ``h/2`` for every sub-model, which matches
    the paper's observed single-device operating point (a ViT-Base pruned
    to half its heads).  Raises :class:`ScheduleInfeasible` if the most
    aggressive schedule (one effective head-worth of dims) still violates
    the constraints.
    """
    n = len(class_groups)
    h = base.num_heads
    if isinstance(initial_hp, int):
        hps = [initial_hp] * n
    elif initial_hp is not None:
        if len(initial_hp) != n:
            raise ValueError("initial_hp length must match the number of groups")
        hps = list(initial_hp)
    else:
        hps = [h // 2] * n
    if any(not 0 <= hp < h for hp in hps):
        raise ValueError(f"initial hp values must be in [0, {h})")

    for iteration in range(1, max_iterations + 1):
        feet = [footprint(base, i, hp, len(group))
                for i, (hp, group) in enumerate(zip(hps, class_groups))]
        total = sum(f.size_bytes for f in feet)
        plan = None
        if total <= memory_budget_bytes:
            specs = [f.to_spec(tuple(group))
                     for f, group in zip(feet, class_groups)]
            plan = try_greedy_assign(devices, specs, num_samples)
        if plan is not None:
            return HeadSchedule(hps=hps, footprints=feet, plan=plan,
                                iterations=iteration)
        # Line 18: prune one more head from the largest sub-model.
        sizes = [f.size_bytes for f in feet]
        candidates = [i for i in range(n) if hps[i] < h - 1]
        if not candidates:
            # Two distinct terminal failures hide behind "infeasible":
            # the fleet budget itself is unreachable, or the budget holds
            # but greedy per-device assignment still finds no placement.
            # Operators debug different constraints for each, so say which.
            if total <= memory_budget_bytes:
                raise ScheduleInfeasible(
                    f"greedy assignment failed at maximum pruning: total "
                    f"{total} B fits the fleet budget "
                    f"{memory_budget_bytes} B, but no per-device placement "
                    "satisfies the memory/energy constraints "
                    f"({len(devices)} devices, {n} sub-models)")
            raise ScheduleInfeasible(
                f"budget {memory_budget_bytes} B unreachable even at maximum "
                f"pruning (total {total} B)")
        biggest = max(candidates, key=lambda i: sizes[i])
        hps[biggest] += 1

    raise ScheduleInfeasible("schedule loop did not converge")
