"""Model fusion (Section IV-E) and the Table-IV fusion variants.

Three fusion strategies are implemented:

* :func:`train_fusion_mlp` — the ED-ViT default: freeze the sub-models,
  concatenate their CLS features, train the tower MLP once;
* :func:`softmax_average_predict` — the "w/o retrain" ablation: place each
  sub-model's softmax over its own classes into the full class vector (the
  class subsets are disjoint, so this is the concatenated-softmax
  prediction the paper averages);
* :func:`entire_retrain` — the "w/ entire retrain" ablation: finetune the
  sub-models and the fusion MLP jointly, end-to-end.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.inference import extract_features, predict_probabilities
from ..core.training import TrainConfig, train_classifier
from ..data.loaders import DataLoader
from ..data.synthetic import Dataset
from ..models.fusion import FusionMLP, build_fusion_for
from ..pruning.pipeline import PrunedSubModel


def collect_features(submodels: list[PrunedSubModel], x: np.ndarray,
                     batch_size: int = 64) -> np.ndarray:
    """Concatenated frozen features from every sub-model, shape (N, sum d_i)."""
    feats = [extract_features(sm.model, x, batch_size) for sm in submodels]
    return np.concatenate(feats, axis=-1)


def train_fusion_mlp(submodels: list[PrunedSubModel], dataset: Dataset,
                     epochs: int = 5, lr: float = 1e-3, batch_size: int = 32,
                     shrink: float = 0.5, seed: int = 0) -> FusionMLP:
    """Train the tower MLP on frozen concatenated sub-model features."""
    rng = np.random.default_rng(seed)
    fusion = build_fusion_for([sm.model.feature_dim() for sm in submodels],
                              num_classes=dataset.num_classes, shrink=shrink,
                              rng=rng)
    features = collect_features(submodels, dataset.x_train, batch_size)
    train_classifier(fusion, features, dataset.y_train,
                     TrainConfig(epochs=epochs, batch_size=batch_size, lr=lr,
                                 seed=seed))
    return fusion


def fused_predict(submodels: list[PrunedSubModel], fusion: FusionMLP,
                  x: np.ndarray, batch_size: int = 64,
                  failed: set[int] | frozenset[int] | None = None) -> np.ndarray:
    """Full-pipeline class predictions for a batch of inputs.

    ``failed`` lists sub-model indices whose device crashed: their feature
    slots are zero-filled, letting the fusion MLP degrade gracefully
    instead of stalling the whole system.
    """
    failed = set(failed or ())
    if not failed <= set(range(len(submodels))):
        raise IndexError(f"failed indices out of range: {sorted(failed)}")
    parts = []
    for i, sm in enumerate(submodels):
        if i in failed:
            parts.append(np.zeros((len(x), sm.model.feature_dim()),
                                  dtype=np.float32))
        else:
            parts.append(extract_features(sm.model, x, batch_size))
    features = np.concatenate(parts, axis=-1)
    return fusion.predict(features, batch_size).argmax(axis=-1)


def fused_accuracy(submodels: list[PrunedSubModel], fusion: FusionMLP,
                   dataset: Dataset, batch_size: int = 64) -> float:
    pred = fused_predict(submodels, fusion, dataset.x_test, batch_size)
    return float((pred == dataset.y_test).mean())


def softmax_average_predict(submodels: list[PrunedSubModel],
                            num_classes: int, x: np.ndarray,
                            batch_size: int = 64) -> np.ndarray:
    """The "(w/o) retrain" fusion: concatenated per-subset softmax scores."""
    scores = np.zeros((len(x), num_classes), dtype=np.float64)
    for sm in submodels:
        probs = predict_probabilities(sm.model, x, batch_size)
        if getattr(sm, "one_vs_rest", False):
            # Binary head: column 1 is the positive-class probability.
            scores[:, sm.classes[0]] = probs[:, 1]
        else:
            for local, global_cls in enumerate(sm.classes):
                scores[:, global_cls] = probs[:, local]
    return scores.argmax(axis=-1)


def softmax_average_accuracy(submodels: list[PrunedSubModel],
                             dataset: Dataset, batch_size: int = 64) -> float:
    pred = softmax_average_predict(submodels, dataset.num_classes,
                                   dataset.x_test, batch_size)
    return float((pred == dataset.y_test).mean())


def entire_retrain(submodels: list[PrunedSubModel], fusion: FusionMLP,
                   dataset: Dataset, epochs: int = 2, lr: float = 5e-4,
                   batch_size: int = 32, seed: int = 0) -> None:
    """The "(w/) entire retrain" ablation: joint end-to-end finetuning.

    Gradients flow through the fusion MLP *and* every sub-model.  The paper
    notes this recovers substantial accuracy but is impractical on real
    deployments; we implement it for Table IV.
    """
    params = list(fusion.parameters())
    for sm in submodels:
        params.extend(sm.model.parameters())
        sm.model.train()
    fusion.train()
    optimizer = nn.Adam(params, lr=lr)
    rng = np.random.default_rng(seed)
    loader = DataLoader(dataset.x_train, dataset.y_train,
                        batch_size=batch_size, shuffle=True, rng=rng)
    for _ in range(epochs):
        for xb, yb in loader:
            xb_t = nn.Tensor(xb)
            feats = [sm.model.forward_features(xb_t) for sm in submodels]
            logits = fusion.fuse(feats)
            loss = nn.cross_entropy(logits, yb)
            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(params, 5.0)
            optimizer.step()
    for sm in submodels:
        sm.model.eval()
    fusion.eval()
