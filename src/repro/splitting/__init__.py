"""Model splitting (Algorithm 1): class partitioning, head scheduling, fusion."""

from .class_assignment import (
    balanced_class_partition,
    unbalanced_class_partition,
    validate_partition,
)
from .fusion import (
    collect_features,
    entire_retrain,
    fused_accuracy,
    fused_predict,
    softmax_average_accuracy,
    softmax_average_predict,
    train_fusion_mlp,
)
from .schedule import (
    HeadSchedule,
    ScheduleInfeasible,
    SubModelFootprint,
    footprint,
    plan_head_schedule,
    submodel_config,
)

__all__ = [
    "HeadSchedule",
    "ScheduleInfeasible",
    "SubModelFootprint",
    "balanced_class_partition",
    "collect_features",
    "entire_retrain",
    "footprint",
    "fused_accuracy",
    "fused_predict",
    "plan_head_schedule",
    "softmax_average_accuracy",
    "softmax_average_predict",
    "submodel_config",
    "train_fusion_mlp",
    "unbalanced_class_partition",
    "validate_partition",
]
