"""Balanced class partitioning (Algorithm 1, lines 3–6).

The paper assigns classes to sub-models randomly, re-drawing until the
subsets are balanced to within one class (``||C_a| - |C_b|| <= 1``).  A
random balanced partition can be produced directly by shuffling and
slicing, which satisfies exactly the same acceptance condition — we do
that instead of rejection sampling, and verify the invariant.
"""

from __future__ import annotations

import numpy as np


def balanced_class_partition(num_classes: int, num_groups: int,
                             rng: np.random.Generator | None = None) -> list[list[int]]:
    """Split ``range(num_classes)`` into ``num_groups`` balanced subsets."""
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    if num_groups > num_classes:
        raise ValueError(
            f"cannot split {num_classes} classes into {num_groups} non-empty groups")
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(num_classes)
    groups = [sorted(int(c) for c in chunk)
              for chunk in np.array_split(order, num_groups)]
    assert max(len(g) for g in groups) - min(len(g) for g in groups) <= 1
    return groups


def unbalanced_class_partition(num_classes: int, num_groups: int,
                               skew: float = 2.0,
                               rng: np.random.Generator | None = None) -> list[list[int]]:
    """A deliberately skewed partition (for the balance ablation).

    Group sizes follow a geometric progression with ratio ``skew`` before
    rounding; every group keeps at least one class.
    """
    if num_groups > num_classes:
        raise ValueError("more groups than classes")
    rng = rng or np.random.default_rng(0)
    weights = np.array([skew ** i for i in range(num_groups)], dtype=np.float64)
    weights /= weights.sum()
    sizes = np.maximum(1, np.round(weights * num_classes).astype(int))
    # Fix rounding drift while keeping each group non-empty.
    while sizes.sum() > num_classes:
        sizes[np.argmax(sizes)] -= 1
    while sizes.sum() < num_classes:
        sizes[np.argmin(sizes)] += 1
    order = rng.permutation(num_classes)
    groups = []
    start = 0
    for size in sizes:
        groups.append(sorted(int(c) for c in order[start:start + size]))
        start += size
    return groups


def validate_partition(groups: list[list[int]], num_classes: int) -> None:
    """Check the Eq.-1 constraint: every class covered exactly once."""
    flat = [c for group in groups for c in group]
    if sorted(flat) != list(range(num_classes)):
        raise ValueError("partition must cover every class exactly once")
    if any(not group for group in groups):
        raise ValueError("partition contains an empty group")
