"""Named dataset factories mirroring the paper's five benchmarks.

Each factory returns a synthetic analogue with matching class count and
modality (Section V-A).  The paper resizes all samples to 224×224; we keep
the default at 32×32 for tractable CPU training — pass ``image_size=224``
for profiling-scale data.  Sample counts are similarly scaled down but
configurable.
"""

from __future__ import annotations

from .synthetic import Dataset, SyntheticSpec, make_image_dataset, make_spectrogram_dataset

DEFAULT_IMAGE_SIZE = 32
DEFAULT_TRAIN_PER_CLASS = 64
DEFAULT_TEST_PER_CLASS = 24


def cifar10_like(image_size: int = DEFAULT_IMAGE_SIZE,
                 train_per_class: int = DEFAULT_TRAIN_PER_CLASS,
                 test_per_class: int = DEFAULT_TEST_PER_CLASS,
                 noise_std: float = 0.4, seed: int = 7) -> Dataset:
    """10-class RGB natural-image analogue (CIFAR-10)."""
    spec = SyntheticSpec(num_classes=10, image_size=image_size, channels=3,
                         noise_std=noise_std, class_seed=101)
    return make_image_dataset("cifar10-like", spec, train_per_class,
                              test_per_class, seed)


def mnist_like(image_size: int = DEFAULT_IMAGE_SIZE,
               train_per_class: int = DEFAULT_TRAIN_PER_CLASS,
               test_per_class: int = DEFAULT_TEST_PER_CLASS,
               noise_std: float = 0.4, seed: int = 8) -> Dataset:
    """10-class grayscale digit analogue (MNIST): cleaner than CIFAR-like."""
    spec = SyntheticSpec(num_classes=10, image_size=image_size, channels=1,
                         noise_std=noise_std, prototypes_per_class=2,
                         class_seed=202)
    return make_image_dataset("mnist-like", spec, train_per_class,
                              test_per_class, seed)


def caltech_like(num_classes: int = 16, image_size: int = DEFAULT_IMAGE_SIZE,
                 train_per_class: int = 32,
                 test_per_class: int = 12,
                 noise_std: float = 0.5, seed: int = 9) -> Dataset:
    """Many-class object analogue (Caltech256, scaled to ``num_classes``)."""
    spec = SyntheticSpec(num_classes=num_classes, image_size=image_size,
                         channels=3, noise_std=noise_std,
                         prototypes_per_class=3, class_seed=303)
    return make_image_dataset("caltech-like", spec, train_per_class,
                              test_per_class, seed)


def gtzan_like(image_size: int = DEFAULT_IMAGE_SIZE,
               train_per_class: int = DEFAULT_TRAIN_PER_CLASS,
               test_per_class: int = DEFAULT_TEST_PER_CLASS,
               noise_std: float = 0.35, seed: int = 10) -> Dataset:
    """10-genre audio-spectrogram analogue (GTZAN), single channel."""
    spec = SyntheticSpec(num_classes=10, image_size=image_size, channels=1,
                         noise_std=noise_std, class_seed=404)
    return make_spectrogram_dataset("gtzan-like", spec, train_per_class,
                                    test_per_class, seed)


def speech_command_like(num_classes: int = 12,
                        image_size: int = DEFAULT_IMAGE_SIZE,
                        train_per_class: int = DEFAULT_TRAIN_PER_CLASS,
                        test_per_class: int = DEFAULT_TEST_PER_CLASS,
                        noise_std: float = 0.3, seed: int = 11) -> Dataset:
    """Spoken-keyword spectrogram analogue (Speech Commands)."""
    spec = SyntheticSpec(num_classes=num_classes, image_size=image_size,
                         channels=1, noise_std=noise_std, class_seed=505)
    return make_spectrogram_dataset("speech-command-like", spec,
                                    train_per_class, test_per_class, seed)


DATASET_FACTORIES = {
    "cifar10": cifar10_like,
    "mnist": mnist_like,
    "caltech": caltech_like,
    "gtzan": gtzan_like,
    "speech-command": speech_command_like,
}


def load_dataset(name: str, **kwargs) -> Dataset:
    if name not in DATASET_FACTORIES:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASET_FACTORIES)}")
    return DATASET_FACTORIES[name](**kwargs)
