"""Synthetic dataset substrate (stands in for the paper's five benchmarks)."""

from .datasets import (
    DATASET_FACTORIES,
    caltech_like,
    cifar10_like,
    gtzan_like,
    load_dataset,
    mnist_like,
    speech_command_like,
)
from .loaders import DataLoader
from .synthetic import (
    Dataset,
    ImagePrototypeBank,
    SpectrogramPrototypeBank,
    SyntheticSpec,
    make_image_dataset,
    make_spectrogram_dataset,
    one_vs_rest_dataset,
)

__all__ = [
    "DATASET_FACTORIES",
    "DataLoader",
    "Dataset",
    "ImagePrototypeBank",
    "SpectrogramPrototypeBank",
    "SyntheticSpec",
    "caltech_like",
    "cifar10_like",
    "gtzan_like",
    "load_dataset",
    "make_image_dataset",
    "make_spectrogram_dataset",
    "mnist_like",
    "one_vs_rest_dataset",
    "speech_command_like",
]
