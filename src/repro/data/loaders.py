"""Mini-batch iteration over in-memory datasets."""

from __future__ import annotations

from typing import Iterator

import numpy as np


class DataLoader:
    """Shuffled mini-batch iterator over (x, y) arrays.

    Each ``__iter__`` re-shuffles using the provided generator, so epochs
    see different orders but full runs stay reproducible.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, batch_size: int = 32,
                 shuffle: bool = True, rng: np.random.Generator | None = None,
                 drop_last: bool = False):
        if len(x) != len(y):
            raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.x = x
        self.y = y
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.x)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.x)
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self.x[idx], self.y[idx]
