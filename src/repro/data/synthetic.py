"""Synthetic class-structured data generators.

The paper evaluates on CIFAR-10, MNIST, Caltech256, GTZAN and Speech
Command.  None are available offline, so we generate synthetic analogues
that preserve the property ED-ViT's accuracy experiments rely on: samples
carry class-discriminative structure of controllable difficulty, so a
classifier can reach high-but-imperfect accuracy, class-specific sub-models
can specialize, and fusion must reconcile overlapping predictions.

Two generator families are provided:

* **images** — each class owns a set of smooth spatial prototypes (random
  low-frequency Fourier fields) plus a class-coloured geometric marker;
  samples mix a prototype with instance noise and random shifts.
* **spectrograms** — each class owns a harmonic signature (frequency bands
  with class-specific spacing and rhythm), mimicking audio-classification
  structure (GTZAN genres / spoken commands).
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class SyntheticSpec:
    """Knobs shared by both generator families."""

    num_classes: int = 10
    image_size: int = 32
    channels: int = 3
    prototypes_per_class: int = 2
    noise_std: float = 0.35
    shift_pixels: int = 1
    class_seed: int = 1234


def _lowfreq_field(rng: np.random.Generator, size: int, channels: int,
                   num_modes: int = 4) -> np.ndarray:
    """A smooth random field built from a few low-frequency Fourier modes."""
    ys, xs = np.meshgrid(np.linspace(0, 2 * np.pi, size),
                         np.linspace(0, 2 * np.pi, size), indexing="ij")
    field = np.zeros((channels, size, size), dtype=np.float64)
    for c in range(channels):
        for _ in range(num_modes):
            fy, fx = rng.integers(1, 4, size=2)
            phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
            amp = rng.uniform(0.4, 1.0)
            field[c] += amp * np.sin(fy * ys + phase_y) * np.cos(fx * xs + phase_x)
    field /= max(1e-8, np.abs(field).max())
    return field


def _class_marker(rng: np.random.Generator, size: int, channels: int) -> np.ndarray:
    """A localized geometric marker (bar / blob / checker) unique per class."""
    marker = np.zeros((channels, size, size), dtype=np.float64)
    kind = rng.integers(0, 3)
    cy, cx = rng.integers(size // 4, 3 * size // 4, size=2)
    extent = max(2, size // 6)
    colour = rng.uniform(0.5, 1.0, size=channels) * rng.choice([-1.0, 1.0])
    if kind == 0:      # horizontal bar
        marker[:, cy - 1:cy + 2, max(0, cx - extent):cx + extent] = colour[:, None, None]
    elif kind == 1:    # blob
        ys, xs = np.ogrid[:size, :size]
        mask = (ys - cy) ** 2 + (xs - cx) ** 2 <= extent ** 2
        marker[:, mask] = colour[:, None]
    else:              # checker patch
        patch = np.indices((2 * extent, 2 * extent)).sum(axis=0) % 2
        y0, x0 = max(0, cy - extent), max(0, cx - extent)
        ph, pw = marker[0, y0:y0 + 2 * extent, x0:x0 + 2 * extent].shape
        marker[:, y0:y0 + ph, x0:x0 + pw] = colour[:, None, None] * patch[:ph, :pw]
    return marker


class ImagePrototypeBank:
    """Deterministic per-class prototypes for an image-like dataset."""

    def __init__(self, spec: SyntheticSpec):
        self.spec = spec
        rng = np.random.default_rng(spec.class_seed)
        self.prototypes = np.empty(
            (spec.num_classes, spec.prototypes_per_class, spec.channels,
             spec.image_size, spec.image_size), dtype=np.float64)
        for cls in range(spec.num_classes):
            for proto in range(spec.prototypes_per_class):
                field = _lowfreq_field(rng, spec.image_size, spec.channels)
                marker = _class_marker(rng, spec.image_size, spec.channels)
                self.prototypes[cls, proto] = 0.7 * field + 0.9 * marker

    def sample(self, rng: np.random.Generator, labels: np.ndarray) -> np.ndarray:
        spec = self.spec
        n = labels.shape[0]
        proto_idx = rng.integers(0, spec.prototypes_per_class, size=n)
        base = self.prototypes[labels, proto_idx]
        out = base + rng.normal(0.0, spec.noise_std, size=base.shape)
        if spec.shift_pixels > 0:
            shifts = rng.integers(-spec.shift_pixels, spec.shift_pixels + 1, size=(n, 2))
            for i in range(n):
                out[i] = np.roll(out[i], shift=tuple(shifts[i]), axis=(1, 2))
        return out.astype(np.float32)


class SpectrogramPrototypeBank:
    """Per-class harmonic signatures rendered as (1, F, T) spectrograms."""

    def __init__(self, spec: SyntheticSpec):
        if spec.channels != 1:
            raise ValueError("spectrogram datasets are single-channel")
        self.spec = spec
        rng = np.random.default_rng(spec.class_seed)
        size = spec.image_size
        self.base_freqs = rng.uniform(2.0, size / 4.0, size=spec.num_classes)
        self.harmonic_gaps = rng.uniform(1.5, 3.0, size=spec.num_classes)
        self.num_harmonics = rng.integers(2, 5, size=spec.num_classes)
        self.rhythm_hz = rng.uniform(0.5, 3.0, size=spec.num_classes)

    def _render(self, rng: np.random.Generator, cls: int) -> np.ndarray:
        size = self.spec.image_size
        spec_img = np.zeros((size, size), dtype=np.float64)
        t = np.linspace(0.0, 1.0, size)
        jitter = rng.normal(0.0, 0.5)
        for k in range(int(self.num_harmonics[cls])):
            freq_row = self.base_freqs[cls] * (1.0 + k * (self.harmonic_gaps[cls] - 1.0))
            row = int(np.clip(freq_row + jitter, 0, size - 1))
            envelope = 0.6 + 0.4 * np.sin(
                2 * np.pi * self.rhythm_hz[cls] * t + rng.uniform(0, 2 * np.pi))
            width = max(1, size // 32)
            lo, hi = max(0, row - width), min(size, row + width + 1)
            spec_img[lo:hi, :] += envelope[None, :] * (1.0 / (1 + k))
        return spec_img

    def sample(self, rng: np.random.Generator, labels: np.ndarray) -> np.ndarray:
        spec = self.spec
        n = labels.shape[0]
        out = np.empty((n, 1, spec.image_size, spec.image_size), dtype=np.float64)
        for i, cls in enumerate(labels):
            out[i, 0] = self._render(rng, int(cls))
        out += rng.normal(0.0, spec.noise_std, size=out.shape)
        return out.astype(np.float32)


@dataclasses.dataclass
class Dataset:
    """An in-memory labelled dataset with train/test splits."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return tuple(self.x_train.shape[1:])

    def subset_of_classes(self, classes: list[int],
                          remap: bool = True) -> "Dataset":
        """Restrict to a class subset — the ``resample`` of Algorithm 2.

        With ``remap=True`` labels are renumbered 0..len(classes)-1 in the
        order given, which is how each sub-model sees its classification
        problem.
        """
        classes = list(classes)
        mapping = {cls: i for i, cls in enumerate(classes)}
        train_mask = np.isin(self.y_train, classes)
        test_mask = np.isin(self.y_test, classes)
        y_tr = self.y_train[train_mask]
        y_te = self.y_test[test_mask]
        if remap:
            y_tr = np.vectorize(mapping.get)(y_tr) if y_tr.size else y_tr
            y_te = np.vectorize(mapping.get)(y_te) if y_te.size else y_te
        return Dataset(
            name=f"{self.name}[{','.join(map(str, classes))}]",
            x_train=self.x_train[train_mask], y_train=y_tr,
            x_test=self.x_test[test_mask], y_test=y_te,
            num_classes=len(classes) if remap else self.num_classes)


def make_image_dataset(name: str, spec: SyntheticSpec, train_per_class: int,
                       test_per_class: int, seed: int) -> Dataset:
    bank = ImagePrototypeBank(spec)
    rng = np.random.default_rng(seed)

    def _make(per_class: int) -> tuple[np.ndarray, np.ndarray]:
        labels = np.repeat(np.arange(spec.num_classes), per_class)
        rng.shuffle(labels)
        return bank.sample(rng, labels), labels

    x_train, y_train = _make(train_per_class)
    x_test, y_test = _make(test_per_class)
    return Dataset(name, x_train, y_train, x_test, y_test, spec.num_classes)


def make_spectrogram_dataset(name: str, spec: SyntheticSpec, train_per_class: int,
                             test_per_class: int, seed: int) -> Dataset:
    bank = SpectrogramPrototypeBank(spec)
    rng = np.random.default_rng(seed)

    def _make(per_class: int) -> tuple[np.ndarray, np.ndarray]:
        labels = np.repeat(np.arange(spec.num_classes), per_class)
        rng.shuffle(labels)
        return bank.sample(rng, labels), labels

    x_train, y_train = _make(train_per_class)
    x_test, y_test = _make(test_per_class)
    return Dataset(name, x_train, y_train, x_test, y_test, spec.num_classes)


def one_vs_rest_dataset(dataset: Dataset, positive_class: int,
                        rng: np.random.Generator,
                        negative_ratio: float = 1.0) -> Dataset:
    """Binary task for a single-class sub-model: own class vs the rest.

    A sub-model whose class subset is a singleton cannot be trained or
    KL-scored on a 1-way softmax (the loss and the output distribution are
    both degenerate), so it is trained one-vs-rest instead: label 1 for the
    positive class, label 0 for a balanced sample of the other classes.
    """

    def _make(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pos = np.flatnonzero(y == positive_class)
        neg = np.flatnonzero(y != positive_class)
        take = min(len(neg), max(1, int(round(len(pos) * negative_ratio))))
        neg = rng.choice(neg, size=take, replace=False)
        idx = np.concatenate([pos, neg])
        rng.shuffle(idx)
        labels = (y[idx] == positive_class).astype(np.int64)
        return x[idx], labels

    x_train, y_train = _make(dataset.x_train, dataset.y_train)
    x_test, y_test = _make(dataset.x_test, dataset.y_test)
    return Dataset(name=f"{dataset.name}[ovr:{positive_class}]",
                   x_train=x_train, y_train=y_train,
                   x_test=x_test, y_test=y_test, num_classes=2)
