"""Optimizers and learning-rate schedules.

The paper trains with Adam at an initial LR of 1e-4 with decay; we provide
Adam, SGD with momentum, and a multiplicative-decay schedule, plus global
gradient-norm clipping (useful when finetuning pruned sub-models).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .modules import Parameter


class Optimizer:
    """Base class: holds the parameter list and the learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        # Dedup by identity, preserving first-seen order: concatenated
        # param lists that share a module (e.g. sub-models + fusion) must
        # not step the shared parameter twice per step() or allocate
        # conflicting per-parameter optimizer state.
        seen: set[int] = set()
        self.params = []
        for p in params:
            if id(p) not in seen:
                seen.add(id(p))
                self.params.append(p)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data = p.data - self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-4,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class DecayingLR:
    """Multiplicative learning-rate decay applied once per epoch.

    Matches the paper's "Adam optimizer with a decaying learning rate
    initialized to 1e-4" setup.
    """

    def __init__(self, optimizer: Optimizer, decay: float = 0.95, min_lr: float = 1e-6):
        self.optimizer = optimizer
        self.decay = decay
        self.min_lr = min_lr

    def step(self) -> None:
        self.optimizer.lr = max(self.optimizer.lr * self.decay, self.min_lr)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
