"""repro.nn — a from-scratch numpy autograd framework (PyTorch substitute).

Public surface::

    from repro import nn
    x = nn.Tensor([[1.0, 2.0]], requires_grad=True)
    layer = nn.Linear(2, 3)
    loss = nn.cross_entropy(layer(x), np.array([1]))
    loss.backward()
"""

from . import init, ops
from .losses import accuracy, cross_entropy, kl_divergence, mse
from .modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
)
from .optim import Adam, DecayingLR, Optimizer, SGD, clip_grad_norm
from .serialization import (
    load_checkpoint,
    save_checkpoint,
    state_dict_from_bytes,
    state_dict_num_bytes,
    state_dict_to_bytes,
)
from .tensor import Tensor, as_tensor, concat, no_grad, ones, stack, where, zeros

__all__ = [
    "Adam",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "DecayingLR",
    "Dropout",
    "Flatten",
    "GELU",
    "Identity",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "Module",
    "ModuleList",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Tanh",
    "Tensor",
    "accuracy",
    "as_tensor",
    "clip_grad_norm",
    "concat",
    "cross_entropy",
    "init",
    "kl_divergence",
    "load_checkpoint",
    "mse",
    "no_grad",
    "ones",
    "ops",
    "save_checkpoint",
    "stack",
    "state_dict_from_bytes",
    "state_dict_num_bytes",
    "state_dict_to_bytes",
    "where",
    "zeros",
]
