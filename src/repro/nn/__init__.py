"""repro.nn — a from-scratch numpy autograd framework (PyTorch substitute).

Public surface::

    from repro import nn
    x = nn.Tensor([[1.0, 2.0]], requires_grad=True)
    layer = nn.Linear(2, 3)
    loss = nn.cross_entropy(layer(x), np.array([1]))
    loss.backward()

Execution is layered:

* **Autograd graph** (:mod:`repro.nn.tensor`): every op records a backward
  closure; call ``.backward()`` on a scalar loss.  This is the training
  path.
* **Graph-free fast path**: inside ``nn.no_grad()`` or
  ``nn.inference_mode()`` ops skip closure allocation entirely and return
  bare tensors.  ``inference_mode()`` additionally lets modules reuse
  shape-keyed scratch buffers (:class:`~repro.nn.backend.Workspace`), so
  outputs may alias internal storage until the next forward call — copy
  what you keep (``repro.core.predict`` does).
* **Array backend** (:mod:`repro.nn.backend`): all primitive array math
  (matmul, einsum, im2col convolution, reductions, fused
  softmax/layernorm/GELU kernels) is routed through a pluggable
  :class:`~repro.nn.backend.ArrayBackend`.  Select with
  ``nn.set_backend(...)`` / ``nn.use_backend(...)`` or the
  ``REPRO_BACKEND`` environment variable; register new engines with
  ``nn.register_backend``.
"""

from . import init, ops
from .backend import (
    ArrayBackend,
    NumpyBackend,
    Workspace,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from .blocked import BlockedBackend
from .losses import accuracy, cross_entropy, kl_divergence, mse
from .modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
)
from .optim import Adam, DecayingLR, Optimizer, SGD, clip_grad_norm
from .quantize import (
    QuantizedConv2d,
    QuantizedLinear,
    dequantize_array,
    is_quantized,
    quantize_array,
    quantize_module,
    quantize_state_dict,
)
from .serialization import (
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
    state_dict_from_bytes,
    state_dict_num_bytes,
    state_dict_to_bytes,
)
from .tensor import (
    Tensor,
    as_tensor,
    concat,
    inference_mode,
    is_grad_enabled,
    is_inference,
    no_grad,
    ones,
    stack,
    where,
    zeros,
)

__all__ = [
    "Adam",
    "ArrayBackend",
    "AvgPool2d",
    "BatchNorm2d",
    "BlockedBackend",
    "Conv2d",
    "DecayingLR",
    "Dropout",
    "Flatten",
    "GELU",
    "Identity",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "Module",
    "ModuleList",
    "NumpyBackend",
    "Optimizer",
    "Parameter",
    "QuantizedConv2d",
    "QuantizedLinear",
    "ReLU",
    "SGD",
    "Sequential",
    "Tanh",
    "Tensor",
    "Workspace",
    "accuracy",
    "as_tensor",
    "available_backends",
    "checkpoint_path",
    "clip_grad_norm",
    "concat",
    "cross_entropy",
    "dequantize_array",
    "get_backend",
    "inference_mode",
    "init",
    "is_grad_enabled",
    "is_inference",
    "is_quantized",
    "kl_divergence",
    "load_checkpoint",
    "mse",
    "no_grad",
    "ones",
    "ops",
    "quantize_array",
    "quantize_module",
    "quantize_state_dict",
    "register_backend",
    "save_checkpoint",
    "set_backend",
    "stack",
    "state_dict_from_bytes",
    "state_dict_num_bytes",
    "state_dict_to_bytes",
    "use_backend",
    "where",
    "zeros",
]
