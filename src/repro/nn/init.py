"""Parameter initializers and the package-wide RNG convention.

All random state in the reproduction flows through explicit
``numpy.random.Generator`` objects so experiments are reproducible; the
module-level default generator exists only as a convenience for ad-hoc use.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0x5EED
_default_rng = np.random.default_rng(_DEFAULT_SEED)


def default_rng() -> np.random.Generator:
    return _default_rng


def seed_all(seed: int) -> np.random.Generator:
    """Reset the default generator; returns it for chaining."""
    global _default_rng
    _default_rng = np.random.default_rng(seed)
    return _default_rng


def kaiming_uniform(rng: np.random.Generator, shape: tuple[int, ...],
                    fan_in: int | None = None) -> np.ndarray:
    """He-uniform init matching ``torch.nn.Linear``'s default (a=sqrt(5))."""
    if fan_in is None:
        fan_in = shape[1] if len(shape) >= 2 else shape[0]
    gain = np.sqrt(2.0 / (1.0 + 5.0))  # leaky relu gain with a = sqrt(5)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    fan_in = shape[1] if len(shape) >= 2 else shape[0]
    fan_out = shape[0]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def trunc_normal(rng: np.random.Generator, shape: tuple[int, ...],
                 std: float = 0.02, bound: float = 2.0) -> np.ndarray:
    """Truncated normal used by ViT for token/positional embeddings."""
    out = rng.normal(0.0, std, size=shape)
    np.clip(out, -bound * std, bound * std, out=out)
    return out.astype(np.float32)
