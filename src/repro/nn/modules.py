"""Module system: composable layers with named parameters and state dicts.

Mirrors the ``torch.nn`` surface closely enough that the rest of the
reproduction (ViT, VGG, SNN, pruning) reads like the PyTorch code the paper
authors would have written.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import init, ops
from .backend import Workspace
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network layers."""

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Registration through attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Inference workspace (scratch-buffer cache for the graph-free path)
    # ------------------------------------------------------------------
    @property
    def workspace(self) -> Workspace:
        """Lazily-created scratch cache handed to ops under ``inference_mode()``.

        Not part of the state dict; buffers are keyed by (tag, shape, dtype)
        and reused across forward calls — see :mod:`repro.nn.backend` for the
        aliasing invariants.
        """
        ws = self.__dict__.get("_workspace")
        if ws is None:
            ws = Workspace()
            object.__setattr__(self, "_workspace", ws)
        return ws

    def clear_workspaces(self) -> None:
        """Drop every cached scratch buffer in this module tree."""
        for module in self.modules():
            ws = module.__dict__.get("_workspace")
            if ws is not None:
                ws.clear()

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        missing = []
        for name, param in params.items():
            if name not in state:
                missing.append(name)
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: checkpoint {value.shape} vs model {param.shape}")
            param.data = value.copy()
        owners = {}
        for prefix, module in self.named_modules():
            for local in module._buffers:
                full = f"{prefix}.{local}" if prefix else local
                owners[full] = (module, local)
        for name, buf in buffers.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=buf.dtype)
            if value.shape != buf.shape:
                raise ValueError(
                    f"shape mismatch for {name}: checkpoint {value.shape} vs model {buf.shape}")
            # Rebind rather than copy into the existing array: backends may
            # cache derived layouts (e.g. packed transposes) keyed by array
            # identity, and an in-place overwrite would serve stale weights.
            module, local = owners[name]
            module.register_buffer(local, value.copy())
        if strict:
            if missing:
                raise KeyError(f"missing keys in state dict: {missing}")
            extra = set(state) - set(params) - set(buffers)
            if extra:
                raise KeyError(f"unexpected keys in state dict: {sorted(extra)}")

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Identity(Module):
    """Pass-through layer (useful as a placeholder in rebuilt models)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine layer storing weight as (out_features, in_features)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or init.default_rng()
        self.weight = Parameter(init.kaiming_uniform(rng, (out_features, in_features)))
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_features).astype(np.float32))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return ops.linear(x, self.weight, self.bias, self.workspace)

    def infer(self, backend, x: np.ndarray, out=None,
              activation: str | None = None) -> np.ndarray:
        """Raw-array fast path with an optional fused activation epilogue.

        Polymorphic with ``QuantizedLinear.infer`` so fused model forwards
        (e.g. ViT attention) work unchanged on int8-surgered modules.
        """
        return backend.linear_act(x, self.weight.data,
                                  self.bias.data if self.bias is not None else None,
                                  activation=activation, out=out)

    def __repr__(self):
        return f"Linear(in={self.in_features}, out={self.out_features})"


class LayerNorm(Module):
    """Layer normalization over the last dimension with affine params."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(normalized_shape, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return ops.layer_norm(x, self.weight, self.bias, self.eps, self.workspace)

    def __repr__(self):
        return f"LayerNorm({self.normalized_shape})"


class Conv2d(Module):
    """2-D convolution over (N, C, H, W) inputs, lowered to im2col matmuls."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng or init.default_rng()
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform(rng, (out_channels, in_channels, kernel_size, kernel_size),
                                 fan_in=fan_in))
        if bias:
            bound = 1.0 / np.sqrt(fan_in)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_channels).astype(np.float32))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv2d(x, self.weight, self.bias, self.stride, self.padding,
                          self.workspace)

    def __repr__(self):
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class BatchNorm2d(Module):
    """Batch normalization over (N, C, H, W) with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return ops.batch_norm_2d(x, self.weight, self.bias,
                                 self.running_mean, self.running_var,
                                 self.training, self.momentum, self.eps)


class MaxPool2d(Module):
    """Max pooling with square kernels."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return ops.max_pool2d(x, self.kernel_size, self.stride, self.workspace)


class AvgPool2d(Module):
    """Average pooling with square kernels."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return ops.avg_pool2d(x, self.kernel_size, self.stride, self.workspace)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self._rng = rng or init.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.p, self.training, self._rng)


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    """Gaussian Error Linear Unit (tanh approximation)."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.gelu(x)


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Flatten(Module):
    """Flatten trailing dimensions from ``start_dim`` onward."""

    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return ops.flatten(x, self.start_dim)


class Sequential(Module):
    """Run layers in order; indexable and iterable like a list."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layer_list = []
        for i, layer in enumerate(layers):
            setattr(self, str(i), layer)
            self._layer_list.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layer_list:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self._layer_list)

    def __getitem__(self, idx: int) -> Module:
        return self._layer_list[idx]

    def __len__(self) -> int:
        return len(self._layer_list)


class ModuleList(Module):
    """A list of sub-modules whose parameters register with the parent."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        setattr(self, str(len(self._items)), module)
        self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]

    def __len__(self) -> int:
        return len(self._items)
