"""Neural-network functional operations built on :mod:`repro.nn.tensor`.

Each function takes and returns :class:`~repro.nn.tensor.Tensor` objects and
registers an analytic backward rule.  Convolution and pooling use an
im2col/col2im lowering so the heavy lifting stays inside numpy matmuls.
"""

from __future__ import annotations

import math

import numpy as np

from .tensor import Tensor

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


# ----------------------------------------------------------------------
# Activations
# ----------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation, as used by ViT)."""
    data = x.data
    inner = _SQRT_2_OVER_PI * (data + 0.044715 * data ** 3)
    tanh_inner = np.tanh(inner)
    out_data = 0.5 * data * (1.0 + tanh_inner)

    def backward(grad):
        sech2 = 1.0 - tanh_inner ** 2
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * data ** 2)
        local = 0.5 * (1.0 + tanh_inner) + 0.5 * data * sech2 * d_inner
        return [(x, grad * local)]

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        # dL/dx = s * (g - sum(g * s))
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        return [(x, out_data * (grad - dot))]

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    soft = np.exp(out_data)

    def backward(grad):
        return [(x, grad - soft * grad.sum(axis=axis, keepdims=True))]

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    out_data = x.data * mask

    def backward(grad):
        return [(x, grad * mask)]

    return Tensor._make(out_data, (x,), backward)


# ----------------------------------------------------------------------
# Normalization
# ----------------------------------------------------------------------
def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension with affine transform."""
    mu = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mu
    var = (centered ** 2).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normed = centered * inv_std
    out_data = normed * weight.data + bias.data
    d = x.shape[-1]

    def backward(grad):
        g_normed = grad * weight.data
        g_var = (g_normed * centered * -0.5 * inv_std ** 3).sum(axis=-1, keepdims=True)
        g_mu = (-g_normed * inv_std).sum(axis=-1, keepdims=True) \
            + g_var * (-2.0 * centered.mean(axis=-1, keepdims=True))
        gx = g_normed * inv_std + g_var * 2.0 * centered / d + g_mu / d
        reduce_axes = tuple(range(grad.ndim - 1))
        gw = (grad * normed).sum(axis=reduce_axes)
        gb = grad.sum(axis=reduce_axes)
        return [(x, gx), (weight, gw), (bias, gb)]

    return Tensor._make(out_data, (x, weight, bias), backward)


def batch_norm_2d(x: Tensor, weight: Tensor, bias: Tensor,
                  running_mean: np.ndarray, running_var: np.ndarray,
                  training: bool, momentum: float = 0.1, eps: float = 1e-5) -> Tensor:
    """2-D batch norm over (N, C, H, W); mutates running statistics in-place."""
    if training:
        mu = x.data.mean(axis=(0, 2, 3), keepdims=True)
        var = x.data.var(axis=(0, 2, 3), keepdims=True)
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mu.reshape(-1)
        running_var *= (1.0 - momentum)
        running_var += momentum * var.reshape(-1)
    else:
        mu = running_mean.reshape(1, -1, 1, 1)
        var = running_var.reshape(1, -1, 1, 1)

    inv_std = 1.0 / np.sqrt(var + eps)
    centered = x.data - mu
    normed = centered * inv_std
    w = weight.data.reshape(1, -1, 1, 1)
    b = bias.data.reshape(1, -1, 1, 1)
    out_data = normed * w + b
    count = x.data.size // x.shape[1]

    def backward(grad):
        g_normed = grad * w
        if training:
            g_var = (g_normed * centered * -0.5 * inv_std ** 3).sum(axis=(0, 2, 3), keepdims=True)
            g_mu = (-g_normed * inv_std).sum(axis=(0, 2, 3), keepdims=True) \
                + g_var * (-2.0 * centered.mean(axis=(0, 2, 3), keepdims=True))
            gx = g_normed * inv_std + g_var * 2.0 * centered / count + g_mu / count
        else:
            gx = g_normed * inv_std
        gw = (grad * normed).sum(axis=(0, 2, 3))
        gb = grad.sum(axis=(0, 2, 3))
        return [(x, gx), (weight, gw), (bias, gb)]

    return Tensor._make(out_data, (x, weight, bias), backward)


# ----------------------------------------------------------------------
# Convolution via im2col
# ----------------------------------------------------------------------
def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """Lower (N, C, H, W) to columns of receptive fields.

    Returns (cols, out_h, out_w) where cols has shape
    (N, C*kh*kw, out_h*out_w).
    """
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    s = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(cols: np.ndarray, x_shape, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Scatter-add columns back to the (padded) input; inverse of _im2col."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += cols[:, :, i, j]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution.  x: (N,C,H,W); weight: (O,C,kh,kw); bias: (O,)."""
    out_ch, in_ch, kh, kw = weight.shape
    cols, out_h, out_w = _im2col(x.data, kh, kw, stride, padding)
    w_mat = weight.data.reshape(out_ch, -1)
    out = np.einsum("ok,nkp->nop", w_mat, cols, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1)
    out_data = out.reshape(x.shape[0], out_ch, out_h, out_w)
    x_shape = x.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        g = grad.reshape(x_shape[0], out_ch, -1)
        gw = np.einsum("nop,nkp->ok", g, cols, optimize=True).reshape(weight.shape)
        gcols = np.einsum("ok,nop->nkp", w_mat, g, optimize=True)
        gx = _col2im(gcols, x_shape, kh, kw, stride, padding)
        contributions = [(x, gx), (weight, gw)]
        if bias is not None:
            contributions.append((bias, g.sum(axis=(0, 2))))
        return contributions

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over (N, C, H, W); kernel must evenly divide spatial dims
    when stride == kernel (the common CNN configuration we use)."""
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, out_h, out_w = _im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    cols = cols.reshape(n * c, kernel * kernel, out_h * out_w)
    arg = cols.argmax(axis=1)
    out_data = np.take_along_axis(cols, arg[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(grad):
        gcols = np.zeros_like(cols)
        np.put_along_axis(
            gcols, arg[:, None, :], grad.reshape(n * c, 1, out_h * out_w), axis=1
        )
        gx = _col2im(gcols, (n * c, 1, h, w), kernel, kernel, stride, 0)
        return [(x, gx.reshape(n, c, h, w))]

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, out_h, out_w = _im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    cols = cols.reshape(n * c, kernel * kernel, out_h * out_w)
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    k2 = kernel * kernel

    def backward(grad):
        g = grad.reshape(n * c, 1, out_h * out_w) / k2
        gcols = np.broadcast_to(g, (n * c, k2, out_h * out_w)).copy()
        gx = _col2im(gcols, (n * c, 1, h, w), kernel, kernel, stride, 0)
        return [(x, gx.reshape(n, c, h, w))]

    return Tensor._make(out_data, (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Global average pooling when output_size == 1 (what VGG heads need)."""
    if output_size != 1:
        raise NotImplementedError("only global (1x1) adaptive pooling is supported")
    n, c, h, w = x.shape
    out = x.mean(axis=(2, 3), keepdims=True)
    return out


# ----------------------------------------------------------------------
# Misc
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map: x @ W^T + b, with W stored (out_features, in_features)."""
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float32) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    shape = x.shape[:start_dim] + (-1,)
    return x.reshape(shape)
