"""Neural-network functional operations built on :mod:`repro.nn.tensor`.

Each function takes and returns :class:`~repro.nn.tensor.Tensor` objects and
registers an analytic backward rule.  Convolution and pooling use an
im2col/col2im lowering so the heavy lifting stays inside backend matmuls.

Array math never touches numpy directly: every primitive goes through the
active :class:`~repro.nn.backend.ArrayBackend` (see :func:`repro.nn.set_backend`),
so alternative execution backends plug in underneath these rules without
changing them.  When gradients are disabled each op takes a **graph-free
fast path**: no backward closure is allocated, and — under
``inference_mode()`` — outputs and scratch live in the caller's shape-keyed
:class:`~repro.nn.backend.Workspace`.
"""

from __future__ import annotations

import math

from .backend import Workspace, get_backend, scratch
from .tensor import Tensor, is_grad_enabled, is_inference

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def _ws(workspace: Workspace | None) -> Workspace | None:
    """The caller's workspace when buffer reuse is allowed, else ``None``."""
    return workspace if is_inference() else None


# ----------------------------------------------------------------------
# Activations
# ----------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    return x.relu()


def gelu(x: Tensor, workspace: Workspace | None = None) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation, as used by ViT)."""
    b = get_backend()
    if not is_grad_enabled():
        out = b.gelu(x.data, out=scratch(_ws(workspace), "gelu", x.shape, x.dtype))
        return Tensor._noback(out)
    data = x.data
    # x*x*x, not x**3: numpy's generic float pow is ~70x slower.
    inner = _SQRT_2_OVER_PI * (data + 0.044715 * (data * data * data))
    tanh_inner = b.tanh(inner)
    out_data = 0.5 * data * (1.0 + tanh_inner)

    def backward(grad):
        sech2 = 1.0 - tanh_inner * tanh_inner
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * (data * data))
        local = 0.5 * (1.0 + tanh_inner) + 0.5 * data * sech2 * d_inner
        return [(x, grad * local)]

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1,
            workspace: Workspace | None = None) -> Tensor:
    b = get_backend()
    if not is_grad_enabled():
        out = b.softmax(x.data, axis=axis,
                        out=scratch(_ws(workspace), "softmax", x.shape, x.dtype))
        return Tensor._noback(out)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = b.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        # dL/dx = s * (g - sum(g * s))
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        return [(x, out_data * (grad - dot))]

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1,
                workspace: Workspace | None = None) -> Tensor:
    b = get_backend()
    if not is_grad_enabled():
        out = b.log_softmax(x.data, axis=axis,
                            out=scratch(_ws(workspace), "log_softmax",
                                        x.shape, x.dtype))
        return Tensor._noback(out)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = b.log(b.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    soft = b.exp(out_data)

    def backward(grad):
        return [(x, grad - soft * grad.sum(axis=axis, keepdims=True))]

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool, rng) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    out_data = x.data * mask
    if not is_grad_enabled():
        return Tensor._noback(out_data)

    def backward(grad):
        return [(x, grad * mask)]

    return Tensor._make(out_data, (x,), backward)


# ----------------------------------------------------------------------
# Normalization
# ----------------------------------------------------------------------
def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5,
               workspace: Workspace | None = None) -> Tensor:
    """Layer normalization over the last dimension with affine transform."""
    b = get_backend()
    if not is_grad_enabled():
        out = b.layer_norm(x.data, weight.data, bias.data, eps,
                           out=scratch(_ws(workspace), "layer_norm",
                                       x.shape, x.dtype))
        return Tensor._noback(out)
    mu = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / b.sqrt(var + eps)
    normed = centered * inv_std
    out_data = normed * weight.data + bias.data
    d = x.shape[-1]

    def backward(grad):
        g_normed = grad * weight.data
        g_var = (g_normed * centered * -0.5 * inv_std ** 3).sum(axis=-1, keepdims=True)
        g_mu = (-g_normed * inv_std).sum(axis=-1, keepdims=True) \
            + g_var * (-2.0 * centered.mean(axis=-1, keepdims=True))
        gx = g_normed * inv_std + g_var * 2.0 * centered / d + g_mu / d
        reduce_axes = tuple(range(grad.ndim - 1))
        gw = (grad * normed).sum(axis=reduce_axes)
        gb = grad.sum(axis=reduce_axes)
        return [(x, gx), (weight, gw), (bias, gb)]

    return Tensor._make(out_data, (x, weight, bias), backward)


def batch_norm_2d(x: Tensor, weight: Tensor, bias: Tensor,
                  running_mean, running_var,
                  training: bool, momentum: float = 0.1, eps: float = 1e-5) -> Tensor:
    """2-D batch norm over (N, C, H, W); mutates running statistics in-place."""
    b = get_backend()
    if training:
        mu = x.data.mean(axis=(0, 2, 3), keepdims=True)
        var = x.data.var(axis=(0, 2, 3), keepdims=True)
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mu.reshape(-1)
        running_var *= (1.0 - momentum)
        running_var += momentum * var.reshape(-1)
    else:
        mu = running_mean.reshape(1, -1, 1, 1)
        var = running_var.reshape(1, -1, 1, 1)

    inv_std = 1.0 / b.sqrt(var + eps)
    w = weight.data.reshape(1, -1, 1, 1)
    bias_col = bias.data.reshape(1, -1, 1, 1)

    if not is_grad_enabled():
        # Fold the whole normalization into one per-channel affine map.
        scale = w * inv_std
        shift = bias_col - mu * scale
        return Tensor._noback(x.data * scale + shift)

    centered = x.data - mu
    normed = centered * inv_std
    out_data = normed * w + bias_col
    count = x.data.size // x.shape[1]

    def backward(grad):
        g_normed = grad * w
        if training:
            g_var = (g_normed * centered * -0.5 * inv_std ** 3).sum(axis=(0, 2, 3), keepdims=True)
            g_mu = (-g_normed * inv_std).sum(axis=(0, 2, 3), keepdims=True) \
                + g_var * (-2.0 * centered.mean(axis=(0, 2, 3), keepdims=True))
            gx = g_normed * inv_std + g_var * 2.0 * centered / count + g_mu / count
        else:
            gx = g_normed * inv_std
        gw = (grad * normed).sum(axis=(0, 2, 3))
        gb = grad.sum(axis=(0, 2, 3))
        return [(x, gx), (weight, gw), (bias, gb)]

    return Tensor._make(out_data, (x, weight, bias), backward)


# ----------------------------------------------------------------------
# Convolution via im2col
# ----------------------------------------------------------------------
def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None,
           stride: int = 1, padding: int = 0,
           workspace: Workspace | None = None) -> Tensor:
    """2-D convolution.  x: (N,C,H,W); weight: (O,C,kh,kw); bias: (O,)."""
    b = get_backend()
    out_ch, in_ch, kh, kw = weight.shape
    w_mat = weight.data.reshape(out_ch, -1)

    if not is_grad_enabled():
        n, c, h, w_in = x.shape
        out_h = (h + 2 * padding - kh) // stride + 1
        out_w = (w_in + 2 * padding - kw) // stride + 1
        ws = _ws(workspace)
        col_buf = None
        if ws is not None:
            col_buf = ws.buffer("im2col", (n, c * kh * kw, out_h * out_w), x.dtype)
        cols, out_h, out_w = b.conv_im2col(x.data, kh, kw, stride, padding,
                                           out=col_buf)
        out = b.einsum("ok,nkp->nop", w_mat, cols)
        if bias is not None:
            out += bias.data.reshape(1, -1, 1)
        return Tensor._noback(out.reshape(n, out_ch, out_h, out_w))

    cols, out_h, out_w = b.conv_im2col(x.data, kh, kw, stride, padding)
    out = b.einsum("ok,nkp->nop", w_mat, cols)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1)
    out_data = out.reshape(x.shape[0], out_ch, out_h, out_w)
    x_shape = x.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        g = grad.reshape(x_shape[0], out_ch, -1)
        gw = b.einsum("nop,nkp->ok", g, cols).reshape(weight.shape)
        gcols = b.einsum("ok,nop->nkp", w_mat, g)
        gx = b.col2im(gcols, x_shape, kh, kw, stride, padding)
        contributions = [(x, gx), (weight, gw)]
        if bias is not None:
            contributions.append((bias, g.sum(axis=(0, 2))))
        return contributions

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None,
               workspace: Workspace | None = None) -> Tensor:
    """Max pooling over (N, C, H, W); kernel must evenly divide spatial dims
    when stride == kernel (the common CNN configuration we use)."""
    b = get_backend()
    stride = stride or kernel
    n, c, h, w = x.shape
    if not is_grad_enabled():
        out_h = (h - kernel) // stride + 1
        out_w = (w - kernel) // stride + 1
        ws = _ws(workspace)
        col_buf = None
        if ws is not None:
            col_buf = ws.buffer("pool_cols",
                                (n * c, kernel * kernel, out_h * out_w), x.dtype)
        cols, out_h, out_w = b.conv_im2col(
            x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0,
            out=col_buf)
        out = cols.reshape(n * c, kernel * kernel, out_h * out_w).max(axis=1)
        return Tensor._noback(out.reshape(n, c, out_h, out_w))

    cols, out_h, out_w = b.conv_im2col(x.data.reshape(n * c, 1, h, w),
                                       kernel, kernel, stride, 0)
    cols = cols.reshape(n * c, kernel * kernel, out_h * out_w)
    arg = cols.argmax(axis=1)
    out_data = b.take_along_axis(cols, arg[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(grad):
        gcols = b.zeros_like(cols)
        b.put_along_axis(gcols, arg[:, None, :],
                         grad.reshape(n * c, 1, out_h * out_w), axis=1)
        gx = b.col2im(gcols, (n * c, 1, h, w), kernel, kernel, stride, 0)
        return [(x, gx.reshape(n, c, h, w))]

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None,
               workspace: Workspace | None = None) -> Tensor:
    b = get_backend()
    stride = stride or kernel
    n, c, h, w = x.shape
    if not is_grad_enabled():
        out_h = (h - kernel) // stride + 1
        out_w = (w - kernel) // stride + 1
        ws = _ws(workspace)
        col_buf = None
        if ws is not None:
            col_buf = ws.buffer("pool_cols",
                                (n * c, kernel * kernel, out_h * out_w), x.dtype)
        cols, out_h, out_w = b.conv_im2col(
            x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0,
            out=col_buf)
        out = cols.reshape(n * c, kernel * kernel, out_h * out_w).mean(axis=1)
        return Tensor._noback(out.reshape(n, c, out_h, out_w))

    cols, out_h, out_w = b.conv_im2col(x.data.reshape(n * c, 1, h, w),
                                       kernel, kernel, stride, 0)
    cols = cols.reshape(n * c, kernel * kernel, out_h * out_w)
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    k2 = kernel * kernel

    def backward(grad):
        g = grad.reshape(n * c, 1, out_h * out_w) / k2
        gcols = b.broadcast_to(g, (n * c, k2, out_h * out_w)).copy()
        gx = b.col2im(gcols, (n * c, 1, h, w), kernel, kernel, stride, 0)
        return [(x, gx.reshape(n, c, h, w))]

    return Tensor._make(out_data, (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Global average pooling when output_size == 1 (what VGG heads need)."""
    if output_size != 1:
        raise NotImplementedError("only global (1x1) adaptive pooling is supported")
    return x.mean(axis=(2, 3), keepdims=True)


# ----------------------------------------------------------------------
# Misc
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           workspace: Workspace | None = None) -> Tensor:
    """Affine map: x @ W^T + b, with W stored (out_features, in_features)."""
    if not is_grad_enabled():
        b = get_backend()
        ws = _ws(workspace)
        out_buf = None
        if ws is not None and x.dtype == weight.dtype:
            out_buf = ws.buffer("linear_out",
                                x.shape[:-1] + (weight.shape[0],), x.dtype)
        out = b.linear(x.data, weight.data,
                       bias.data if bias is not None else None, out=out_buf)
        return Tensor._noback(out)
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def one_hot(labels, num_classes: int, dtype=None):
    """One-hot encode integer labels as a plain backend array."""
    b = get_backend()
    return b.one_hot(labels, num_classes,
                     dtype if dtype is not None else "float32")


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    shape = x.shape[:start_dim] + (-1,)
    return x.reshape(shape)
