"""Loss functions used by training, pruning and fusion stages."""

from __future__ import annotations

import numpy as np

from . import ops
from .tensor import Tensor


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy between logits (N, C) and integer labels (N,)."""
    labels = np.asarray(labels, dtype=np.int64)
    num_classes = logits.shape[-1]
    log_probs = ops.log_softmax(logits, axis=-1)
    target = ops.one_hot(labels, num_classes, dtype=log_probs.dtype)
    if label_smoothing > 0.0:
        target = target * (1.0 - label_smoothing) + label_smoothing / num_classes
    nll = -(log_probs * Tensor(target)).sum(axis=-1)
    return nll.mean()


def mse(pred: Tensor, target: np.ndarray | Tensor) -> Tensor:
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def kl_divergence(p: np.ndarray, q: np.ndarray, eps: float = 1e-10,
                  axis: int = -1) -> np.ndarray:
    """KL(P || Q) between probability distributions along ``axis``.

    This is the importance metric of Section IV-C: P is the original model's
    output distribution, Q the pruned model's.  Returns the divergence per
    leading index (e.g. per sample), computed in float64 for stability.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    p = np.clip(p, eps, None)
    q = np.clip(q, eps, None)
    p = p / p.sum(axis=axis, keepdims=True)
    q = q / q.sum(axis=axis, keepdims=True)
    return (p * (np.log(p) - np.log(q))).sum(axis=axis)


def accuracy(logits: np.ndarray | Tensor, labels: np.ndarray) -> float:
    """Top-1 accuracy between logits (N, C) and integer labels (N,)."""
    arr = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = arr.argmax(axis=-1)
    return float((pred == np.asarray(labels)).mean())
