"""Numerical gradient checking for autograd correctness tests."""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor


def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of a scalar function of ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x)
        flat[i] = orig - eps
        minus = fn(x)
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(fn: Callable[[Tensor], Tensor], x: np.ndarray,
                   eps: float = 1e-4, rtol: float = 1e-2,
                   atol: float = 1e-4) -> tuple[bool, float]:
    """Compare autograd and numerical gradients of ``fn`` w.r.t. ``x``.

    ``fn`` maps a Tensor to a scalar Tensor.  Uses float64 throughout to
    keep the finite-difference noise below the tolerance.  Returns
    (ok, max_abs_error).
    """
    x64 = np.asarray(x, dtype=np.float64)
    tensor = Tensor(x64.copy(), requires_grad=True, dtype=np.float64)
    out = fn(tensor)
    if out.size != 1:
        raise ValueError("fn must return a scalar")
    out.backward()
    analytic = tensor.grad.astype(np.float64)

    def scalar_fn(arr: np.ndarray) -> float:
        return float(fn(Tensor(arr.copy(), dtype=np.float64)).data)

    numeric = numerical_gradient(scalar_fn, x64.copy(), eps)
    err = np.abs(analytic - numeric)
    tol = atol + rtol * np.abs(numeric)
    return bool((err <= tol).all()), float(err.max())
