"""Reverse-mode automatic differentiation over numpy arrays.

This module is the substrate that replaces PyTorch in this reproduction.
It implements a :class:`Tensor` type carrying a value (`data`), an optional
gradient (`grad`), and a backward closure linking it to its parents in the
computation graph.  Calling :meth:`Tensor.backward` on a scalar output
performs a topological sort of the graph and accumulates gradients into
every tensor created with ``requires_grad=True``.

The design goals are correctness and clarity for the *differentiated* path
— every op has a hand-written backward rule checked against numerical
differentiation (see ``tests/nn/test_gradcheck.py``) — plus a **graph-free
fast path** for inference: whenever gradients are disabled (``no_grad()``
or ``inference_mode()``), ops return bare result tensors without allocating
backward closures or retaining parents, and the heavy functional ops in
:mod:`repro.nn.ops` route through the pluggable array backend
(:mod:`repro.nn.backend`) with pre-allocated workspaces.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

DEFAULT_DTYPE = np.float32


class _ModeState(threading.local):
    """Per-thread execution-mode flags (mirrors the thread-local backend
    override in :mod:`repro.nn.backend`): a thread serving inference must
    not flip another thread's training forwards onto the graph-free path."""

    def __init__(self):
        self.grad_enabled = True
        self.inference = False


_mode = _ModeState()


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like ``torch.no_grad``).

    Ops run the graph-free fast path but every output is freshly allocated,
    so results remain valid indefinitely (seed semantics).  To keep that
    guarantee it also *suspends* workspace reuse when entered inside an
    active ``inference_mode()``.  Both flags are thread-local.
    """
    prev_grad, prev_inf = _mode.grad_enabled, _mode.inference
    _mode.grad_enabled = False
    _mode.inference = False
    try:
        yield
    finally:
        _mode.grad_enabled, _mode.inference = prev_grad, prev_inf


@contextlib.contextmanager
def inference_mode():
    """``no_grad`` plus workspace reuse (like ``torch.inference_mode``).

    In addition to skipping graph construction, modules hand their
    shape-keyed workspaces to the ops layer, so scratch buffers *and op
    outputs* may alias pre-allocated storage that is overwritten by the
    module's next forward call.  Copy anything you keep across calls
    (:func:`repro.core.predict` does).  Nesting is exception-safe: both
    thread-local flags are restored even if the body raises.
    """
    prev_grad, prev_inf = _mode.grad_enabled, _mode.inference
    _mode.grad_enabled = False
    _mode.inference = True
    try:
        yield
    finally:
        _mode.grad_enabled, _mode.inference = prev_grad, prev_inf


def is_grad_enabled() -> bool:
    return _mode.grad_enabled


def is_inference() -> bool:
    return _mode.inference


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    arr = np.asarray(value, dtype=dtype if dtype is not None else None)
    if arr.dtype == np.float64 and dtype is None:
        arr = arr.astype(DEFAULT_DTYPE)
    if arr.dtype.kind not in {"f", "i", "u", "b"}:
        arr = arr.astype(DEFAULT_DTYPE)
    return arr


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array node in a dynamically-built autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False, dtype=None, name: str | None = None):
        self.data = _as_array(data, dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _mode.grad_enabled
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _noback(data) -> "Tensor":
        """Wrap raw data with no graph linkage (the inference fast path).

        Unlike the public constructor there is no dtype convenience cast,
        and ``data`` may be a view of (or alias into) another array — under
        ``inference_mode()`` it may even alias a module workspace buffer.
        """
        out = Tensor.__new__(Tensor)
        out.data = data if isinstance(data, np.ndarray) else np.asarray(data)
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        out.name = None
        return out

    @staticmethod
    def inference_mode():
        """Alias for :func:`repro.nn.tensor.inference_mode` (torch-style)."""
        return inference_mode()

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a graph node whose gradient flows to ``parents``.

        Unlike the public constructor, op outputs keep their dtype exactly
        (no float64 -> float32 convenience cast), so float64 graphs — used
        by gradient checking — stay float64 end to end.
        """
        requires = _mode.grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor.__new__(Tensor)
        out.data = np.asarray(data)
        out.grad = None
        out.requires_grad = requires
        out.name = None
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        else:
            out._parents = ()
            out._backward = None
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the graph.

        ``grad`` defaults to ones (a scalar loss needs no argument).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without gradient argument requires scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order via iterative DFS (avoids recursion limits on
        # deep transformer graphs).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf tensor: accumulate into .grad for the optimizer.
                node._accumulate(node_grad)
                continue
            for parent, pgrad in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            return [(self, _unbroadcast(grad, self.shape)),
                    (other, _unbroadcast(grad, other.shape))]

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            return [(self, _unbroadcast(grad, self.shape)),
                    (other, _unbroadcast(-grad, other.shape))]

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            return [(self, _unbroadcast(grad * other.data, self.shape)),
                    (other, _unbroadcast(grad * self.data, other.shape))]

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            return [(self, _unbroadcast(grad / other.data, self.shape)),
                    (other, _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))]

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out_data = -self.data
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            return [(self, -grad)]

        return Tensor._make(out_data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data ** exponent
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            return [(self, grad * exponent * self.data ** (exponent - 1))]

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Comparison (no gradient; returns plain numpy bool arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Transcendental / unary ops
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            return [(self, grad * out_data)]

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            return [(self, grad / self.data)]

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            return [(self, grad * 0.5 / out_data)]

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            return [(self, grad * (1.0 - out_data ** 2))]

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            return [(self, grad * out_data * (1.0 - out_data))]

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        if not _mode.grad_enabled:
            return Tensor._noback(np.maximum(self.data, 0.0))
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            return [(self, grad * mask)]

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        if not _mode.grad_enabled:
            return Tensor._noback(np.abs(self.data))
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad):
            return [(self, grad * sign)]

        return Tensor._make(out_data, (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        out_data = np.clip(self.data, lo, hi)
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(grad):
            return [(self, grad * mask)]

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return [(self, np.broadcast_to(g, self.shape).copy())]

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if not _mode.grad_enabled:
            return Tensor._noback(self.data.mean(axis=axis, keepdims=keepdims))
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)

        def backward(grad):
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out_data, axis)
            mask = (self.data == out)
            # Split gradient between ties (matches numerical gradient).
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return [(self, mask * g / counts)]

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)
        in_shape = self.shape

        def backward(grad):
            return [(self, grad.reshape(in_shape))]

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)
        inverse = np.argsort(axes)

        def backward(grad):
            return [(self, grad.transpose(inverse))]

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, key) -> "Tensor":
        if not _mode.grad_enabled:
            # Views are fine graph-free: nothing mutates op outputs in place.
            return Tensor._noback(self.data[key])
        out_data = self.data[key]
        in_shape = self.shape
        dtype = self.data.dtype

        def backward(grad):
            full = np.zeros(in_shape, dtype=dtype)
            np.add.at(full, key, grad)
            return [(self, full)]

        return Tensor._make(np.array(out_data, copy=True), (self,), backward)

    def pad(self, pad_width) -> "Tensor":
        out_data = np.pad(self.data, pad_width)
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)
        slices = tuple(slice(p[0], p[0] + s) for p, s in zip(pad_width, self.shape))

        def backward(grad):
            return [(self, grad[slices])]

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data
        if not _mode.grad_enabled:
            return Tensor._noback(out_data)
        a, b = self, other

        def backward(grad):
            a_data, b_data = a.data, b.data
            if a_data.ndim == 1 and b_data.ndim == 1:
                ga = grad * b_data
                gb = grad * a_data
            elif a_data.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                ga = _unbroadcast((np.expand_dims(grad, -2) @ np.swapaxes(b_data, -1, -2)).reshape(
                    grad.shape[:-1] + (a_data.shape[0],)), a.shape)
                gb = _unbroadcast(np.expand_dims(a_data, -1) @ np.expand_dims(grad, -2), b.shape)
            elif b_data.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                ga = _unbroadcast(np.expand_dims(grad, -1) @ np.expand_dims(b_data, 0), a.shape)
                gb = _unbroadcast((np.swapaxes(a_data, -1, -2) @ np.expand_dims(grad, -1))[..., 0],
                                  b.shape)
            else:
                ga = _unbroadcast(grad @ np.swapaxes(b_data, -1, -2), a.shape)
                gb = _unbroadcast(np.swapaxes(a_data, -1, -2) @ grad, b.shape)
            return [(a, ga), (b, gb)]

        return Tensor._make(out_data, (self, other), backward)

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)


def as_tensor(value, dtype=None) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (zero-copy for Tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not _mode.grad_enabled:
        return Tensor._noback(out_data)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        contributions = []
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            contributions.append((t, grad[tuple(index)]))
        return contributions

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    if not _mode.grad_enabled:
        return Tensor._noback(out_data)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return [(t, np.squeeze(p, axis=axis)) for t, p in zip(tensors, pieces)]

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, x: Tensor, y: Tensor) -> Tensor:
    """Differentiable selection: gradient flows through the chosen branch."""
    x, y = as_tensor(x), as_tensor(y)
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    out_data = np.where(cond, x.data, y.data)
    if not _mode.grad_enabled:
        return Tensor._noback(out_data)

    def backward(grad):
        return [(x, _unbroadcast(grad * cond, x.shape)),
                (y, _unbroadcast(grad * (~cond.astype(bool)), y.shape))]

    return Tensor._make(out_data, (x, y), backward)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)
