"""Post-training per-channel int8 weight quantization.

PR 4 made the *wire* cheap (q8 feature codec); this module applies the
same symmetric-int8 idea to the *weights resident on the device*.  A
trained sub-model is quantized after training, stored as a first-class
artifact (its recipe digest extends the fp32 recipe with a ``quant``
field — see :func:`repro.store.submodel_recipe`), and rebuilt on an edge
worker at int8 footprint: roughly 4x smaller per Linear/Conv weight,
~3-4x smaller serialized checkpoints for the Linear-dominated ViT
sub-models the paper deploys.

Scheme (per output channel, symmetric, no zero point)::

    scale[o] = max(|W[o, ...]|) / 127        (1.0 for all-zero channels)
    Q[o]     = clip(round(W[o] / scale[o]), -127, 127)  as int8
    W'[o]    = Q[o] * scale[o]

Because the scale is per *output* channel it commutes with the GEMM —
``(x @ Q.T) * scale == x @ (Q * scale[:, None]).T`` — so inference never
materializes a scaled fp32 weight: :meth:`ArrayBackend.linear_q8`
widens int8 tiles and folds ``scale`` into the output columns.

Quantized weights live in **buffers** (``weight_q8`` int8 +
``weight_scale`` fp32), not Parameters: they are not trainable, and
``Module.load_state_dict`` casts Parameters to the parameter dtype,
which would silently round-trip int8 through fp32.  Quantized modules
are inference-only; calling them with autograd enabled raises.
"""

from __future__ import annotations

import numpy as np

from . import ops
from .backend import get_backend, scratch
from .modules import Conv2d, Linear, Module, ModuleList, Sequential
from .tensor import Tensor, is_grad_enabled, is_inference

SCHEMES = ("int8",)


def _check_scheme(scheme: str) -> None:
    if scheme not in SCHEMES:
        raise ValueError(f"unknown quantization scheme {scheme!r}; "
                         f"supported: {list(SCHEMES)}")


def quantize_array(weight: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-output-channel symmetric int8 quantization of ``weight``.

    Channel axis is 0 — ``(out, in)`` Linear weights and ``(out, c, kh,
    kw)`` Conv kernels both keep their output channel leading.  Returns
    ``(q8, scale)`` with ``q8`` int8 in [-127, 127] and ``scale`` fp32 of
    shape ``(out,)``.  All-zero channels get scale 1.0 so dequantization
    is exact rather than 0/0.
    """
    w = np.asarray(weight, dtype=np.float32)
    if w.ndim < 2:
        raise ValueError("per-channel quantization needs >= 2 dimensions; "
                         f"got shape {w.shape}")
    reduce_axes = tuple(range(1, w.ndim))
    amax = np.abs(w).max(axis=reduce_axes)
    scale = (amax / 127.0).astype(np.float32)
    scale[scale == 0.0] = 1.0
    q = np.rint(w / scale.reshape((-1,) + (1,) * (w.ndim - 1)))
    np.clip(q, -127.0, 127.0, out=q)
    return q.astype(np.int8), scale


def dequantize_array(q8: np.ndarray, scale: np.ndarray,
                     out: np.ndarray | None = None) -> np.ndarray:
    """The fp32 image ``q8 * scale`` (scale broadcast over axis 0)."""
    if out is None:
        out = np.empty(q8.shape, dtype=np.float32)
    np.copyto(out, q8, casting="safe")
    out *= scale.reshape((-1,) + (1,) * (q8.ndim - 1))
    return out


class QuantizedLinear(Module):
    """Inference-only affine layer over an int8 weight.

    Drop-in for :class:`~repro.nn.modules.Linear` on the serving path:
    same state-dict slot names apart from ``weight`` becoming
    ``weight_q8`` + ``weight_scale`` (which is exactly the rewrite
    :func:`quantize_state_dict` applies to checkpoints).
    """

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.register_buffer(
            "weight_q8", np.zeros((out_features, in_features), dtype=np.int8))
        self.register_buffer(
            "weight_scale", np.ones(out_features, dtype=np.float32))
        if bias:
            self.register_buffer(
                "bias", np.zeros(out_features, dtype=np.float32))
        else:
            object.__setattr__(self, "bias", None)

    @staticmethod
    def from_linear(linear: Linear) -> "QuantizedLinear":
        q = QuantizedLinear(linear.in_features, linear.out_features,
                            bias=linear.bias is not None)
        q8, scale = quantize_array(linear.weight.data)
        np.copyto(q.weight_q8, q8)
        np.copyto(q.weight_scale, scale)
        if linear.bias is not None:
            np.copyto(q.bias, linear.bias.data)
        return q

    def infer(self, backend, x: np.ndarray, out=None,
              activation: str | None = None) -> np.ndarray:
        """Raw-array fast path; the polymorphic twin of ``Linear.infer``."""
        return backend.linear_q8(x, self.weight_q8, self.weight_scale,
                                 bias=self.bias, activation=activation,
                                 out=out)

    def forward(self, x: Tensor) -> Tensor:
        if is_grad_enabled():
            raise RuntimeError(
                "QuantizedLinear is inference-only; run it under "
                "no_grad()/inference_mode() or keep the fp32 model for "
                "training")
        ws = self.workspace if is_inference() else None
        out = scratch(ws, "linear_q8_out",
                      x.shape[:-1] + (self.out_features,), np.float32)
        return Tensor._noback(self.infer(get_backend(), x.data, out=out))

    def __repr__(self):
        return (f"QuantizedLinear(in={self.in_features}, "
                f"out={self.out_features})")


class QuantizedConv2d(Module):
    """Inference-only 2-D convolution over an int8 kernel.

    Convolution lowers to im2col matmuls whose hot operand is the
    *activation* columns, so the kernel is dequantized into workspace
    scratch per call (one small ``(O, C*kh*kw)`` fp32 image) and the
    standard :func:`repro.nn.ops.conv2d` fast path does the rest.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.register_buffer(
            "weight_q8",
            np.zeros((out_channels, in_channels, kernel_size, kernel_size),
                     dtype=np.int8))
        self.register_buffer(
            "weight_scale", np.ones(out_channels, dtype=np.float32))
        if bias:
            self.register_buffer(
                "bias", np.zeros(out_channels, dtype=np.float32))
        else:
            object.__setattr__(self, "bias", None)

    @staticmethod
    def from_conv(conv: Conv2d) -> "QuantizedConv2d":
        q = QuantizedConv2d(conv.in_channels, conv.out_channels,
                            conv.kernel_size, stride=conv.stride,
                            padding=conv.padding, bias=conv.bias is not None)
        q8, scale = quantize_array(conv.weight.data)
        np.copyto(q.weight_q8, q8)
        np.copyto(q.weight_scale, scale)
        if conv.bias is not None:
            np.copyto(q.bias, conv.bias.data)
        return q

    def forward(self, x: Tensor) -> Tensor:
        if is_grad_enabled():
            raise RuntimeError(
                "QuantizedConv2d is inference-only; run it under "
                "no_grad()/inference_mode() or keep the fp32 model for "
                "training")
        ws = self.workspace if is_inference() else None
        w = dequantize_array(self.weight_q8, self.weight_scale,
                             out=scratch(ws, "deq_weight",
                                         self.weight_q8.shape, np.float32))
        bias = Tensor._noback(self.bias) if self.bias is not None else None
        return ops.conv2d(x, Tensor._noback(w), bias, self.stride,
                          self.padding, self.workspace)

    def __repr__(self):
        return (f"QuantizedConv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


def _replace_child(parent: Module, name: str, new: Module) -> None:
    old = parent._modules[name]
    setattr(parent, name, new)
    # Sequential/ModuleList iterate their own lists, not _modules; keep
    # them in sync or the surgery would be invisible to forward().
    if isinstance(parent, Sequential):
        parent._layer_list = [new if layer is old else layer
                              for layer in parent._layer_list]
    elif isinstance(parent, ModuleList):
        parent._items = [new if item is old else item
                         for item in parent._items]


def quantize_module(module: Module, scheme: str = "int8") -> Module:
    """Replace every Linear/Conv2d in ``module`` with its int8 twin.

    In-place surgery on the module tree; returns ``module`` (or the
    quantized replacement when ``module`` itself is a Linear/Conv2d).
    Idempotent: already-quantized layers are left alone.
    """
    _check_scheme(scheme)
    if isinstance(module, Linear):
        return QuantizedLinear.from_linear(module)
    if isinstance(module, Conv2d):
        return QuantizedConv2d.from_conv(module)
    for name, child in list(module._modules.items()):
        if isinstance(child, Linear):
            _replace_child(module, name, QuantizedLinear.from_linear(child))
        elif isinstance(child, Conv2d):
            _replace_child(module, name, QuantizedConv2d.from_conv(child))
        else:
            quantize_module(child, scheme)
    return module


def quantize_state_dict(state: dict[str, np.ndarray],
                        scheme: str = "int8") -> dict[str, np.ndarray]:
    """Rewrite an fp32 state dict into the quantized-module key schema.

    Every >= 2-D float entry named ``*weight`` becomes ``*weight_q8`` +
    ``*weight_scale``; everything else (biases, norms, buffers) passes
    through.  The result loads into ``quantize_module(build())`` with
    ``strict=True`` — this is the serialized form stored as the int8
    artifact variant.
    """
    _check_scheme(scheme)
    out: dict[str, np.ndarray] = {}
    for name, value in state.items():
        arr = np.asarray(value)
        if (name.endswith("weight") and arr.ndim >= 2
                and np.issubdtype(arr.dtype, np.floating)):
            q8, scale = quantize_array(arr)
            stem = name[: -len("weight")]
            out[stem + "weight_q8"] = q8
            out[stem + "weight_scale"] = scale
        else:
            out[name] = np.array(arr, copy=True)
    return out


def is_quantized(module: Module) -> bool:
    """Whether any layer of ``module`` carries int8 weights."""
    return any(isinstance(m, (QuantizedLinear, QuantizedConv2d))
               for m in module.modules())
