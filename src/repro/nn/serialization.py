"""Checkpoint save/load using ``.npz`` archives.

A checkpoint stores the flat state dict plus an optional JSON-serializable
config blob so a model can be reconstructed without outside knowledge
(needed when sub-models are shipped to emulated edge devices).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .modules import Module

_CONFIG_KEY = "__config_json__"


def checkpoint_path(path: str | Path) -> Path:
    """The on-disk path a checkpoint lands at, ``.npz`` suffix included.

    ``np.savez_compressed`` appends ``.npz`` when the path lacks the
    suffix, so save and load must agree on one normalized name — a caller
    passing the same suffix-less path to both must round-trip.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_checkpoint(model: Module, path: str | Path, config: dict | None = None) -> Path:
    """Write ``model``'s state (plus optional config blob) as an ``.npz``.

    Returns the normalized path actually written (see
    :func:`checkpoint_path`).
    """
    state = model.state_dict()
    if _CONFIG_KEY in state:
        raise ValueError(
            f"state dict key {_CONFIG_KEY!r} collides with the checkpoint "
            "config sentinel; rename that parameter")
    payload = dict(state)
    if config is not None:
        payload[_CONFIG_KEY] = np.frombuffer(
            json.dumps(config, allow_nan=False).encode("utf-8"),
            dtype=np.uint8)
    path = checkpoint_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict | None]:
    """Return (state_dict, config) from a checkpoint file."""
    with np.load(checkpoint_path(path), allow_pickle=False) as archive:
        state = {}
        config = None
        for key in archive.files:
            if key == _CONFIG_KEY:
                config = json.loads(archive[key].tobytes().decode("utf-8"))
            else:
                state[key] = archive[key]
    return state, config


def state_dict_num_bytes(state: dict[str, np.ndarray]) -> int:
    return sum(v.nbytes for v in state.values())


def state_dict_to_bytes(state: dict[str, np.ndarray]) -> bytes:
    """Serialize a state dict to raw bytes (used by the edge runtime)."""
    import io

    buf = io.BytesIO()
    np.savez(buf, **state)
    return buf.getvalue()


def state_dict_from_bytes(payload: bytes) -> dict[str, np.ndarray]:
    import io

    with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}
