"""``BlockedBackend``: the tuned CPU implementation of :class:`ArrayBackend`.

The reference :class:`~repro.nn.backend.NumpyBackend` leans on BLAS for the
big GEMMs, which is already near the roofline for large matrices.  What it
leaves on the table — and what dominates at the paper's operating point of
*small pruned sub-models* serving *small batches* on edge devices — is
everything around the GEMM:

* **Pre-transposed weight packing.**  ``linear`` computes ``x @ W.T`` with
  ``W`` stored ``(out, in)``; for the skinny matrices of edge sub-models the
  BLAS transposed-B path costs up to 2x over a plain NN GEMM.  Weights small
  enough to pack (``pack_limit``, default 1 MiB) are cached once in
  ``(in, out)`` contiguous layout, keyed by array identity and dropped via
  weakref when the weight is released.  Large weights keep the NT path: at
  ViT-Base scale the forward is weight-*streaming* bound and a second
  resident copy only adds cache pressure.
* **Fused bias + activation epilogues.**  ``linear_act`` applies
  gelu/relu/sigmoid/tanh on row blocks of the GEMM output while they are
  cache-hot, with a per-thread scratch instead of per-call allocations.
* **Cache-blocked int8 GEMM** (``linear_q8``): per-output-channel scales,
  fp32 accumulation, and tile-wise ``int8 -> f32`` widening so the fp32
  image of the weight never materializes whole — the resident model stays
  int8-sized.
* **Thread-parallel row blocking.**  With more than one usable core,
  ``linear``/``linear_act``/``linear_q8`` split output rows across a thread
  pool (numpy's GEMM releases the GIL).  ``num_threads`` defaults to the
  scheduler affinity, so a single-core container degrades to the sequential
  path with zero overhead.

Everything else (conv lowering, softmax, reductions) inherits the reference
kernels, so the backend stays a drop-in: ``nn.set_backend("blocked")``.
"""

from __future__ import annotations

import os
import threading
import weakref

import numpy as np

from .backend import NumpyBackend


# exp(_EXP_CLIP) stays finite in fp32 with headroom for the softmax sum.
_EXP_CLIP = np.float32(80.0)

# Row-block size for the fused softmax: big enough to amortize the python
# loop, small enough that a block round-trips through L2/L3, not DRAM.
_SOFTMAX_BLOCK_BYTES = 1 << 20


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):   # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class BlockedBackend(NumpyBackend):
    """Cache-blocked, weight-packing, epilogue-fusing CPU backend."""

    name = "blocked"

    def __init__(self, num_threads: int | None = None,
                 pack_limit: int = 1 << 20,
                 block_rows: int = 256):
        if num_threads is None:
            num_threads = min(8, _usable_cpus())
        self._num_threads = max(1, int(num_threads))
        self._pack_limit = int(pack_limit)
        self._block_rows = int(block_rows)
        self._pool = None
        self._pool_lock = threading.Lock()
        # id(weight) -> (weakref to the weight, packed layout).  Optimizer
        # steps and load_state_dict rebind parameter arrays (fresh ids), so
        # identity keying stays correct across train/infer cycles; the
        # weakref callback prunes entries when the original array dies.
        self._packed: dict[int, tuple[weakref.ref, np.ndarray]] = {}
        self._packed_lock = threading.Lock()
        self._scratch = threading.local()

    # -- internals ---------------------------------------------------------
    def _get_pool(self):
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    from concurrent.futures import ThreadPoolExecutor

                    self._pool = ThreadPoolExecutor(
                        max_workers=self._num_threads,
                        thread_name_prefix="repro-blocked")
        return self._pool

    def _packed_transpose(self, weight: np.ndarray) -> np.ndarray | None:
        """The cached ``(in, out)`` contiguous copy of ``weight``, or
        ``None`` when the weight is too large to be worth packing."""
        if weight.nbytes > self._pack_limit * weight.dtype.itemsize // 4:
            # itemsize-aware limit: an int8 weight is 4x denser, so the
            # same parameter count packs at 4x the fp32 byte budget.
            if weight.nbytes > self._pack_limit:
                return None
        key = id(weight)
        with self._packed_lock:
            entry = self._packed.get(key)
            if entry is not None and entry[0]() is weight:
                return entry[1]
        packed = np.ascontiguousarray(weight.T)
        ref = weakref.ref(weight, lambda _, k=key: self._prune_packed(k))
        with self._packed_lock:
            self._packed[key] = (ref, packed)
        return packed

    def _prune_packed(self, key: int) -> None:
        """Weakref-callback target: drop a dead weight's packed copy.

        Fires on whatever thread drops the last reference, so it takes
        the cache lock like every other ``_packed`` access.  No deadlock
        risk: the locked regions above never release array references.
        """
        with self._packed_lock:
            self._packed.pop(key, None)

    def _tmp(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Grow-on-demand per-thread scratch (epilogues, q8 tiles)."""
        store = getattr(self._scratch, "store", None)
        if store is None:
            store = self._scratch.store = {}
        dt = np.dtype(dtype)
        need = 1
        for dim in shape:
            need *= int(dim)
        flat = store.get((tag, dt.str))
        if flat is None or flat.size < need:
            flat = np.empty(need, dtype=dt)
            store[(tag, dt.str)] = flat
        return flat[:need].reshape(shape)

    def _parallel_rows(self, m: int, work) -> bool:
        """Run ``work(lo, hi)`` over row ranges on the pool; False if the
        problem is too small (or the box too narrow) to split."""
        if self._num_threads <= 1 or m < 2 * self._block_rows:
            return False
        chunks = min(self._num_threads, max(1, m // self._block_rows))
        step = -(-m // chunks)
        futures = [self._get_pool().submit(work, lo, min(lo + step, m))
                   for lo in range(0, m, step)]
        for future in futures:
            future.result()
        return True

    # -- fp32 linear -------------------------------------------------------
    def linear(self, x, weight, bias=None, out=None) -> np.ndarray:
        return self.linear_act(x, weight, bias, activation=None, out=out)

    def linear_act(self, x, weight, bias=None, activation=None,
                   out=None) -> np.ndarray:
        lead = x.shape[:-1]
        n_out = weight.shape[0]
        x2 = np.ascontiguousarray(x.reshape(-1, x.shape[-1]))
        m = x2.shape[0]
        y = out.reshape(m, n_out) if out is not None \
            else np.empty((m, n_out), dtype=x2.dtype)
        packed = self._packed_transpose(weight)
        wt = packed if packed is not None else weight.T

        def run(lo: int, hi: int) -> None:
            block = y[lo:hi]
            np.matmul(x2[lo:hi], wt, out=block)
            if bias is not None:
                block += bias
            if activation is not None:
                self.apply_activation(
                    activation, block,
                    tmp=self._tmp("epilogue", block.shape, block.dtype))

        if not self._parallel_rows(m, run):
            if m <= self._block_rows:
                run(0, m)
            else:
                # Sequential cache blocking: the epilogue touches each
                # output block while the GEMM just wrote it.
                for lo in range(0, m, self._block_rows):
                    run(lo, min(lo + self._block_rows, m))
        return y.reshape(lead + (n_out,))

    # -- int8 linear -------------------------------------------------------
    def linear_q8(self, x, weight_q8, scale, bias=None, activation=None,
                  out=None) -> np.ndarray:
        lead = x.shape[:-1]
        n_out = weight_q8.shape[0]
        x2 = np.ascontiguousarray(x.reshape(-1, x.shape[-1]))
        m = x2.shape[0]
        y = out.reshape(m, n_out) if out is not None \
            else np.empty((m, n_out), dtype=np.float32)
        packed = self._packed_transpose(weight_q8)   # (in, out) int8 or None

        def epilogue(block) -> None:
            block *= scale if block.shape[-1] == n_out \
                else scale[: block.shape[-1]]
            if bias is not None:
                block += bias if block.shape[-1] == n_out \
                    else bias[: block.shape[-1]]

        if packed is not None:
            # Small weight: widen the whole packed transpose into
            # per-thread scratch once per call, NN GEMM, scale the output.
            wt = self._tmp("q8_deq", packed.shape, np.float32)
            np.copyto(wt, packed, casting="safe")

            def run(lo: int, hi: int) -> None:
                block = y[lo:hi]
                np.matmul(x2[lo:hi], wt, out=block)
                epilogue(block)

            if not self._parallel_rows(m, run):
                run(0, m)
        else:
            # Large weight: tile over output columns so only one
            # ``tile_cols x in`` fp32 image exists at a time — resident
            # memory stays int8-sized no matter the model.
            tile_cols = max(64, min(n_out,
                                    (self._pack_limit // 4)
                                    // max(1, weight_q8.shape[1])))
            tile = None
            for j in range(0, n_out, tile_cols):
                hi = min(j + tile_cols, n_out)
                tile = self._tmp("q8_tile",
                                 (hi - j, weight_q8.shape[1]), np.float32)
                np.copyto(tile, weight_q8[j:hi], casting="safe")
                np.matmul(x2, tile.T, out=y[:, j:hi])
                y[:, j:hi] *= scale[j:hi]
                if bias is not None:
                    y[:, j:hi] += bias[j:hi]
        if activation is not None:
            self.apply_activation(activation, y,
                                  tmp=self._tmp("epilogue", y.shape, y.dtype))
        return y.reshape(lead + (n_out,))

    # -- fused softmax -----------------------------------------------------
    def softmax(self, x, axis=-1, out=None) -> np.ndarray:
        """Softmax via clipping instead of the max-shift.

        The reference kernel's row-max + subtract exists only to keep
        ``exp`` finite; clipping to ±:data:`_EXP_CLIP` gives the same
        overflow safety in one cheap elementwise pass instead of a
        (short-row-hostile) reduction plus a broadcast subtract — softmax
        is scale-invariant only up to fp rounding, and inputs this deep
        in the clip range (attention logits) agree to the last ulp or
        two.  The normalizing sum runs as a GEMV against a ones vector,
        which BLAS handles far better than numpy's short-row reduce.

        The clip/exp/sum/scale passes run over **row blocks** sized to
        stay cache-resident: a ViT-Base batch-8 score tensor is ~150 MB,
        and streaming it from DRAM four times costs more than the exp
        itself.  Blocking touches each element in one trip from memory.
        """
        if axis not in (-1, x.ndim - 1):
            return super().softmax(x, axis=axis, out=out)
        d = x.shape[-1]
        y = out if out is not None else np.empty_like(x)
        x2 = x.reshape(-1, d)
        y2 = y.reshape(-1, d)
        rows = max(1, _SOFTMAX_BLOCK_BYTES // max(1, d * x.itemsize))
        ones = self._ones(d, y2.dtype)
        for r0 in range(0, x2.shape[0], rows):
            xa = x2[r0:r0 + rows]
            ya = y2[r0:r0 + rows]
            np.clip(xa, -_EXP_CLIP, _EXP_CLIP, out=ya)
            np.exp(ya, out=ya)
            norm = np.matmul(ya, ones)
            np.divide(1.0, norm, out=norm)
            ya *= norm[:, None]
        return y

    def _ones(self, n: int, dtype) -> np.ndarray:
        ones = self._tmp("ones", (n,), dtype)
        ones.fill(1.0)
        return ones

    # -- fused layer norm --------------------------------------------------
    def layer_norm(self, x, weight, bias, eps: float, out=None) -> np.ndarray:
        """Two-pass layer norm with GEMV reductions and merged affine.

        The reference kernel makes ~7 elementwise/reduce passes; this one
        computes the mean as a GEMV, E[x^2] as a row self-dot, merges
        ``inv_std`` with the affine ``weight`` into one per-row scale
        matrix, and writes the output in three in-place sweeps.
        ``max(var, 0)`` guards the E[x^2] - mean^2 cancellation from
        going negative in fp32.
        """
        d = x.shape[-1]
        x2 = np.ascontiguousarray(x.reshape(-1, d))
        inv_d = np.float32(1.0 / d)
        mu = np.matmul(x2, self._ones(d, x2.dtype))
        mu *= inv_d
        ss = np.einsum("rd,rd->r", x2, x2, optimize=False)
        ss *= inv_d
        var = ss - mu * mu
        np.maximum(var, 0.0, out=var)
        var += eps
        np.sqrt(var, out=var)
        inv = np.divide(1.0, var, out=var)
        scale = self._tmp("ln_scale", x2.shape, x2.dtype)
        np.multiply(inv[:, None], weight, out=scale)
        y = np.subtract(x2, mu[:, None],
                        out=out.reshape(-1, d) if out is not None else None)
        y *= scale
        y += bias
        return y.reshape(x.shape)

    # -- batched matmul / einsum -------------------------------------------
    def matmul(self, a, b, out=None) -> np.ndarray:
        """Batched matmul with contiguity repair for strided operands.

        Attention feeds transposed Q/K/V *views* here; BLAS falls off its
        fast path on non-unit inner strides, so smallish strided operands
        are first gathered into per-thread scratch.  (``b`` keeps a plain
        last-axis transpose as-is — that maps to the GEMM's NT case.)
        """
        if a.ndim > 2 and not a.flags.c_contiguous and a.nbytes <= (1 << 22):
            packed = self._tmp("mm_a", a.shape, a.dtype)
            np.copyto(packed, a)
            a = packed
        if (b.ndim > 2 and b.nbytes <= (1 << 22)
                and not b.flags.c_contiguous
                and not b.transpose(
                    tuple(range(b.ndim - 2)) + (b.ndim - 1, b.ndim - 2)
                ).flags.c_contiguous):
            packed = self._tmp("mm_b", b.shape, b.dtype)
            np.copyto(packed, b)
            b = packed
        return np.matmul(a, b, out=out)

    def einsum(self, spec, *operands) -> np.ndarray:
        # The convolution lowering "ok,nkp->nop" is a plain broadcast
        # matmul; np.einsum spends more time planning a contraction path
        # per call than the tiny GEMM itself takes.
        if spec == "ok,nkp->nop" and len(operands) == 2:
            return np.matmul(operands[0], operands[1])
        return super().einsum(spec, *operands)
