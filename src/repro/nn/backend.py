"""Array-ops backend layer: the seam between autograd and raw array math.

Every numerical primitive the framework needs — matmuls, einsums, the
im2col convolution lowering, reductions, elementwise transcendentals, RNG —
is routed through an :class:`ArrayBackend` instance instead of calling
``numpy`` directly from op code.  This mirrors the thin-wrapper design of
the original ``autograd`` package (``autograd.numpy`` re-exports the array
namespace and the differentiation machinery never touches it directly): the
differentiation rules in :mod:`repro.nn.ops` compose *named primitives*, so
an alternative backend (BLAS-threaded, fused-kernel, GPU, ...) can be
plugged in by implementing this surface and registering it.

Selection::

    from repro import nn
    nn.set_backend("numpy")            # by registered name
    nn.set_backend(MyBackend())        # or an instance
    with nn.use_backend("numpy"):      # scoped override
        ...

The ``REPRO_BACKEND`` environment variable picks the initial backend at
import time (default ``"numpy"``).

Workspaces
----------
:class:`Workspace` is a shape-keyed cache of pre-allocated scratch buffers
(im2col columns, attention score matrices, MLP hidden activations).  Modules
own one workspace each; ops accept it optionally and only *reuse* buffers
while :func:`repro.nn.tensor.is_inference` is true.  Invariants:

* a buffer is keyed by ``(tag, shape, dtype)`` — same key, same storage;
* a buffer's contents are only valid until the owning module's next
  forward call: under ``inference_mode()`` outputs may alias workspace
  storage, so callers must copy anything they keep across calls
  (:func:`repro.core.predict` does);
* under plain ``no_grad()`` (without ``inference_mode()``) every op output
  is freshly allocated, so seed semantics are unchanged.
"""

from __future__ import annotations

import contextlib
import math
import os
import threading
import warnings
from typing import Callable

import numpy as np

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


class Workspace:
    """Cache of pre-allocated scratch storage for the inference fast path.

    Storage is **per thread** (concurrent inference on a shared model must
    not write into the same scratch — the mode flags in
    :mod:`repro.nn.tensor` are thread-local for the same reason) and keyed
    by ``(tag, dtype)``: each tag owns one flat grow-on-demand allocation,
    and :meth:`buffer` returns a contiguous view of the requested shape.
    Memory per tag is therefore bounded by the largest request seen, no
    matter how many distinct (e.g. ragged-final-batch) shapes pass through.

    Per-thread stores are kept in one id-keyed dict (not a
    ``threading.local``) so :meth:`nbytes` / :meth:`per_thread` can report
    the *whole* scratch footprint of a long-lived server, not just the
    calling thread's slice.
    """

    __slots__ = ("_stores", "_lock")

    def __init__(self):
        # thread ident -> {(tag, dtype): flat array}.  Single dict-key
        # reads/writes are GIL-atomic, so the hot buffer() path needs no
        # lock; the lock only serializes snapshots and first-touch setup.
        self._stores: dict[int, dict[tuple, np.ndarray]] = {}
        self._lock = threading.Lock()

    def _storage(self) -> dict[tuple, np.ndarray]:
        ident = threading.get_ident()
        store = self._stores.get(ident)
        if store is None:
            with self._lock:
                store = self._stores.setdefault(ident, {})
        return store

    def buffer(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A contiguous scratch view of ``shape``; contents unspecified.

        Views handed out for the same tag share (and overwrite) the same
        storage — valid only until the owner's next request for that tag.
        """
        dt = np.dtype(dtype)
        key = (tag, dt.str)
        need = 1
        for dim in shape:
            need *= int(dim)
        store = self._storage()
        flat = store.get(key)
        if flat is None or flat.size < need:
            flat = np.empty(need, dtype=dt)
            store[key] = flat
        return flat[:need].reshape(shape)

    def clear(self) -> None:
        """Release this thread's scratch storage."""
        with self._lock:
            self._stores.pop(threading.get_ident(), None)

    def clear_all(self) -> None:
        """Release every thread's scratch storage."""
        with self._lock:
            self._stores.clear()

    def nbytes(self) -> int:
        """Total scratch bytes held across *all* threads that ever used
        this workspace (dead threads' stores stay counted until cleared —
        they still hold the memory)."""
        with self._lock:
            return sum(b.nbytes for store in self._stores.values()
                       for b in store.values())

    def per_thread(self) -> dict[int, int]:
        """Scratch bytes per thread ident — the telemetry breakdown."""
        with self._lock:
            return {ident: sum(b.nbytes for b in store.values())
                    for ident, store in self._stores.items()}

    def __len__(self) -> int:
        return len(self._storage())


def scratch(workspace: Workspace | None, tag: str, shape, dtype) -> np.ndarray:
    """A buffer from ``workspace`` when caching is active, else a fresh array.

    Ops call this for their fast-path outputs/scratch; passing ``None`` (or
    running outside ``inference_mode()``, which is how modules decide whether
    to hand their workspace down) degrades to plain allocation.
    """
    if workspace is None:
        return np.empty(shape, dtype=dtype)
    return workspace.buffer(tag, shape, dtype)


class ArrayBackend:
    """Abstract array-primitive surface.

    :class:`NumpyBackend` is the reference implementation; subclasses may
    override any subset (e.g. just ``matmul``/``einsum`` for a BLAS-tuned
    variant) since the base class implements everything over numpy already.
    Methods accept and return plain ``np.ndarray`` — Tensors never cross
    this boundary.
    """

    name = "abstract"

    # -- creation / casting ------------------------------------------------
    def asarray(self, value, dtype=None) -> np.ndarray:
        return np.asarray(value, dtype=dtype)

    def empty(self, shape, dtype=np.float32) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype=np.float32) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def ones(self, shape, dtype=np.float32) -> np.ndarray:
        return np.ones(shape, dtype=dtype)

    def zeros_like(self, x) -> np.ndarray:
        return np.zeros_like(x)

    def ones_like(self, x) -> np.ndarray:
        return np.ones_like(x)

    def arange(self, n, dtype=None) -> np.ndarray:
        return np.arange(n, dtype=dtype)

    def rng(self, seed=None) -> np.random.Generator:
        return np.random.default_rng(seed)

    # -- linear algebra ----------------------------------------------------
    def matmul(self, a, b, out=None) -> np.ndarray:
        return np.matmul(a, b, out=out)

    def einsum(self, spec, *operands) -> np.ndarray:
        return np.einsum(spec, *operands, optimize=True)

    def linear(self, x, weight, bias=None, out=None) -> np.ndarray:
        """Affine map ``x @ weight.T + bias`` collapsed to one GEMM.

        ``x`` may have arbitrary leading dimensions; ``weight`` is stored
        ``(out_features, in_features)`` as in ``torch.nn.Linear``.
        """
        lead = x.shape[:-1]
        x2 = np.ascontiguousarray(x.reshape(-1, x.shape[-1]))
        out2 = out.reshape(-1, weight.shape[0]) if out is not None else None
        y = np.matmul(x2, weight.T, out=out2)
        if bias is not None:
            y += bias
        return y.reshape(lead + (weight.shape[0],))

    # Activations linear_act/linear_q8 may fuse as a post-GEMM epilogue.
    ACTIVATIONS = ("gelu", "relu", "sigmoid", "tanh")

    def apply_activation(self, name: str, buf, tmp=None) -> np.ndarray:
        """Apply a named activation to ``buf`` **in place**.

        ``tmp`` is optional same-shape scratch; only ``gelu`` needs it
        (its tanh argument must be built while ``buf`` still holds x).
        """
        if name == "relu":
            return np.maximum(buf, 0.0, out=buf)
        if name == "sigmoid":
            return self.sigmoid(buf, out=buf)
        if name == "tanh":
            return np.tanh(buf, out=buf)
        if name == "gelu":
            if tmp is None:
                tmp = np.empty_like(buf)
            np.multiply(buf, buf, out=tmp)
            tmp *= buf                 # x*x*x (generic float pow is ~70x slower)
            tmp *= 0.044715
            tmp += buf
            tmp *= _SQRT_2_OVER_PI
            np.tanh(tmp, out=tmp)
            tmp += 1.0
            buf *= tmp
            buf *= 0.5
            return buf
        raise ValueError(f"unknown activation {name!r}; "
                         f"supported: {list(self.ACTIVATIONS)}")

    def linear_act(self, x, weight, bias=None, activation=None,
                   out=None) -> np.ndarray:
        """:meth:`linear` with an optional fused activation epilogue.

        The reference implementation just chains the two; tuned backends
        override it to apply the epilogue on cache-hot output blocks.
        """
        y = self.linear(x, weight, bias, out=out)
        if activation is not None:
            self.apply_activation(activation, y)
        return y

    def linear_q8(self, x, weight_q8, scale, bias=None, activation=None,
                  out=None) -> np.ndarray:
        """int8-weight affine map with fp32 accumulation.

        ``weight_q8`` is ``(out_features, in_features)`` int8 and ``scale``
        the per-output-channel dequantization scale (see
        :mod:`repro.nn.quantize`).  Because the scale is per *output*
        channel it folds into the GEMM result's columns
        (``(x @ q.T) * scale == x @ (q * scale[:, None]).T``), so the
        weight itself only needs a dtype widen, never a scaled copy.
        """
        lead = x.shape[:-1]
        n_out = weight_q8.shape[0]
        x2 = np.ascontiguousarray(x.reshape(-1, x.shape[-1]))
        out2 = out.reshape(-1, n_out) if out is not None else None
        y = np.matmul(x2, weight_q8.astype(np.float32).T, out=out2)
        y *= scale
        if bias is not None:
            y += bias
        if activation is not None:
            self.apply_activation(activation, y)
        return y.reshape(lead + (n_out,))

    # -- elementwise -------------------------------------------------------
    def exp(self, x, out=None) -> np.ndarray:
        return np.exp(x, out=out)

    def log(self, x, out=None) -> np.ndarray:
        return np.log(x, out=out)

    def sqrt(self, x, out=None) -> np.ndarray:
        return np.sqrt(x, out=out)

    def tanh(self, x, out=None) -> np.ndarray:
        return np.tanh(x, out=out)

    def sigmoid(self, x, out=None) -> np.ndarray:
        out = np.negative(x, out=out)
        np.exp(out, out=out)
        out += 1.0
        return np.divide(1.0, out, out=out)

    def relu(self, x, out=None) -> np.ndarray:
        return np.maximum(x, 0.0, out=out)

    def abs(self, x) -> np.ndarray:
        return np.abs(x)

    def sign(self, x) -> np.ndarray:
        return np.sign(x)

    def clip(self, x, lo, hi) -> np.ndarray:
        return np.clip(x, lo, hi)

    def maximum(self, a, b) -> np.ndarray:
        return np.maximum(a, b)

    def where(self, cond, a, b) -> np.ndarray:
        return np.where(cond, a, b)

    def gelu(self, x, out=None) -> np.ndarray:
        """Tanh-approximation GELU, fused and cube-by-multiplication.

        ``x ** 3`` hits numpy's generic float pow (~70x slower than two
        multiplies for float32), so the cube is computed as ``x*x*x``.
        """
        buf = np.multiply(x, x, out=out)
        buf *= x
        buf *= 0.044715
        buf += x
        buf *= _SQRT_2_OVER_PI
        np.tanh(buf, out=buf)
        buf += 1.0
        buf *= x
        buf *= 0.5
        return buf

    # -- reductions --------------------------------------------------------
    def sum(self, x, axis=None, keepdims=False) -> np.ndarray:
        return x.sum(axis=axis, keepdims=keepdims)

    def mean(self, x, axis=None, keepdims=False) -> np.ndarray:
        return x.mean(axis=axis, keepdims=keepdims)

    def max(self, x, axis=None, keepdims=False) -> np.ndarray:
        return x.max(axis=axis, keepdims=keepdims)

    def argmax(self, x, axis=None) -> np.ndarray:
        return x.argmax(axis=axis)

    def prod(self, values) -> float:
        return float(np.prod(values))

    # -- shape / indexing --------------------------------------------------
    def pad(self, x, pad_width) -> np.ndarray:
        return np.pad(x, pad_width)

    def concatenate(self, arrays, axis=0) -> np.ndarray:
        return np.concatenate(arrays, axis=axis)

    def stack(self, arrays, axis=0) -> np.ndarray:
        return np.stack(arrays, axis=axis)

    def split(self, x, sections, axis=0) -> list[np.ndarray]:
        return np.split(x, sections, axis=axis)

    def squeeze(self, x, axis=None) -> np.ndarray:
        return np.squeeze(x, axis=axis)

    def expand_dims(self, x, axis) -> np.ndarray:
        return np.expand_dims(x, axis)

    def broadcast_to(self, x, shape) -> np.ndarray:
        return np.broadcast_to(x, shape)

    def ascontiguous(self, x) -> np.ndarray:
        return np.ascontiguousarray(x)

    def take_along_axis(self, x, indices, axis) -> np.ndarray:
        return np.take_along_axis(x, indices, axis=axis)

    def put_along_axis(self, x, indices, values, axis) -> None:
        np.put_along_axis(x, indices, values, axis=axis)

    def index_add(self, target, key, values) -> None:
        """Scatter-add ``values`` into ``target[key]`` (duplicate-safe)."""
        np.add.at(target, key, values)

    def one_hot(self, labels, num_classes: int, dtype=np.float32) -> np.ndarray:
        labels = np.asarray(labels, dtype=np.int64)
        out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
        out[np.arange(labels.shape[0]), labels] = 1.0
        return out

    # -- fused normalization / softmax kernels -----------------------------
    def softmax(self, x, axis=-1, out=None) -> np.ndarray:
        shifted = np.subtract(x, x.max(axis=axis, keepdims=True), out=out)
        np.exp(shifted, out=shifted)
        shifted /= shifted.sum(axis=axis, keepdims=True)
        return shifted

    def log_softmax(self, x, axis=-1, out=None) -> np.ndarray:
        shifted = np.subtract(x, x.max(axis=axis, keepdims=True), out=out)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        shifted -= log_sum
        return shifted

    def layer_norm(self, x, weight, bias, eps: float, out=None) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True)
        centered = np.subtract(x, mu, out=out)
        var = (centered * centered).mean(axis=-1, keepdims=True)
        var += eps
        np.sqrt(var, out=var)
        centered /= var
        centered *= weight
        centered += bias
        return centered

    def batch_norm_stats(self, x, axes) -> tuple[np.ndarray, np.ndarray]:
        return x.mean(axis=axes, keepdims=True), x.var(axis=axes, keepdims=True)

    # -- convolution lowering ----------------------------------------------
    def conv_im2col(self, x, kh: int, kw: int, stride: int, pad: int,
                    out=None) -> tuple[np.ndarray, int, int]:
        """Lower (N, C, H, W) to receptive-field columns.

        Returns ``(cols, out_h, out_w)`` with ``cols`` of shape
        ``(N, C*kh*kw, out_h*out_w)``.  ``out`` (from a workspace) receives
        the gathered columns to avoid reallocating per call.
        """
        n, c, h, w = x.shape
        if pad:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        out_h = (h + 2 * pad - kh) // stride + 1
        out_w = (w + 2 * pad - kw) // stride + 1
        s = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, kh, kw),
            strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
            writeable=False,
        )
        transposed = windows.transpose(0, 1, 4, 5, 2, 3)
        shape = (n, c * kh * kw, out_h * out_w)
        if out is not None:
            cols = out
            np.copyto(cols.reshape(n, c, kh, kw, out_h, out_w), transposed)
        else:
            cols = np.ascontiguousarray(transposed).reshape(shape)
        return cols.reshape(shape), out_h, out_w

    def col2im(self, cols, x_shape, kh: int, kw: int, stride: int,
               pad: int) -> np.ndarray:
        """Scatter-add columns back onto the input; inverse of conv_im2col."""
        n, c, h, w = x_shape
        padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
        out_h = (h + 2 * pad - kh) // stride + 1
        out_w = (w + 2 * pad - kw) // stride + 1
        cols = cols.reshape(n, c, kh, kw, out_h, out_w)
        for i in range(kh):
            for j in range(kw):
                padded[:, :, i:i + stride * out_h:stride,
                       j:j + stride * out_w:stride] += cols[:, :, i, j]
        if pad:
            return padded[:, :, pad:-pad, pad:-pad]
        return padded


class NumpyBackend(ArrayBackend):
    """The default backend: plain numpy with the fused kernels above."""

    name = "numpy"


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------
def _blocked_factory() -> ArrayBackend:
    from .blocked import BlockedBackend   # deferred: blocked imports this module

    return BlockedBackend()


def _profiled_factory() -> ArrayBackend:
    # Deferred: repro.obs imports this module.  Registered by name so
    # REPRO_BACKEND=profiled reaches spawned worker processes too; the
    # wrapped backend comes from REPRO_PROFILE_INNER (default numpy).
    from ..obs.profile import ProfilingBackend

    inner = os.environ.get("REPRO_PROFILE_INNER", "numpy")
    if inner == "profiled":            # would recurse into this factory
        inner = "numpy"
    return ProfilingBackend(_resolve(inner))


_REGISTRY: dict[str, Callable[[], ArrayBackend]] = {
    "numpy": NumpyBackend,
    "blocked": _blocked_factory,
    "profiled": _profiled_factory,
}
_state = threading.local()


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` for :func:`set_backend`."""
    if not callable(factory):
        raise TypeError("factory must be callable")
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    return sorted(_REGISTRY)


# Default-constructed singleton per registered name.  Backends carry warm
# state (packed-weight caches, scratch arenas, thread pools), so resolving
# a *name* must return the same instance every time — a fresh instance per
# ``use_backend("blocked")`` entry would silently repack every weight on
# every scoped switch.  Explicitly constructed instances bypass this.
_INSTANCES: dict[str, ArrayBackend] = {}


def _resolve(backend: str | ArrayBackend) -> ArrayBackend:
    if isinstance(backend, ArrayBackend):
        return backend
    if backend not in _REGISTRY:
        raise ValueError(
            f"unknown backend {backend!r}; registered backends: "
            f"{available_backends()}")
    instance = _INSTANCES.get(backend)
    if instance is None:
        instance = _INSTANCES[backend] = _REGISTRY[backend]()
    return instance


def _initial_backend() -> ArrayBackend:
    """Resolve ``REPRO_BACKEND`` at import time, surviving bad values.

    A typo in the environment must degrade to the numpy reference with a
    warning — raising here would make ``import repro`` itself crash.
    """
    name = os.environ.get("REPRO_BACKEND", "numpy")
    try:
        return _resolve(name)
    except ValueError as exc:
        warnings.warn(f"ignoring REPRO_BACKEND: {exc}; "
                      f"falling back to 'numpy'", RuntimeWarning,
                      stacklevel=2)
        return NumpyBackend()


_default_backend: ArrayBackend = _initial_backend()


def set_backend(backend: str | ArrayBackend) -> ArrayBackend:
    """Install the process-wide default backend (name or instance)."""
    global _default_backend
    _default_backend = _resolve(backend)
    return _default_backend


def get_backend() -> ArrayBackend:
    """The active backend: innermost :func:`use_backend` override, else the
    process default."""
    override = getattr(_state, "stack", None)
    if override:
        return override[-1]
    return _default_backend


@contextlib.contextmanager
def use_backend(backend: str | ArrayBackend):
    """Scoped (and thread-local) backend override."""
    resolved = _resolve(backend)
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    stack.append(resolved)
    try:
        yield resolved
    finally:
        stack.pop()
