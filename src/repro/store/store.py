"""Content-addressed model artifact store.

The fleet pays for sub-model (and fusion) training once; every later
boot of the same plan should be a checkpoint load, not a retrain.  The
store makes that safe by keying each artifact on a **digest of its
rebuild recipe** — the model kind, the exact config dict, the
head-pruning number, the class group, the seed, and the training
settings.  Two plans that would deterministically rebuild the same
weights therefore share one artifact; any change to the recipe changes
the key.

On-disk layout (all JSON/npz, no pickles)::

    <root>/manifest.json               # digest -> ArtifactInfo metadata
    <root>/objects/<digest>.npz        # the checkpoint (state dict + config)

Every load re-hashes the object file and compares against the SHA-256
recorded at ``put`` time, so a corrupted or tampered artifact raises
:class:`ArtifactCorrupt` instead of silently serving garbage weights.
``get`` also bumps the artifact's ``last_used_at``, which drives the
LRU :meth:`ArtifactStore.gc` policy (bound the store by bytes and/or
artifact count; least-recently-used artifacts are evicted first).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from ..nn.modules import Module
from ..nn.serialization import (
    load_checkpoint,
    save_checkpoint,
    state_dict_to_bytes,
)
from ..obs.metrics import get_registry
from ..obs.trace import span

MANIFEST_NAME = "manifest.json"
OBJECTS_DIR = "objects"
MANIFEST_FORMAT_VERSION = 1


class ArtifactError(RuntimeError):
    """Base class for artifact-store failures."""


class ArtifactMissing(ArtifactError, KeyError):
    """The requested digest is not in the store."""

    def __init__(self, digest: str):
        super().__init__(f"artifact {digest!r} is not in the store")
        self.digest = digest


class ArtifactCorrupt(ArtifactError):
    """An artifact's bytes no longer match its recorded content hash."""

    def __init__(self, digest: str, detail: str):
        super().__init__(f"artifact {digest!r} failed integrity "
                         f"verification: {detail}")
        self.digest = digest


def submodel_recipe(kind: str, config: dict, hp: int | None,
                    classes, seed: int, train: dict,
                    quant: str = "fp32") -> dict:
    """The canonical rebuild-recipe shape for one sub-model.

    Shared by the planning layer (:meth:`repro.planning.DeploymentPlan.
    submodel_recipe`) and the demo builder so their digest schemas can
    never drift — a silent schema divergence would turn every warm boot
    into a full retrain.  ``classes`` is ``None`` when the sub-model
    trains on all classes rather than a partition subset.

    ``quant`` names a post-training weight-quantization scheme (see
    :mod:`repro.nn.quantize`); a non-``"fp32"`` value extends the recipe
    so quantized variants get their own digest and dedup independently.
    The key is *omitted* entirely for ``"fp32"`` so every digest minted
    before quantization existed stays valid.
    """
    recipe = {"kind": str(kind),
              "config": dict(config),
              "hp": None if hp is None else int(hp),
              "classes": None if classes is None else [int(c) for c in classes],
              "seed": int(seed),
              "train": dict(train)}
    if quant != "fp32":
        recipe["quant"] = str(quant)
    return recipe


def fusion_recipe(config: dict, seed: int, train: dict,
                  submodels: list[dict]) -> dict:
    """The canonical rebuild recipe of a fusion MLP.

    Embeds every sub-model recipe: fusion trains on the concatenated
    features of all sub-models, so retraining any of them invalidates
    the fusion artifact with it.
    """
    return {"kind": "fusion",
            "config": dict(config),
            "seed": int(seed),
            "train": dict(train),
            "submodels": list(submodels)}


def warm_load(store: "ArtifactStore", digests: dict[str, str],
              modules: dict[str, Module]) -> bool:
    """Checkpoint-load every module from its artifact; the warm boot.

    ``digests`` and ``modules`` share keys.  Returns ``False`` without
    touching any module when *any* artifact is missing (callers fall
    back to the cold rebuild); a present-but-corrupt artifact raises
    :class:`ArtifactCorrupt` instead of silently retraining.
    """
    if not all(store.has(digest) for digest in digests.values()):
        return False
    for name, module in modules.items():
        state, _ = store.get(digests[name])
        module.load_state_dict(state)
    return True


def recipe_digest(recipe: dict) -> str:
    """SHA-256 over the canonical JSON encoding of a rebuild recipe.

    Canonical means sorted keys and no whitespace, so dict insertion
    order never changes the key.  Raises ``TypeError`` for recipes that
    are not pure JSON (the store must be able to show an operator exactly
    what a digest stands for).
    """
    canonical = json.dumps(recipe, sort_keys=True, separators=(",", ":"),
                           allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclasses.dataclass
class ArtifactInfo:
    """Manifest metadata for one stored artifact."""

    digest: str                        # recipe digest (the store key)
    kind: str                          # model kind ("vit", ..., "fusion")
    nbytes: int                        # size of the object file
    content_sha256: str                # hash of the object file bytes
    created_at: float                  # unix seconds
    last_used_at: float                # unix seconds; bumped on get()
    meta: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "ArtifactInfo":
        return ArtifactInfo(digest=str(data["digest"]),
                            kind=str(data["kind"]),
                            nbytes=int(data["nbytes"]),
                            content_sha256=str(data["content_sha256"]),
                            created_at=float(data["created_at"]),
                            last_used_at=float(data["last_used_at"]),
                            meta=dict(data.get("meta", {})))


class ArtifactStore:
    """A directory of integrity-checked, recipe-addressed checkpoints."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.objects = self.root / OBJECTS_DIR
        self.objects.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / MANIFEST_NAME
        self._artifacts: dict[str, ArtifactInfo] = {}
        self._load_manifest()
        registry = get_registry()
        self._m_hits = registry.counter("store.hits_total")
        self._m_misses = registry.counter("store.misses_total")
        self._m_evicted = registry.counter("store.gc_evicted_total")
        self._m_get_s = registry.histogram("store.get_seconds")
        self._m_put_s = registry.histogram("store.put_seconds")

    # -- manifest ------------------------------------------------------
    def _load_manifest(self) -> None:
        if not self._manifest_path.exists():
            return
        data = json.loads(self._manifest_path.read_text())
        version = data.get("format_version")
        if version != MANIFEST_FORMAT_VERSION:
            raise ArtifactError(
                f"unsupported manifest format_version {version!r}")
        self._artifacts = {digest: ArtifactInfo.from_dict(info)
                           for digest, info in data["artifacts"].items()}

    def _save_manifest(self) -> None:
        payload = {"format_version": MANIFEST_FORMAT_VERSION,
                   "artifacts": {digest: info.to_dict()
                                 for digest, info in self._artifacts.items()}}
        # Atomic replace: a crash mid-write must not leave a truncated
        # manifest that orphans every object in the store.
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".manifest-",
                                   suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                # allow_nan=False: float timestamps/sizes must serialize
                # as valid JSON or fail loudly before the atomic replace.
                json.dump(payload, handle, indent=2, allow_nan=False)
            os.replace(tmp, self._manifest_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- introspection -------------------------------------------------
    def object_path(self, digest: str) -> Path:
        return self.objects / f"{digest}.npz"

    def __len__(self) -> int:
        return len(self._artifacts)

    def __contains__(self, digest: str) -> bool:
        return self.has(digest)

    def has(self, digest: str) -> bool:
        present = digest in self._artifacts \
            and self.object_path(digest).exists()
        if not present:
            # Every miss here is a cold rebuild decision (warm_load probes
            # via has()), which is exactly the cache-efficiency signal.
            self._m_misses.inc()
        return present

    def info(self, digest: str) -> ArtifactInfo:
        try:
            return self._artifacts[digest]
        except KeyError:
            raise ArtifactMissing(digest) from None

    def ls(self) -> list[ArtifactInfo]:
        """All artifacts, most recently used first."""
        return sorted(self._artifacts.values(),
                      key=lambda info: (-info.last_used_at, info.digest))

    @property
    def total_bytes(self) -> int:
        return sum(info.nbytes for info in self._artifacts.values())

    # -- write path ----------------------------------------------------
    def put(self, digest: str, model: Module, config: dict | None = None,
            kind: str = "model", meta: dict | None = None) -> ArtifactInfo:
        """Store ``model``'s checkpoint under ``digest``.  Idempotent.

        ``config`` rides inside the checkpoint (the standard
        :func:`repro.nn.serialization.save_checkpoint` blob) so the
        artifact alone suffices to rebuild the module; ``meta`` is
        free-form JSON shown by ``ls`` (e.g. the full rebuild recipe).
        """
        t0 = time.perf_counter()
        with span("store.put", digest=digest[:12], kind=kind):
            path = save_checkpoint(model, self.object_path(digest),
                                   config=config)
            now = time.time()
            self._artifacts[digest] = ArtifactInfo(
                digest=digest, kind=kind, nbytes=path.stat().st_size,
                content_sha256=_file_sha256(path), created_at=now,
                last_used_at=now, meta=dict(meta or {}))
            self._save_manifest()
        self._m_put_s.observe(time.perf_counter() - t0)
        return self._artifacts[digest]

    def remove(self, digest: str) -> None:
        self._artifacts.pop(digest, None)
        try:
            self.object_path(digest).unlink()
        except FileNotFoundError:
            pass
        self._save_manifest()

    # -- read path -----------------------------------------------------
    def verify(self, digest: str) -> ArtifactInfo:
        """Integrity-check one artifact; raises on missing/corrupt."""
        info = self.info(digest)
        path = self.object_path(digest)
        if not path.exists():
            raise ArtifactCorrupt(digest, "object file is missing")
        actual = _file_sha256(path)
        if actual != info.content_sha256:
            raise ArtifactCorrupt(
                digest, f"content hash {actual[:12]}… does not match the "
                f"manifest's {info.content_sha256[:12]}…")
        return info

    def get(self, digest: str) -> tuple[dict[str, np.ndarray], dict | None]:
        """Verified load: returns ``(state_dict, config)``.

        Always re-hashes the object file first (:class:`ArtifactCorrupt`
        on mismatch) and bumps the artifact's LRU timestamp.  The bump
        is best-effort: a read-only store (shared CI cache, read-only
        serving volume) must still warm-boot, so a failed manifest write
        only costs LRU freshness, never the load.
        """
        t0 = time.perf_counter()
        with span("store.get", digest=digest[:12]):
            info = self.verify(digest)
            state, config = load_checkpoint(self.object_path(digest))
            info.last_used_at = time.time()
            try:
                self._save_manifest()
            except OSError:
                pass                   # read-only store: skip the LRU bump
        self._m_hits.inc()
        self._m_get_s.observe(time.perf_counter() - t0)
        return state, config

    def state_blob(self, digest: str) -> bytes:
        """The artifact's verified state dict in worker wire format.

        Convenience for callers that ship weights straight into a
        :class:`repro.edge.runtime.WorkerSpec` (whose ``state_blob``
        field uses the same ``state_dict_to_bytes`` encoding, config
        sentinel stripped) without materializing a module first.  The
        built-in warm-boot paths instead :meth:`get` into modules they
        need locally anyway.
        """
        state, _ = self.get(digest)
        return state_dict_to_bytes(state)

    # -- retention -----------------------------------------------------
    def gc(self, max_bytes: int | None = None,
           max_artifacts: int | None = None,
           keep: set[str] | frozenset[str] = frozenset()) -> list[str]:
        """Evict least-recently-used artifacts until within the bounds.

        ``keep`` pins digests (e.g. those referenced by a live plan) so
        retention never breaks a deployed fleet's warm boot.  Returns the
        evicted digests, oldest first.
        """
        evicted: list[str] = []
        with span("store.gc") as gc_span:
            # Oldest-used first; pinned digests are never candidates.
            candidates = [info.digest for info in reversed(self.ls())
                          if info.digest not in keep]

            def over_budget() -> bool:
                if max_artifacts is not None and len(self) > max_artifacts:
                    return True
                if max_bytes is not None and self.total_bytes > max_bytes:
                    return True
                return False

            for digest in candidates:
                if not over_budget():
                    break
                self._artifacts.pop(digest, None)
                try:
                    self.object_path(digest).unlink()
                except FileNotFoundError:
                    pass
                evicted.append(digest)
            if evicted:
                self._save_manifest()
                self._m_evicted.inc(len(evicted))
            gc_span.set("evicted", len(evicted))
        return evicted
