"""Model artifact store: train once, warm-boot everywhere.

:class:`ArtifactStore` is a content-addressed checkpoint directory keyed
by :func:`recipe_digest` — a SHA-256 over a sub-model's deterministic
rebuild recipe (model kind, config, head-pruning number, class group,
seed, training settings).  The planning layer records per-sub-model
artifact refs in every :class:`repro.planning.DeploymentPlan`, and
:meth:`repro.planning.PlannedSystem.from_plan` /
:func:`repro.serving.build_demo_system` check the store before falling
back to the deterministic (and expensive) rebuild-and-retrain path.
Integrity is verified on every load; an LRU ``gc`` bounds disk usage.
"""

from .store import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactInfo,
    ArtifactMissing,
    ArtifactStore,
    fusion_recipe,
    recipe_digest,
    submodel_recipe,
    warm_load,
)

__all__ = [
    "ArtifactCorrupt",
    "ArtifactError",
    "ArtifactInfo",
    "ArtifactMissing",
    "ArtifactStore",
    "fusion_recipe",
    "recipe_digest",
    "submodel_recipe",
    "warm_load",
]
