"""Structured tracing: lightweight spans with cross-process propagation.

A **span** is one named, wall-clock-anchored interval of work (a batch
serve, a worker forward, a codec decode) tagged with a ``trace_id`` that
joins every span of one request together across threads *and* processes.
The serving stack emits spans when tracing is enabled and pays ~nothing
when it is not: :func:`span` checks one module-level flag and returns a
shared no-op context manager, so the disabled fast path is a single
branch with no allocation.

Timestamps are **wall clock** (``time.time()``), not ``perf_counter``:
``perf_counter`` has an arbitrary per-process epoch, so spans recorded in
a worker process could never be aligned with the server's on a shared
timeline.  Durations are still measured with ``perf_counter`` for
resolution; only the anchor is wall clock.

Cross-process propagation works over the existing worker wire protocol:
the server attaches a **trace context** (``{"trace_id", "parent_id"}``)
to each ``infer`` message, the worker records its spans as plain dicts
(:func:`span_dict` — no tracer object needed in the worker) and ships
them back piggybacked on its reply, and :meth:`EdgeCluster.poll
<repro.edge.runtime.EdgeCluster.poll>` merges them into the server-side
collector.  A worker that receives no trace context records nothing, so
enabling/disabling tracing in the server is the only switch.

Collected spans live in a thread-safe ring buffer (:class:`Tracer`) and
export through :mod:`repro.obs.export` (JSONL and Chrome-trace/Perfetto).
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
import time
from typing import Iterable

TRACE_SCHEMA_VERSION = 1

_SPAN_COUNTER = itertools.count(1)


def new_span_id() -> str:
    """A process-unique span id (pid-prefixed so worker ids never collide
    with the server's)."""
    return f"{os.getpid():x}-{next(_SPAN_COUNTER):x}"


@dataclasses.dataclass
class SpanRecord:
    """One finished span: a named interval on a process/thread timeline."""

    name: str                          # dotted taxonomy, e.g. "batch.gather"
    trace_id: int | str | None         # joins all spans of one request
    span_id: str
    parent_id: str | None
    process: str                       # "server" or the worker id
    thread: str                        # recording thread's name
    ts: float                          # wall-clock start (unix seconds)
    duration_s: float
    attrs: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "SpanRecord":
        return SpanRecord(name=str(data["name"]),
                          trace_id=data.get("trace_id"),
                          span_id=str(data["span_id"]),
                          parent_id=data.get("parent_id"),
                          process=str(data.get("process", "server")),
                          thread=str(data.get("thread", "")),
                          ts=float(data["ts"]),
                          duration_s=float(data["duration_s"]),
                          attrs=dict(data.get("attrs", {})))


def span_dict(name: str, trace_id, span_id: str, parent_id: str | None,
              process: str, ts: float, duration_s: float,
              attrs: dict | None = None) -> dict:
    """A span as a plain JSON-safe dict — the worker-side wire shape.

    Workers build these without touching any tracer state and piggyback
    them on their reply; the server re-hydrates them with
    :meth:`Tracer.record_dicts`.
    """
    return {"name": name, "trace_id": trace_id, "span_id": span_id,
            "parent_id": parent_id, "process": process,
            "thread": threading.current_thread().name,
            "ts": ts, "duration_s": duration_s, "attrs": dict(attrs or {})}


class _LiveSpan:
    """Context manager recording one span into a tracer on exit."""

    __slots__ = ("_tracer", "name", "trace_id", "parent_id", "span_id",
                 "attrs", "_t0", "_ts")

    def __init__(self, tracer: "Tracer", name: str, trace_id, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.parent_id: str | None = None
        self.span_id = new_span_id()
        self.attrs = attrs

    def set(self, key: str, value) -> None:
        """Attach an attribute discovered mid-span."""
        self.attrs[key] = value

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        if stack:
            inherited_trace, parent = stack[-1]
            if self.trace_id is None:
                self.trace_id = inherited_trace
            self.parent_id = parent
        stack.append((self.trace_id, self.span_id))
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1][1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer.emit(self.name, trace_id=self.trace_id,
                          span_id=self.span_id, parent_id=self.parent_id,
                          ts=self._ts, duration_s=duration,
                          attrs=self.attrs)
        return False


class _NoopSpan:
    """Shared do-nothing span: the entire cost of disabled tracing."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Thread-safe ring-buffered span collector for one process.

    The ring bound (``capacity``) keeps a long-lived traced server from
    growing without limit — the oldest spans fall off, exactly like the
    serving telemetry ring buffer.
    """

    def __init__(self, capacity: int = 65536, process: str = "server"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.process = process
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._start = 0                # ring: index of the oldest span
        self._dropped = 0
        self._local = threading.local()

    # -- context stack (per thread) ------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_context(self) -> dict | None:
        """The wire-shape trace context of the innermost open span."""
        stack = self._stack()
        if not stack:
            return None
        trace_id, span_id = stack[-1]
        return {"trace_id": trace_id, "parent_id": span_id}

    def activate(self, trace_id, parent_id: str | None = None) -> "_Activation":
        """Adopt a propagated context so nested spans attach to it."""
        return _Activation(self, trace_id, parent_id)

    # -- recording ------------------------------------------------------
    def span(self, name: str, trace_id=None, **attrs) -> _LiveSpan:
        return _LiveSpan(self, name, trace_id, attrs)

    def emit(self, name: str, trace_id=None, span_id: str | None = None,
             parent_id: str | None = None, ts: float | None = None,
             duration_s: float = 0.0, process: str | None = None,
             thread: str | None = None, attrs: dict | None = None,
             ) -> SpanRecord:
        """Record one already-measured span (retroactive emission).

        The serving loop uses this to turn durations it measures anyway
        (gather, fusion, per-request queueing) into spans without timing
        anything twice.
        """
        record = SpanRecord(
            name=name, trace_id=trace_id,
            span_id=span_id or new_span_id(), parent_id=parent_id,
            process=process or self.process,
            thread=thread if thread is not None
            else threading.current_thread().name,
            ts=time.time() if ts is None else ts,
            duration_s=duration_s, attrs=dict(attrs or {}))
        self.record(record)
        return record

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) < self.capacity:
                self._spans.append(record)
            else:                      # ring: overwrite the oldest
                self._spans[self._start] = record
                self._start = (self._start + 1) % self.capacity
                self._dropped += 1

    def record_dicts(self, spans: Iterable[dict]) -> None:
        """Merge spans that crossed a process boundary as plain dicts."""
        for data in spans:
            self.record(SpanRecord.from_dict(data))

    # -- inspection -----------------------------------------------------
    def spans(self) -> list[SpanRecord]:
        """All retained spans, oldest first."""
        with self._lock:
            return self._spans[self._start:] + self._spans[:self._start]

    def drain(self) -> list[SpanRecord]:
        """Return all retained spans and clear the buffer."""
        with self._lock:
            out = self._spans[self._start:] + self._spans[:self._start]
            self._spans = []
            self._start = 0
            return out

    def clear(self) -> None:
        self.drain()

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring bound since the last construction."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class _Activation:
    """Context manager installing a propagated trace context."""

    __slots__ = ("_tracer", "_entry")

    def __init__(self, tracer: Tracer, trace_id, parent_id: str | None):
        self._tracer = tracer
        self._entry = (trace_id, parent_id)

    def __enter__(self) -> "_Activation":
        self._tracer._stack().append(self._entry)
        return self

    def __exit__(self, *exc) -> bool:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._entry:
            stack.pop()
        return False


# ----------------------------------------------------------------------
# Global tracer: one switch for the whole process.  Hot paths branch on
# ``tracing_enabled()`` (a module-global read) and skip all span work when
# it is off.
_enabled = False
_tracer = Tracer()


def enable_tracing(capacity: int = 65536, process: str = "server") -> Tracer:
    """Turn on span collection; returns the fresh global tracer."""
    global _enabled, _tracer
    _tracer = Tracer(capacity=capacity, process=process)
    _enabled = True
    return _tracer


def disable_tracing() -> None:
    """Turn span collection off (already-collected spans stay readable)."""
    global _enabled
    _enabled = False


def tracing_enabled() -> bool:
    return _enabled


def get_tracer() -> Tracer:
    """The global tracer (its buffer survives :func:`disable_tracing`)."""
    return _tracer


def span(name: str, trace_id=None, **attrs):
    """Open a span on the global tracer; a shared no-op when disabled."""
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, trace_id=trace_id, **attrs)
