"""Kernel profiling on the ``ArrayBackend`` seam.

:class:`ProfilingBackend` wraps any registered backend (numpy, blocked,
...) and records per-kernel wall time and bytes moved for the kernels
that dominate transformer inference — matmul/einsum, the fused linear
family, softmax/log-softmax, layer-norm, and the im2col lowering.  All
other primitives delegate straight to the wrapped backend with no
overhead: the constructor binds the inner backend's bound methods as
*instance attributes*, which shadow the class methods, so untimed calls
are a single attribute hop.

Metrics land in the global :class:`~repro.obs.metrics.MetricsRegistry`
as ``kernel.<op>_seconds{backend=<inner>}`` histograms and
``kernel.<op>_bytes_total{backend=<inner>}`` counters.  Bytes count the
kernel's array traffic (operands in + result out) — the roofline-style
companion to the timing.

Select it like any backend (``REPRO_BACKEND=profiled``, inner chosen by
``REPRO_PROFILE_INNER``, default ``numpy``), or wrap explicitly::

    from repro import nn, obs
    nn.set_backend(obs.ProfilingBackend(nn.get_backend()))
    ...
    print(obs.get_registry().render_text("kernel."))

Kernel metrics are per-process: under the process transports each worker
profiles into its own registry, so fleet-wide kernel rollups require the
in-process transport (or reading each worker's dump separately).
"""

from __future__ import annotations

import time

import numpy as np

from ..nn.backend import ArrayBackend
from .metrics import get_registry

# The kernels worth timing: everything else is glue (reshapes, casts,
# elementwise ops already fused inside these, RNG).
PROFILED_KERNELS = ("matmul", "einsum", "linear", "linear_act",
                    "linear_q8", "softmax", "log_softmax", "layer_norm",
                    "conv_im2col")


def _nbytes(*arrays) -> int:
    total = 0
    for a in arrays:
        if isinstance(a, np.ndarray):
            total += a.nbytes
    return total


class ProfilingBackend(ArrayBackend):
    """An :class:`ArrayBackend` that times another backend's hot kernels."""

    def __init__(self, inner: ArrayBackend | None = None):
        if inner is None:
            from ..nn.backend import NumpyBackend

            inner = NumpyBackend()
        if isinstance(inner, ProfilingBackend):
            raise TypeError("refusing to profile a ProfilingBackend")
        self.inner = inner
        self.name = f"profiled[{inner.name}]"
        registry = get_registry()
        self._seconds = {op: registry.histogram(f"kernel.{op}_seconds",
                                                backend=inner.name)
                         for op in PROFILED_KERNELS}
        self._bytes = {op: registry.counter(f"kernel.{op}_bytes_total",
                                            backend=inner.name)
                       for op in PROFILED_KERNELS}
        # Fast-path delegation: bind every public inner method that we do
        # not time as an instance attribute, shadowing our inherited
        # (reference numpy) implementations.
        for attr in dir(inner):
            if attr.startswith("_") or attr in PROFILED_KERNELS:
                continue
            value = getattr(inner, attr)
            if callable(value):
                object.__setattr__(self, attr, value)

    def _observe(self, op: str, t0: float, nbytes: int) -> None:
        self._seconds[op].observe(time.perf_counter() - t0)
        if nbytes:
            self._bytes[op].inc(nbytes)

    # -- timed kernels ----------------------------------------------------
    def matmul(self, a, b, out=None):
        t0 = time.perf_counter()
        y = self.inner.matmul(a, b, out=out)
        self._observe("matmul", t0, _nbytes(a, b, y))
        return y

    def einsum(self, spec, *operands):
        t0 = time.perf_counter()
        y = self.inner.einsum(spec, *operands)
        self._observe("einsum", t0, _nbytes(*operands, y))
        return y

    def linear(self, x, weight, bias=None, out=None):
        t0 = time.perf_counter()
        y = self.inner.linear(x, weight, bias, out=out)
        self._observe("linear", t0, _nbytes(x, weight, bias, y))
        return y

    def linear_act(self, x, weight, bias=None, activation=None, out=None):
        t0 = time.perf_counter()
        y = self.inner.linear_act(x, weight, bias, activation, out=out)
        self._observe("linear_act", t0, _nbytes(x, weight, bias, y))
        return y

    def linear_q8(self, x, weight_q8, scale, bias=None, activation=None,
                  out=None):
        t0 = time.perf_counter()
        y = self.inner.linear_q8(x, weight_q8, scale, bias, activation,
                                 out=out)
        self._observe("linear_q8", t0, _nbytes(x, weight_q8, scale, bias, y))
        return y

    def softmax(self, x, axis=-1, out=None):
        t0 = time.perf_counter()
        y = self.inner.softmax(x, axis=axis, out=out)
        self._observe("softmax", t0, _nbytes(x, y))
        return y

    def log_softmax(self, x, axis=-1, out=None):
        t0 = time.perf_counter()
        y = self.inner.log_softmax(x, axis=axis, out=out)
        self._observe("log_softmax", t0, _nbytes(x, y))
        return y

    def layer_norm(self, x, weight, bias, eps, out=None):
        t0 = time.perf_counter()
        y = self.inner.layer_norm(x, weight, bias, eps, out=out)
        self._observe("layer_norm", t0, _nbytes(x, weight, bias, y))
        return y

    def conv_im2col(self, x, kh, kw, stride, pad, out=None):
        t0 = time.perf_counter()
        cols, out_h, out_w = self.inner.conv_im2col(x, kh, kw, stride, pad,
                                                    out=out)
        self._observe("conv_im2col", t0, _nbytes(x, cols))
        return cols, out_h, out_w
