"""Observability: request tracing, metrics, profiling, and exporters.

The repo's fourth cross-cutting seam (after backend, transport, and
store).  Four pieces:

* :mod:`repro.obs.trace` — span API with cross-process trace-context
  propagation over the worker wire protocol; ~zero cost when disabled;
* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms
  with JSON-safe snapshots that :class:`repro.serving.ServingReport`
  embeds;
* :mod:`repro.obs.profile` — :class:`ProfilingBackend` timing the hot
  kernels of any wrapped ``ArrayBackend``;
* :mod:`repro.obs.export` — JSONL span logs and Chrome
  trace-event/Perfetto JSON (``repro trace --out trace.json``).

Typical use::

    from repro import obs

    obs.enable_tracing()
    ...serve traffic...
    obs.write_chrome_trace(obs.get_tracer().spans(), "trace.json")
    print(obs.get_registry().render_text())
"""

from .trace import (
    NOOP_SPAN,
    SpanRecord,
    TRACE_SCHEMA_VERSION,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    new_span_id,
    span,
    span_dict,
    tracing_enabled,
)
from .metrics import (
    Counter,
    DEFAULT_SECONDS_BOUNDS,
    Gauge,
    Histogram,
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    get_registry,
)
from .profile import PROFILED_KERNELS, ProfilingBackend
from .export import chrome_trace, jsonl_lines, write_chrome_trace, write_jsonl

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BOUNDS",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "NOOP_SPAN",
    "PROFILED_KERNELS",
    "ProfilingBackend",
    "SpanRecord",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "chrome_trace",
    "disable_tracing",
    "enable_tracing",
    "get_registry",
    "get_tracer",
    "jsonl_lines",
    "new_span_id",
    "span",
    "span_dict",
    "tracing_enabled",
    "write_chrome_trace",
    "write_jsonl",
]
