"""Span exporters: JSONL log and Chrome trace-event (Perfetto) JSON.

Two consumers, two shapes:

* :func:`write_jsonl` — one self-describing JSON object per line
  (``schema_version`` + wall-clock ``started_at`` on every line), the
  machine-ingestion format for offline analysis and the future gateway
  rollup;
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}`` with ``ph: "X"``
  complete events), which https://ui.perfetto.dev and
  ``chrome://tracing`` open directly.  Each span's originating process
  ("server", "w0", ...) becomes a named process track and each recording
  thread a named thread track, so one request's timeline reads
  enqueue → batch → worker forward → gather → fusion across tracks.
"""

from __future__ import annotations

import json
from typing import Iterable

from .trace import SpanRecord, TRACE_SCHEMA_VERSION


def _as_record(span) -> SpanRecord:
    if isinstance(span, SpanRecord):
        return span
    return SpanRecord.from_dict(span)


def jsonl_lines(spans: Iterable[SpanRecord | dict]) -> list[str]:
    """Render spans as JSONL lines (no trailing newlines).

    Every line carries ``schema_version`` and ``started_at`` (the span's
    wall-clock start, unix seconds) so lines remain interpretable when
    split from the file and correlatable across processes.
    """
    lines = []
    for span in spans:
        record = _as_record(span)
        data = record.to_dict()
        data["schema_version"] = TRACE_SCHEMA_VERSION
        data["started_at"] = record.ts
        # allow_nan=False: a NaN duration must fail here, not ship as the
        # bare `NaN` token that json.loads in stricter readers rejects.
        lines.append(json.dumps(data, sort_keys=True, default=str,
                                allow_nan=False))
    return lines


def write_jsonl(spans: Iterable[SpanRecord | dict], path: str) -> int:
    """Write spans to ``path`` as JSONL; returns the number of lines."""
    lines = jsonl_lines(spans)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line)
            fh.write("\n")
    return len(lines)


def chrome_trace(spans: Iterable[SpanRecord | dict]) -> dict:
    """Spans as a Chrome trace-event ``{"traceEvents": [...]}`` dict.

    Timestamps are microseconds relative to the earliest span (Perfetto
    renders absolute unix-epoch µs poorly), with the absolute anchor
    preserved in ``otherData.started_at``.
    """
    records = [_as_record(s) for s in spans]
    events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    t_zero = min((r.ts for r in records), default=0.0)

    for record in records:
        pid = pids.get(record.process)
        if pid is None:
            pid = pids[record.process] = len(pids) + 1
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0,
                           "args": {"name": record.process}})
        thread_key = (record.process, record.thread)
        tid = tids.get(thread_key)
        if tid is None:
            tid = tids[thread_key] = \
                sum(1 for k in tids if k[0] == record.process) + 1
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid,
                           "args": {"name": record.thread or "main"}})
        args = {"trace_id": record.trace_id, "span_id": record.span_id,
                "parent_id": record.parent_id}
        args.update(record.attrs)
        events.append({
            "ph": "X",
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "pid": pid,
            "tid": tid,
            "ts": round((record.ts - t_zero) * 1e6, 3),
            "dur": round(record.duration_s * 1e6, 3),
            "args": args,
        })

    return {"traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema_version": TRACE_SCHEMA_VERSION,
                          "started_at": t_zero,
                          "span_count": len(records)}}


def write_chrome_trace(spans: Iterable[SpanRecord | dict],
                       path: str) -> int:
    """Write a Perfetto-openable trace JSON; returns the span count."""
    trace = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, default=str, allow_nan=False)
    return trace["otherData"]["span_count"]
