"""Metrics registry: named counters, gauges, and histograms.

The always-on complement to tracing: cheap enough to leave recording in
every hot path (one dict lookup + one locked add), aggregated on demand
into JSON-safe snapshots that :class:`repro.serving.ServingReport` embeds
and a future gateway tier can roll up across replicas.

Naming conventions (see ``docs/architecture.md`` → Observability):

* dotted lowercase names, ``_total`` suffix for monotonic counters
  (``serving.requests_total``), plain nouns for gauges
  (``serving.queue_depth``), ``_seconds``/``_bytes`` unit suffixes for
  histograms and size counters;
* one instrument per ``(name, labels)`` pair — labels are sorted into the
  snapshot key as ``name{k=v,...}`` so the same fleet position always
  aggregates to the same series (e.g. ``edge.inflight{worker=w0}``).

Instruments are process-local.  Worker *spans* cross the process boundary
via the wire protocol (:mod:`repro.obs.trace`); worker-side metrics stay
in the worker process by design — the server-side cluster records the
authoritative per-worker dispatch/reply/bytes series for the fleet.
"""

from __future__ import annotations

import bisect
import threading

# Geometric bounds from 1 µs to ~17 s — wide enough for a codec decode
# and a cold model rebuild on the same scale.
DEFAULT_SECONDS_BOUNDS = tuple(1e-6 * 4 ** i for i in range(13))

METRICS_SCHEMA_VERSION = 1


class Counter:
    """Monotonic counter; ``inc`` only."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, in-flight requests)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bound bucketed distribution with count/sum/min/max.

    Buckets are cumulative-less (each holds its own count); quantiles are
    estimated by linear interpolation inside the winning bucket — coarse,
    but bounded-memory and mergeable across snapshots, which is what a
    fleet rollup needs.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_SECONDS_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted non-empty "
                             "sequence")
        self._lock = threading.Lock()
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # last = overflow
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float | None:
        """Bucket-interpolated quantile estimate (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return None
            rank = q * self._count
            seen = 0
            for index, bucket in enumerate(self._counts):
                if bucket == 0:
                    continue
                if seen + bucket >= rank:
                    lo = 0.0 if index == 0 else self.bounds[index - 1]
                    hi = self.bounds[index] if index < len(self.bounds) \
                        else (self._max if self._max is not None else lo)
                    frac = (rank - seen) / bucket
                    return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
                seen += bucket
            return self._max

    def snapshot(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
            counts = list(self._counts)
            lo, hi = self._min, self._max
        mean = total / count if count else None
        return {"type": "histogram", "count": count, "sum": total,
                "mean": mean, "min": lo, "max": hi,
                "p50": self.quantile(0.5), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
                "bounds": list(self.bounds), "buckets": counts}


def _series_key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create home for every instrument in a process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, labels: dict, factory):
        key = _series_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = self._instruments[key] = factory()
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        instrument = self._get(name, labels, Counter)
        if not isinstance(instrument, Counter):
            raise TypeError(f"{_series_key(name, labels)!r} is already a "
                            f"{type(instrument).__name__}")
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        instrument = self._get(name, labels, Gauge)
        if not isinstance(instrument, Gauge):
            raise TypeError(f"{_series_key(name, labels)!r} is already a "
                            f"{type(instrument).__name__}")
        return instrument

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_SECONDS_BOUNDS,
                  **labels) -> Histogram:
        instrument = self._get(name, labels, lambda: Histogram(bounds))
        if not isinstance(instrument, Histogram):
            raise TypeError(f"{_series_key(name, labels)!r} is already a "
                            f"{type(instrument).__name__}")
        return instrument

    # -- aggregation ----------------------------------------------------
    def snapshot(self, prefix: str = "") -> dict:
        """JSON-safe ``{series_key: instrument snapshot}``, sorted.

        ``prefix`` filters to one namespace (e.g. ``"serving."``) so a
        report can embed just its own slice.
        """
        with self._lock:
            items = sorted(self._instruments.items())
        return {key: instrument.snapshot() for key, instrument in items
                if key.startswith(prefix)}

    def render_text(self, prefix: str = "") -> str:
        """Human-readable dump (the CLI's ``--metrics`` output)."""
        lines = []
        for key, snap in self.snapshot(prefix).items():
            if snap["type"] == "histogram":
                if snap["count"] == 0:
                    continue
                lines.append(
                    f"{key}  count={snap['count']} mean={snap['mean']:.3g} "
                    f"p50={snap['p50']:.3g} p95={snap['p95']:.3g} "
                    f"max={snap['max']:.3g}")
            else:
                value = snap["value"]
                shown = int(value) if float(value).is_integer() else \
                    round(value, 6)
                lines.append(f"{key}  {shown}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every instrument (test isolation / fresh runs)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry all built-in hooks record into."""
    return _registry
