"""Scan driver: parse, run rules, compare against the baseline.

``run_check`` is the single entry point used by the CLI, the CI gate,
and the analyzer's own tests (which feed it fixture projects instead of
the real tree).
"""

from __future__ import annotations

from pathlib import Path

from .baseline import Comparison, compare, load_baseline
from .finding import Finding, sort_findings
from .project import Project
from .registry import make_rules

# The id given to files the parser itself rejects.
SYNTAX_RULE_ID = "SYNTAX001"

BASELINE_FILENAME = "analysis-baseline.json"


def default_root() -> Path:
    """The installed ``repro`` package directory (the canonical scan root)."""
    return Path(__file__).resolve().parent.parent


def default_baseline_path(root: Path | None = None) -> Path:
    """Locate the committed baseline next to the scanned tree.

    With the standard ``src/repro`` layout the baseline lives at the
    repository root (two levels above the package); fall back to the
    current directory so ad-hoc checkouts still resolve a stable path
    for ``--update-baseline`` to create.
    """
    root = root or default_root()
    candidates = [root.parent.parent / BASELINE_FILENAME,
                  Path.cwd() / BASELINE_FILENAME]
    for candidate in candidates:
        if candidate.exists():
            return candidate
    return candidates[0]


def run_check(root: str | Path | None = None,
              project: Project | None = None,
              rule_names: list[str] | None = None) -> list[Finding]:
    """Run the selected rules and return sorted findings.

    Unparseable files surface as ``SYNTAX001`` findings rather than
    aborting — a broken file must fail the check, not crash it.
    """
    if project is None:
        project = Project.from_path(root or default_root())
    findings = [Finding(SYNTAX_RULE_ID, "error", failure.path, failure.line,
                        f"file does not parse: {failure.message}",
                        hint="fix the syntax error; nothing else was "
                             "checked in this file")
                for failure in project.failures]
    for rule in make_rules(rule_names):
        findings.extend(rule.check_project(project))
    return sort_findings(findings)


def check_against_baseline(root: str | Path | None = None,
                           project: Project | None = None,
                           rule_names: list[str] | None = None,
                           baseline_path: str | Path | None = None,
                           ) -> Comparison:
    """``run_check`` + baseline comparison in one call."""
    findings = run_check(root=root, project=project, rule_names=rule_names)
    if baseline_path is None:
        scan_root = project.root if project is not None else None
        baseline_path = default_baseline_path(
            Path(root).resolve() if root is not None else scan_root)
    entries = load_baseline(baseline_path)
    return compare(findings, entries)
