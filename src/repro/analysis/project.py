"""Parsed-source model shared by every rule.

A :class:`Project` is the per-module AST forest plus a light symbol
table: module lookup by dotted name, class definitions across modules,
and the source text (for context in future rules).  Rules never touch
the filesystem — they see only this object, which is also how fixture
tests feed them synthetic modules (:meth:`Project.from_sources`).
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path


@dataclasses.dataclass
class ModuleInfo:
    name: str                          # dotted module name, e.g. "repro.edge.wire"
    path: str                          # posix path relative to the scan root
    source: str
    tree: ast.Module


@dataclasses.dataclass(frozen=True)
class ParseFailure:
    path: str
    line: int
    message: str


class Project:
    """All modules under one scan root, parsed once."""

    def __init__(self, modules: list[ModuleInfo],
                 failures: list[ParseFailure] | None = None,
                 root: Path | None = None):
        self.modules = modules
        self.failures = failures or []
        self.root = root
        self._by_name = {m.name: m for m in modules}

    def module(self, name: str) -> ModuleInfo | None:
        return self._by_name.get(name)

    def iter_classes(self):
        """Yield ``(module, ast.ClassDef)`` for every class in the project."""
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield module, node

    @classmethod
    def from_path(cls, root: str | Path) -> "Project":
        """Parse every ``*.py`` under ``root`` (a package directory).

        Module names are rooted at the directory's own name, so scanning
        ``src/repro`` yields ``repro``, ``repro.cli``, ``repro.edge.wire``
        and so on.  Files that fail to parse become
        :class:`ParseFailure` entries instead of aborting the scan.
        """
        root = Path(root).resolve()
        if not root.is_dir():
            raise NotADirectoryError(f"scan root {root} is not a directory")
        modules: list[ModuleInfo] = []
        failures: list[ParseFailure] = []
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            if "__pycache__" in rel.parts:
                continue
            rel_posix = rel.as_posix()
            parts = list(rel.with_suffix("").parts)
            if parts[-1] == "__init__":
                parts.pop()
            name = ".".join([root.name, *parts])
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=rel_posix)
            except SyntaxError as exc:
                failures.append(ParseFailure(rel_posix, exc.lineno or 1,
                                             exc.msg or "syntax error"))
                continue
            modules.append(ModuleInfo(name, rel_posix, source, tree))
        return cls(modules, failures, root=root)

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Project":
        """In-memory project for fixture tests: ``{dotted_name: source}``."""
        modules: list[ModuleInfo] = []
        failures: list[ParseFailure] = []
        for name, source in sources.items():
            path = name.replace(".", "/") + ".py"
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                failures.append(ParseFailure(path, exc.lineno or 1,
                                             exc.msg or "syntax error"))
                continue
            modules.append(ModuleInfo(name, path, source, tree))
        return cls(modules, failures, root=None)
