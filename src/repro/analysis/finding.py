"""The unit of static-analysis output: one :class:`Finding`.

A finding's **fingerprint** deliberately excludes the line number: the
baseline must keep matching an accepted finding when unrelated edits
shift it a few lines, and must stop matching (surface as *new*) when the
finding itself changes — rule, file, or message.  Rules therefore keep
messages stable and line-free (method/attribute names, not positions).
"""

from __future__ import annotations

import dataclasses
import hashlib

SEVERITIES = ("error", "warning")


@dataclasses.dataclass(frozen=True)
class Finding:
    rule_id: str                       # e.g. "LOCK001"
    severity: str                      # "error" | "warning"
    file: str                          # posix path relative to the scan root
    line: int                          # 1-based; 0 for project-level findings
    message: str
    hint: str = ""

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}; "
                             f"choose from {SEVERITIES}")

    @property
    def fingerprint(self) -> str:
        raw = f"{self.rule_id}|{self.file}|{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {"rule_id": self.rule_id,
                "severity": self.severity,
                "file": self.file,
                "line": self.line,
                "message": self.message,
                "hint": self.hint,
                "fingerprint": self.fingerprint}

    def render(self, root: str | None = None) -> str:
        prefix = f"{root}/{self.file}" if root else self.file
        text = (f"{prefix}:{self.line}: {self.rule_id} "
                f"{self.severity}: {self.message}")
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings,
                  key=lambda f: (f.file, f.line, f.rule_id, f.message))
