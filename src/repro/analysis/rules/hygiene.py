"""General hygiene: serialization safety, exception discipline,
thread lifecycle, and repository cleanliness.

* **HYG001** — ``pickle`` (arbitrary code execution on load; all repro
  artifacts are npz/JSON by design);
* **HYG002** — ``eval``/``exec`` of strings;
* **HYG003** — bare ``except:`` (swallows ``KeyboardInterrupt`` and
  ``SystemExit``; the serving loops must stay interruptible);
* **HYG004** — a ``Thread`` created without ``daemon=True`` and with no
  ``.join`` call in its enclosing scope (function, then class, then
  module) — such a thread can outlive shutdown and hang interpreter
  exit;
* **HYG005** — ``json.dump``/``json.dumps`` without ``allow_nan=False``
  (NaN/Infinity produce non-standard JSON that other readers reject;
  digests and manifests must be canonical);
* **HYG006** — tracked ``__pycache__``/``.pyc`` files in git
  (project-level; skipped when the scan root is not inside a work tree).
"""

from __future__ import annotations

import ast
import subprocess

from ..finding import Finding
from ..project import ModuleInfo, Project
from ..registry import Rule, register_rule


def _has_keyword(node: ast.Call, name: str, value: object) -> bool:
    for keyword in node.keywords:
        if keyword.arg == name \
                and isinstance(keyword.value, ast.Constant) \
                and keyword.value.value is value:
            return True
    return False


def _is_thread_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Thread"
    if isinstance(func, ast.Attribute):
        return func.attr == "Thread"
    return False


def _has_join(scope: ast.AST) -> bool:
    """Any ``x.join(...)`` on a non-string receiver within ``scope``."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "join" \
                and not isinstance(node.func.value, ast.Constant):
            return True
    return False


@register_rule
class HygieneRule(Rule):
    name = "hygiene"
    description = ("no pickle/eval/exec, no bare except, threads are "
                   "daemonic or joined, json writes reject NaN, no "
                   "tracked bytecode")
    finding_ids = ("HYG001", "HYG002", "HYG003", "HYG004", "HYG005",
                   "HYG006")

    def check_project(self, project: Project) -> list[Finding]:
        findings = super().check_project(project)
        findings.extend(self._check_tracked_bytecode(project))
        return findings

    def check_module(self, module: ModuleInfo,
                     project: Project) -> list[Finding]:
        findings: list[Finding] = []
        self._scan(module, module.tree, [module.tree], findings)
        return findings

    # ------------------------------------------------------------------
    def _scan(self, module: ModuleInfo, node: ast.AST,
              scopes: list[ast.AST], findings: list[Finding]) -> None:
        """Recurse tracking the enclosing scope chain for HYG004."""
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            names = [a.name for a in node.names]
            source = getattr(node, "module", None)
            if "pickle" in names or source == "pickle":
                findings.append(Finding(
                    "HYG001", "error", module.path, node.lineno,
                    "pickle imported; artifacts must stay npz/JSON",
                    hint="use repro.nn.serialization / the artifact store "
                         "instead of pickle"))
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in ("eval", "exec"):
                findings.append(Finding(
                    "HYG002", "error", module.path, node.lineno,
                    f"call to {node.func.id}()",
                    hint="parse with ast / json instead of evaluating "
                         "strings"))
            elif _is_thread_call(node) \
                    and not _has_keyword(node, "daemon", True):
                if not any(_has_join(scope) for scope in reversed(scopes)):
                    findings.append(Finding(
                        "HYG004", "error", module.path, node.lineno,
                        "non-daemon Thread is never joined in its "
                        "enclosing scope",
                        hint="pass daemon=True or join the thread on "
                             "shutdown"))
            elif isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "json" \
                    and node.func.attr in ("dump", "dumps") \
                    and not _has_keyword(node, "allow_nan", False):
                findings.append(Finding(
                    "HYG005", "error", module.path, node.lineno,
                    f"json.{node.func.attr} without allow_nan=False",
                    hint="NaN/Infinity are not JSON; pass allow_nan=False "
                         "so bad floats fail loudly at write time"))
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                "HYG003", "error", module.path, node.lineno,
                "bare except: swallows KeyboardInterrupt/SystemExit",
                hint="catch Exception (or something narrower)"))

        opens_scope = isinstance(node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef,
                                        ast.ClassDef))
        if opens_scope:
            scopes = scopes + [node]
        for child in ast.iter_child_nodes(node):
            self._scan(module, child, scopes, findings)

    # ------------------------------------------------------------------
    def _check_tracked_bytecode(self, project: Project) -> list[Finding]:
        if project.root is None:
            return []
        try:
            proc = subprocess.run(
                ["git", "ls-files", "--", ":/"],
                cwd=project.root, capture_output=True, text=True,
                timeout=10, check=False)
        except (OSError, subprocess.SubprocessError):
            return []
        if proc.returncode != 0:
            return []                  # not a work tree; nothing to check
        findings = []
        for line in proc.stdout.splitlines():
            if "__pycache__" in line or line.endswith(".pyc"):
                findings.append(Finding(
                    "HYG006", "error", line, 1,
                    "compiled bytecode is tracked by git",
                    hint="git rm --cached the file and cover it in "
                         ".gitignore"))
        return findings
