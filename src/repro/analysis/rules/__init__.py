"""Built-in analysis rules; importing this package registers them all."""

from . import (  # noqa: F401  (import for registration side effect)
    backend_protocol,
    digest,
    hygiene,
    locks,
    naming,
    wire_protocol,
)
