"""Observability naming taxonomy.

PR 7 fixed the metric/span grammar: dot.case names with at least two
segments for metrics (``subsystem.thing``), counters ending ``_total``,
histograms ending ``_seconds`` or ``_bytes`` so units are always in the
name.  Spans may be single-segment (the root ``request`` span).

* **OBS001** — a literal metric name that violates the grammar;
* **OBS002** — a literal span name that violates the grammar;
* **OBS003** — a metric registered under a non-literal name the checker
  cannot audit (warning).  f-strings are audited structurally by
  substituting a placeholder for each interpolation (``f"kernel.{op}_
  seconds"`` checks as ``kernel.x_seconds``); span helpers that forward
  a caller-supplied name are skipped, since the literal is checked at
  the originating call site.
"""

from __future__ import annotations

import ast
import re

from ..finding import Finding
from ..project import ModuleInfo, Project
from ..registry import Rule, register_rule

SEGMENT = r"[a-z][a-z0-9_]*"
METRIC_RE = re.compile(rf"^{SEGMENT}(\.{SEGMENT})+$")   # >= 2 segments
SPAN_RE = re.compile(rf"^{SEGMENT}(\.{SEGMENT})*$")     # 1 segment ok

METRIC_METHODS = {
    "counter": ("_total",),
    "histogram": ("_seconds", "_bytes"),
    "gauge": (),
}
SPAN_CALLEES = frozenset({"emit", "span", "span_dict"})


def _literal_name(node: ast.expr) -> str | None:
    """A literal or f-string first argument, with interpolations
    replaced by ``x`` so the static shape can still be checked."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:                      # FormattedValue placeholder
                parts.append("x")
        return "".join(parts)
    return None


def _callee_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


@register_rule
class ObsNamingRule(Rule):
    name = "obs-naming"
    description = ("metric names must be dot.case with unit suffixes "
                   "(_total/_seconds/_bytes); span names must be dot.case")
    finding_ids = ("OBS001", "OBS002", "OBS003")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            callee = _callee_name(node)
            if callee in METRIC_METHODS:
                findings.extend(self._check_metric(module, node, callee))
            elif callee in SPAN_CALLEES:
                name = _literal_name(node.args[0])
                if name is not None and not SPAN_RE.match(name):
                    findings.append(Finding(
                        "OBS002", "error", module.path, node.lineno,
                        f"span name {name!r} is not dot.case",
                        hint="use lowercase dot.separated segments, e.g. "
                             "'request.queue'"))
        return findings

    def _check_metric(self, module: ModuleInfo, node: ast.Call,
                      kind: str) -> list[Finding]:
        name = _literal_name(node.args[0])
        if name is None:
            return [Finding(
                "OBS003", "warning", module.path, node.lineno,
                f"{kind} registered under a non-literal name; the taxonomy "
                f"cannot be audited statically",
                hint="pass a string literal (or f-string with literal "
                     "prefix/suffix) to the registry")]
        if not METRIC_RE.match(name):
            return [Finding(
                "OBS001", "error", module.path, node.lineno,
                f"{kind} name {name!r} is not dot.case with at least two "
                f"segments (subsystem.thing)",
                hint="name metrics '<subsystem>.<what>[_unit]', e.g. "
                     "'serving.requests_total'")]
        suffixes = METRIC_METHODS[kind]
        if suffixes and not name.endswith(suffixes):
            return [Finding(
                "OBS001", "error", module.path, node.lineno,
                f"{kind} name {name!r} must end with "
                + " or ".join(f"'{s}'" for s in suffixes),
                hint="encode the unit in the name so dashboards never "
                     "guess; rename or switch instrument kind")]
        return []
