"""Wire-protocol shape conformance.

The parent↔worker protocol lives in :mod:`repro.edge.wire`; every other
module must build messages through its typed constructors and read them
through its accessors, so arity changes happen in exactly one file.

* **WIRE001** — a raw wire-tuple literal (first element is a known
  command tag) outside ``repro.edge.wire``;
* **WIRE002** — string-matching dispatch (``message[0] == "infer"`` or
  ``m[0] in ("ready", ...)``) instead of ``wire.command(...)`` against
  the named constants;
* **WIRE003** — drift between this rule's embedded arity table and the
  ``ARITY`` declared in ``wire.py`` (the checker and the protocol must
  be updated together), or a constructor whose tuple length falls
  outside the declared bounds.
"""

from __future__ import annotations

import ast

from ..finding import Finding
from ..project import ModuleInfo, Project
from ..registry import Rule, register_rule

WIRE_MODULE = "repro.edge.wire"

# Mirrors repro.edge.wire.ARITY on purpose: WIRE003 cross-checks the two
# copies, so protocol evolution forces a conscious analyzer update.
EXPECTED_ARITY: dict[str, tuple[int, int]] = {
    "infer": (3, 4),
    "stop": (1, 1),
    "ready": (2, 2),
    "failed": (3, 3),
    "features": (4, 4),
    "error": (3, 3),
    "stopped": (2, 2),
}

COMMAND_TAGS = frozenset(EXPECTED_ARITY)


def _is_command_literal(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str) \
            and node.value in COMMAND_TAGS:
        return node.value
    return None


def _is_index_zero_subscript(node: ast.expr) -> bool:
    """``something[0]`` — the idiom for peeking at a message's command."""
    return isinstance(node, ast.Subscript) \
        and isinstance(node.slice, ast.Constant) \
        and node.slice.value == 0


@register_rule
class WireProtocolRule(Rule):
    name = "wire-protocol"
    description = ("wire tuples must be built and inspected only through "
                   "repro.edge.wire helpers; arity drift is flagged")
    finding_ids = ("WIRE001", "WIRE002", "WIRE003")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> list[Finding]:
        if module.name == WIRE_MODULE:
            return self._check_wire_module(module)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Tuple) and node.elts:
                tag = _is_command_literal(node.elts[0])
                # Arity filter: a real wire tuple has the declared shape;
                # unrelated tuples that merely start with a word like
                # "error" (severity lists etc.) do not.
                if tag is not None and EXPECTED_ARITY[tag][0] \
                        <= len(node.elts) <= EXPECTED_ARITY[tag][1]:
                    findings.append(Finding(
                        "WIRE001", "error", module.path, node.lineno,
                        f"raw wire tuple for command {tag!r} built outside "
                        f"repro.edge.wire",
                        hint=f"use wire.{tag}_message(...) so the message "
                             f"shape has a single owner"))
            elif isinstance(node, ast.Compare) \
                    and _is_index_zero_subscript(node.left):
                for comparator in node.comparators:
                    literals = comparator.elts \
                        if isinstance(comparator, ast.Tuple) else [comparator]
                    for lit in literals:
                        tag = _is_command_literal(lit)
                        if tag is not None:
                            findings.append(Finding(
                                "WIRE002", "error", module.path, node.lineno,
                                f"message dispatched by comparing "
                                f"element [0] against the string {tag!r}",
                                hint=f"compare wire.command(message) against "
                                     f"wire.{tag.upper()}"))
                            break
        return findings

    # ------------------------------------------------------------------
    def _check_wire_module(self, module: ModuleInfo) -> list[Finding]:
        """Cross-check wire.ARITY and the constructors against our copy."""
        findings: list[Finding] = []
        declared = self._declared_arity(module)
        if declared is not None and declared != EXPECTED_ARITY:
            changed = sorted(set(declared.items())
                             ^ set(EXPECTED_ARITY.items()))
            findings.append(Finding(
                "WIRE003", "error", module.path, 1,
                f"wire.ARITY drifted from the analyzer's copy "
                f"(differs on: {', '.join(tag for tag, _ in changed)})",
                hint="update EXPECTED_ARITY in "
                     "repro/analysis/rules/wire_protocol.py together with "
                     "the protocol change"))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef) \
                    or not node.name.endswith("_message"):
                continue
            for ret in ast.walk(node):
                if not (isinstance(ret, ast.Return)
                        and isinstance(ret.value, ast.Tuple)
                        and ret.value.elts):
                    continue
                first = ret.value.elts[0]
                tag = first.id.lower() if isinstance(first, ast.Name) \
                    else _is_command_literal(first)
                bounds = EXPECTED_ARITY.get(tag or "")
                if bounds is None:
                    continue
                lo, hi = bounds
                if not lo <= len(ret.value.elts) <= hi:
                    findings.append(Finding(
                        "WIRE003", "error", module.path, ret.lineno,
                        f"constructor '{node.name}' returns a "
                        f"{len(ret.value.elts)}-tuple for {tag!r}; the "
                        f"protocol declares {lo}..{hi}",
                        hint="update ARITY and EXPECTED_ARITY together "
                             "with the constructor"))
        return findings

    def _declared_arity(self, module: ModuleInfo):
        for node in module.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            if not any(isinstance(t, ast.Name) and t.id == "ARITY"
                       for t in targets):
                continue
            value = node.value
            if not isinstance(value, ast.Dict):
                return None
            names = self._command_constants(module)
            out: dict[str, tuple[int, int]] = {}
            for key, bounds in zip(value.keys, value.values):
                tag = None
                if isinstance(key, ast.Name):
                    tag = names.get(key.id)
                elif isinstance(key, ast.Constant):
                    tag = key.value
                if tag is None or not isinstance(bounds, ast.Tuple) \
                        or len(bounds.elts) != 2 \
                        or not all(isinstance(e, ast.Constant)
                                   for e in bounds.elts):
                    return None
                out[tag] = (bounds.elts[0].value, bounds.elts[1].value)
            return out
        return None

    def _command_constants(self, module: ModuleInfo) -> dict[str, str]:
        """``INFER = "infer"``-style module constants."""
        out: dict[str, str] = {}
        for node in module.tree.body:
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Constant) \
                    and isinstance(node.value.value, str):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = node.value.value
        return out
