"""Lock-discipline race detector.

For every class that owns a ``threading.Lock``/``RLock``/``Condition``
instance attribute, infer the **guarded attribute set** — the ``self``
attributes the class mutates inside ``with self.<lock>:`` blocks — and
flag any read or write of a guarded attribute outside that lock.

The inference is deliberately class-local and conservative:

* only instance locks assigned as ``self.X = threading.Lock()`` (or
  ``RLock``/``Condition``, bare or ``threading.``-qualified) count;
* guardedness comes from *mutations* under the lock (assignments,
  augmented assignments, ``del``, subscript stores, and calls to
  mutating container methods such as ``append``/``pop``/``update``);
  an attribute only ever read under a lock is not inferred as guarded;
* ``__init__`` is exempt from the violation pass (no concurrent caller
  can hold a reference yet), but its ``with`` blocks still contribute
  to guard inference;
* nested functions and lambdas defined inside a method are scanned with
  an *empty* held-lock set: a closure (worker target, timer body,
  weakref callback) may run on another thread long after the enclosing
  ``with`` block exited, so it cannot inherit the method's locks.

Benign double-checked-locking reads (check outside, re-check inside)
are true findings by this definition; they are accepted as documented
baseline entries rather than special-cased away, so any *new* one still
needs a human decision.
"""

from __future__ import annotations

import ast

from ..finding import Finding
from ..project import ModuleInfo, Project
from ..registry import Rule, register_rule

LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

# Container methods that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "insert",
    "add", "update", "setdefault",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
})


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"``, else None."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _base_self_attr(node: ast.AST) -> tuple[str, ast.Attribute] | None:
    """Strip subscripts: ``self.X[k][j]`` -> ``("X", <self.X node>)``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    attr = _self_attr(node)
    if attr is None:
        return None
    return attr, node  # type: ignore[return-value]


def _is_lock_factory(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in LOCK_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in LOCK_FACTORIES
    return False


class _ClassAnalysis:
    def __init__(self, module: ModuleInfo, classdef: ast.ClassDef):
        self.module = module
        self.classdef = classdef
        self.methods = [n for n in classdef.body
                        if isinstance(n, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))]
        self.locks: set[str] = set()
        self.guarded: dict[str, set[str]] = {}   # attr -> guarding locks
        self.findings: list[Finding] = []
        # Attribute nodes already reported (or counted) as write bases,
        # so the read pass does not double-report them.
        self._write_bases: set[int] = set()

    # -- pass 0: which attributes are locks --------------------------------
    def find_locks(self) -> None:
        for method in self.methods:
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) \
                        and _is_lock_factory(node.value):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            self.locks.add(attr)

    # -- shared traversal ---------------------------------------------------
    def _held_after_with(self, node: ast.With | ast.AsyncWith,
                         held: frozenset[str]) -> frozenset[str]:
        acquired = set()
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr in self.locks:
                acquired.add(attr)
        return held | acquired

    def _mutations(self, node: ast.AST) -> list[tuple[str, ast.Attribute]]:
        """Attribute bases this single statement/expression mutates."""
        out: list[tuple[str, ast.Attribute]] = []
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                base = _base_self_attr(target)
                if base is not None:
                    out.append(base)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = _base_self_attr(target)
                if base is not None:
                    out.append(base)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATING_METHODS:
            base = _base_self_attr(node.func.value)
            if base is not None:
                out.append(base)
        return out

    def _visit(self, node: ast.AST, held: frozenset[str], on_node) -> None:
        """Recurse tracking held locks; closures reset ``held`` to empty."""
        on_node(node, held)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._visit(item.context_expr, held, on_node)
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, held, on_node)
            inner = self._held_after_with(node, held)
            for stmt in node.body:
                self._visit(stmt, inner, on_node)
            return
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "wait_for" \
                and _self_attr(node.func.value) in self.locks:
            # Condition.wait_for invokes its predicate synchronously with
            # the condition (re)acquired, so a predicate lambda reads
            # guarded state *under* the lock — unlike other closures.
            lock = _self_attr(node.func.value)
            self._visit(node.func, held, on_node)
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    on_node(arg, held | {lock})
                    for child in ast.iter_child_nodes(arg):
                        self._visit(child, held | {lock}, on_node)
                else:
                    self._visit(arg, held, on_node)
            for keyword in node.keywords:
                self._visit(keyword, held, on_node)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # A nested def/lambda (worker target, timer body, weakref
            # callback) may run later on any thread: it cannot inherit
            # the enclosing method's held locks.
            for child in ast.iter_child_nodes(node):
                self._visit(child, frozenset(), on_node)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, held, on_node)

    # -- pass 1: infer guarded attributes -----------------------------------
    def infer_guarded(self) -> None:
        def on_node(node: ast.AST, held: frozenset[str]) -> None:
            if not held:
                return
            for attr, _ in self._mutations(node):
                if attr in self.locks:
                    continue           # the lock object itself
                self.guarded.setdefault(attr, set()).update(held)

        for method in self.methods:
            for stmt in method.body:
                self._visit(stmt, frozenset(), on_node)

    # -- pass 2: violations --------------------------------------------------
    def _flag(self, kind: str, attr: str, node: ast.AST,
              method_name: str) -> None:
        locks = "/".join(sorted(self.guarded[attr]))
        rule_id = "LOCK001" if kind == "written" else "LOCK002"
        severity = "error" if kind == "written" else "warning"
        self.findings.append(Finding(
            rule_id, severity, self.module.path,
            getattr(node, "lineno", self.classdef.lineno),
            f"{self.classdef.name}.{attr} is guarded by '{locks}' but "
            f"{kind} outside it in method '{method_name}'",
            hint=f"wrap the access in 'with self.{locks.split('/')[0]}:'"))

    def find_violations(self) -> None:
        for method in self.methods:
            if method.name == "__init__":
                continue               # no concurrent caller exists yet

            def on_node(node: ast.AST, held: frozenset[str],
                        method=method) -> None:
                for attr, base in self._mutations(node):
                    if attr not in self.guarded:
                        continue
                    self._write_bases.add(id(base))
                    if not (held & self.guarded[attr]):
                        self._flag("written", attr, node, method.name)
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.ctx, ast.Load) \
                        and id(node) not in self._write_bases:
                    attr = _self_attr(node)
                    if attr in self.guarded \
                            and not (held & self.guarded[attr]):
                        self._flag("read", attr, node, method.name)

            # Mutation bases are registered before their Attribute nodes
            # are visited (node first, children after), so the read pass
            # skips them.
            for stmt in method.body:
                self._visit(stmt, frozenset(), on_node)

    def run(self) -> list[Finding]:
        self.find_locks()
        if not self.locks:
            return []
        self.infer_guarded()
        if not self.guarded:
            return []
        self.find_violations()
        return self.findings


@register_rule
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = ("infer lock-guarded attribute sets per class and flag "
                   "reads/writes of guarded attributes outside the lock")
    finding_ids = ("LOCK001", "LOCK002")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(_ClassAnalysis(module, node).run())
        return findings
