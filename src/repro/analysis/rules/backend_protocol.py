"""Backend-protocol conformance.

``ArrayBackend`` (:mod:`repro.nn.backend`) is the kernel seam every
compute path crosses; the base class is a concrete numpy reference, so
subclasses *inherit* the full kernel set and conformance means:

* **BACKEND001** — everything registered in the backend registry
  (``_REGISTRY`` literal or ``register_backend(...)`` calls) resolves,
  directly or through a factory function, to an ``ArrayBackend``
  subclass;
* **BACKEND002** — a subclass overriding a base kernel keeps the base
  signature (parameter names, order, ``*args``/``**kwargs``, and default
  values) — a drifted override would silently shadow call sites that
  pass keywords positionally;
* **BACKEND003** — dynamic method binding (``object.__setattr__`` loops
  that shadow kernels per instance) defeats this static check, so it is
  flagged everywhere except the explicitly allowed
  ``ProfilingBackend``, whose delegation pattern is documented.
"""

from __future__ import annotations

import ast

from ..finding import Finding
from ..project import ModuleInfo, Project
from ..registry import Rule, register_rule

BASE_CLASS = "ArrayBackend"
REGISTRY_NAME = "_REGISTRY"
REGISTER_FUNC = "register_backend"

# Classes allowed to bind kernel implementations dynamically in __init__.
DYNAMIC_BINDING_ALLOWED = frozenset({"ProfilingBackend"})


def _signature(fn: ast.FunctionDef) -> tuple:
    """A comparable, annotation-free summary of a def's signature."""
    args = fn.args
    names = tuple(a.arg for a in args.posonlyargs + args.args)
    defaults = tuple(ast.dump(d) for d in args.defaults)
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    kw_defaults = tuple(None if d is None else ast.dump(d)
                        for d in args.kw_defaults)
    return (names, defaults,
            args.vararg.arg if args.vararg else None,
            kwonly, kw_defaults,
            args.kwarg.arg if args.kwarg else None)


def _describe(fn: ast.FunctionDef) -> str:
    args = fn.args
    parts = [a.arg for a in args.posonlyargs + args.args]
    for i, default in enumerate(args.defaults):
        parts[len(parts) - len(args.defaults) + i] += \
            f"={ast.unparse(default)}"
    if args.vararg:
        parts.append(f"*{args.vararg.arg}")
    elif args.kwonlyargs:
        parts.append("*")
    for a, d in zip(args.kwonlyargs, args.kw_defaults):
        parts.append(a.arg if d is None else f"{a.arg}={ast.unparse(d)}")
    if args.kwarg:
        parts.append(f"**{args.kwarg.arg}")
    return "(" + ", ".join(parts) + ")"


def _base_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


@register_rule
class BackendProtocolRule(Rule):
    name = "backend-protocol"
    description = ("registered backends must be ArrayBackend subclasses; "
                   "kernel overrides must keep the base signature")
    finding_ids = ("BACKEND001", "BACKEND002", "BACKEND003")

    def check_project(self, project: Project) -> list[Finding]:
        classes: dict[str, tuple[ModuleInfo, ast.ClassDef]] = {}
        functions: dict[str, tuple[ModuleInfo, ast.FunctionDef]] = {}
        for module in project.modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, (module, node))
                elif isinstance(node, ast.FunctionDef):
                    functions.setdefault(node.name, (module, node))

        base = classes.get(BASE_CLASS)
        if base is None:
            return []                  # fixture project without the seam
        _, base_def = base
        surface = {n.name: n for n in base_def.body
                   if isinstance(n, ast.FunctionDef)
                   and not n.name.startswith("_")}

        descendants = self._descendants(classes)
        findings: list[Finding] = []
        for cls_name in sorted(descendants):
            module, classdef = classes[cls_name]
            findings.extend(self._check_subclass(module, classdef, surface))
        findings.extend(self._check_registrations(project, classes,
                                                  functions, descendants))
        return findings

    # ------------------------------------------------------------------
    def _descendants(self, classes) -> set[str]:
        """Transitive subclasses of ``ArrayBackend`` by (local) base name."""
        children: dict[str, set[str]] = {}
        for name, (_, classdef) in classes.items():
            for base in classdef.bases:
                base_name = _base_name(base)
                if base_name:
                    children.setdefault(base_name, set()).add(name)
        out: set[str] = set()
        frontier = [BASE_CLASS]
        while frontier:
            current = frontier.pop()
            for child in children.get(current, ()):
                if child not in out:
                    out.add(child)
                    frontier.append(child)
        return out

    def _check_subclass(self, module: ModuleInfo, classdef: ast.ClassDef,
                        surface: dict[str, ast.FunctionDef]) -> list[Finding]:
        findings: list[Finding] = []
        for node in classdef.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            base_fn = surface.get(node.name)
            if base_fn is not None \
                    and _signature(node) != _signature(base_fn):
                findings.append(Finding(
                    "BACKEND002", "error", module.path, node.lineno,
                    f"{classdef.name}.{node.name}{_describe(node)} does not "
                    f"match ArrayBackend.{node.name}{_describe(base_fn)}",
                    hint="keep kernel override signatures identical to the "
                         "base so keyword and positional call sites stay "
                         "interchangeable"))
            if node.name == "__init__" \
                    and classdef.name not in DYNAMIC_BINDING_ALLOWED:
                for call in ast.walk(node):
                    if isinstance(call, ast.Call) \
                            and isinstance(call.func, ast.Attribute) \
                            and call.func.attr == "__setattr__":
                        findings.append(Finding(
                            "BACKEND003", "error", module.path, call.lineno,
                            f"{classdef.name} binds methods dynamically via "
                            f"__setattr__ in __init__; only ProfilingBackend "
                            f"is allowed to shadow kernels per instance",
                            hint="override kernels as plain defs so the "
                                 "conformance check can see them"))
        return findings

    def _check_registrations(self, project, classes, functions,
                             descendants: set[str]) -> list[Finding]:
        findings: list[Finding] = []
        valid = descendants | {BASE_CLASS}

        def target_class(expr: ast.expr) -> str | None:
            """The class a registry value resolves to, if decidable."""
            if isinstance(expr, ast.Name):
                if expr.id in classes:
                    return expr.id
                fn = functions.get(expr.id)
                if fn is not None:     # factory: inspect its returns
                    for ret in ast.walk(fn[1]):
                        if isinstance(ret, ast.Return) \
                                and isinstance(ret.value, ast.Call) \
                                and isinstance(ret.value.func, ast.Name) \
                                and ret.value.func.id in classes:
                            return ret.value.func.id
            return None

        for module in project.modules:
            for node in ast.walk(module.tree):
                values: list[ast.expr] = []
                if isinstance(node, ast.Assign) \
                        and any(isinstance(t, ast.Name)
                                and t.id == REGISTRY_NAME
                                for t in node.targets) \
                        and isinstance(node.value, ast.Dict):
                    values = list(node.value.values)
                elif isinstance(node, ast.Call) \
                        and _base_name(node.func) == REGISTER_FUNC \
                        and len(node.args) >= 2:
                    values = [node.args[1]]
                for value in values:
                    resolved = target_class(value)
                    if resolved is not None and resolved not in valid:
                        findings.append(Finding(
                            "BACKEND001", "error", module.path, value.lineno,
                            f"registered backend resolves to {resolved!r}, "
                            f"which is not an ArrayBackend subclass",
                            hint="derive the backend from ArrayBackend (or "
                                 "a subclass) so it inherits the full "
                                 "kernel set"))
        return findings
