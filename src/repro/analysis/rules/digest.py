"""Digest-schema stability for artifact rebuild recipes.

Warm boot (:mod:`repro.store`) keys artifacts by the SHA-256 of a
recipe's canonical JSON; a recipe value that is not statically
canonical-JSON-safe can make digests flap (float repr drift, numpy
scalars, object ids), and a digest-*excluded* knob leaking into a
recipe silently orphans every existing artifact.  This rule checks the
recipe constructors — any function whose name ends in ``_recipe`` —
plus every call site:

* **DIGEST001** — a dict literal built inside a recipe constructor must
  use string-literal keys and values built from JSON-safe literals or
  explicit coercions (``str()``/``int()``/``float()``/``bool()``/
  ``dict()``/``list()``/``sorted()``, conditionals and comprehensions
  thereof).  A bare variable is not verifiable and must be coerced.
* **DIGEST002** — digest-excluded knobs (codec, mapping, scoring — the
  things a replan may change without invalidating artifacts) must not
  appear as recipe keys or recipe-constructor keyword arguments.
"""

from __future__ import annotations

import ast

from ..finding import Finding
from ..project import ModuleInfo, Project
from ..registry import Rule, register_rule

RECIPE_SUFFIX = "_recipe"

# Knobs deliberately outside the digest: changing them must keep every
# existing artifact addressable (see DeploymentPlan.submodel_recipe).
EXCLUDED_KEYS = frozenset({"codec", "mapping", "scoring"})

SAFE_COERCIONS = frozenset({"str", "int", "float", "bool", "dict", "list",
                            "sorted", "tuple"})


def _is_safe_value(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return node.value is None or isinstance(node.value,
                                                (bool, int, float, str))
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) \
            and node.func.id in SAFE_COERCIONS
    if isinstance(node, ast.IfExp):
        return _is_safe_value(node.body) and _is_safe_value(node.orelse)
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return all(_is_safe_value(e) for e in node.elts)
    if isinstance(node, ast.Dict):
        return all(k is not None and _is_safe_value(k) for k in node.keys) \
            and all(_is_safe_value(v) for v in node.values)
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        return _is_safe_value(node.elt)
    if isinstance(node, ast.DictComp):
        return _is_safe_value(node.key) and _is_safe_value(node.value)
    return False


@register_rule
class DigestSchemaRule(Rule):
    name = "digest-schema"
    description = ("recipe constructors must build canonical-JSON-safe "
                   "dicts and keep digest-excluded keys out")
    finding_ids = ("DIGEST001", "DIGEST002")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name.endswith(RECIPE_SUFFIX):
                findings.extend(self._check_constructor(module, node))
            if isinstance(node, ast.Call):
                callee = node.func
                callee_name = callee.attr if isinstance(callee, ast.Attribute) \
                    else callee.id if isinstance(callee, ast.Name) else None
                if callee_name and callee_name.endswith(RECIPE_SUFFIX):
                    for keyword in node.keywords:
                        if keyword.arg in EXCLUDED_KEYS:
                            findings.append(Finding(
                                "DIGEST002", "error", module.path,
                                node.lineno,
                                f"digest-excluded key {keyword.arg!r} passed "
                                f"to recipe constructor '{callee_name}'",
                                hint="codec/mapping/scoring must stay out "
                                     "of the digest; drop the argument"))
        return findings

    def _check_constructor(self, module: ModuleInfo,
                           fn: ast.AST) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Dict):
                findings.extend(self._check_dict(module, fn, node))
            elif isinstance(node, ast.Assign):
                # recipe["key"] = value extensions of an already-built dict
                for target in node.targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.slice, ast.Constant) \
                            and isinstance(target.slice.value, str):
                        findings.extend(self._check_pair(
                            module, fn, target.slice.value, node.value,
                            node.lineno))
        return findings

    def _check_dict(self, module: ModuleInfo, fn, node: ast.Dict):
        findings: list[Finding] = []
        for key, value in zip(node.keys, node.values):
            if key is None:            # **splat: contents unverifiable
                findings.append(Finding(
                    "DIGEST001", "error", module.path, node.lineno,
                    f"recipe constructor '{fn.name}' splats **kwargs into a "
                    f"recipe dict; keys cannot be verified",
                    hint="name every recipe key explicitly"))
                continue
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                findings.append(Finding(
                    "DIGEST001", "error", module.path, key.lineno,
                    f"recipe constructor '{fn.name}' uses a non-literal "
                    f"dict key",
                    hint="recipe keys must be string literals so the "
                         "schema is auditable"))
                continue
            findings.extend(self._check_pair(module, fn, key.value, value,
                                             value.lineno))
        return findings

    def _check_pair(self, module: ModuleInfo, fn, key: str,
                    value: ast.expr, line: int) -> list[Finding]:
        findings: list[Finding] = []
        if key in EXCLUDED_KEYS:
            findings.append(Finding(
                "DIGEST002", "error", module.path, line,
                f"digest-excluded key {key!r} appears in recipe "
                f"constructor '{fn.name}'",
                hint="codec/mapping/scoring must stay out of the digest so "
                     "replans keep their artifacts"))
        if not _is_safe_value(value):
            findings.append(Finding(
                "DIGEST001", "error", module.path, line,
                f"recipe key {key!r} in '{fn.name}' is not statically "
                f"canonical-JSON-safe",
                hint="wrap the value in an explicit str()/int()/float()/"
                     "dict()/list() coercion"))
        return findings
