"""Project-specific static analysis (``repro check``).

Parses ``src/repro`` into per-module ASTs (:class:`Project`), runs a
registry of pluggable rules (:mod:`repro.analysis.rules`), and reports
:class:`Finding`\\ s against a committed baseline of accepted
pre-existing findings.  See ``docs/architecture.md`` ("Static analysis")
for the rule catalogue and the baseline workflow.
"""

from .baseline import (
    BaselineEntry,
    BaselineError,
    Comparison,
    compare,
    load_baseline,
    save_baseline,
)
from .driver import (
    BASELINE_FILENAME,
    check_against_baseline,
    default_baseline_path,
    default_root,
    run_check,
)
from .finding import Finding, sort_findings
from .project import ModuleInfo, ParseFailure, Project
from .registry import Rule, make_rules, register_rule, rule_classes

__all__ = [
    "BASELINE_FILENAME",
    "BaselineEntry",
    "BaselineError",
    "Comparison",
    "Finding",
    "ModuleInfo",
    "ParseFailure",
    "Project",
    "Rule",
    "check_against_baseline",
    "compare",
    "default_baseline_path",
    "default_root",
    "load_baseline",
    "make_rules",
    "register_rule",
    "rule_classes",
    "run_check",
    "save_baseline",
    "sort_findings",
]
