"""Baseline I/O: accepted pre-existing findings, committed to the repo.

The baseline is a JSON file of finding fingerprints with human context
(rule, file, message, and a ``reason`` explaining *why* the finding is
accepted).  ``repro check`` compares a fresh scan against it:

* **new** — findings with no matching baseline entry: the check fails;
* **baselined** — findings covered by an entry: reported, not fatal;
* **stale** — entries that no longer match any finding: the suppressed
  pattern was fixed (or the message drifted).  ``--strict`` fails on
  stale entries so the baseline can only shrink deliberately
  (``--update-baseline``), never rot.

Matching is by multiset: two identical findings (same rule, file, and
message — e.g. the same double-checked read twice in one method) need
two baseline entries.
"""

from __future__ import annotations

import collections
import dataclasses
import json
from pathlib import Path

from .finding import Finding

BASELINE_FORMAT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule_id: str = ""
    file: str = ""
    message: str = ""
    reason: str = ""

    def to_dict(self) -> dict:
        return {"fingerprint": self.fingerprint,
                "rule_id": self.rule_id,
                "file": self.file,
                "message": self.message,
                "reason": self.reason}


@dataclasses.dataclass
class Comparison:
    new: list[Finding]
    baselined: list[Finding]
    stale: list[BaselineEntry]


class BaselineError(ValueError):
    """The baseline file is unreadable or structurally invalid."""


def load_baseline(path: str | Path) -> list[BaselineEntry]:
    """Entries from ``path``; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) \
            or data.get("format_version") != BASELINE_FORMAT_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported format_version "
            f"{data.get('format_version') if isinstance(data, dict) else data!r}")
    entries = []
    for raw in data.get("entries", []):
        if "fingerprint" not in raw:
            raise BaselineError(f"baseline {path}: entry missing fingerprint")
        entries.append(BaselineEntry(
            fingerprint=str(raw["fingerprint"]),
            rule_id=str(raw.get("rule_id", "")),
            file=str(raw.get("file", "")),
            message=str(raw.get("message", "")),
            reason=str(raw.get("reason", ""))))
    return entries


def save_baseline(path: str | Path, findings: list[Finding],
                  previous: list[BaselineEntry] | None = None) -> None:
    """Write ``findings`` as the new baseline, carrying over the ``reason``
    text of any previous entry with the same fingerprint."""
    reasons: dict[str, str] = {}
    for entry in previous or []:
        if entry.reason and entry.fingerprint not in reasons:
            reasons[entry.fingerprint] = entry.reason
    entries = [BaselineEntry(fingerprint=f.fingerprint, rule_id=f.rule_id,
                             file=f.file, message=f.message,
                             reason=reasons.get(f.fingerprint, ""))
               for f in findings]
    payload = {"format_version": BASELINE_FORMAT_VERSION,
               "entries": [e.to_dict() for e in entries]}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8")


def compare(findings: list[Finding],
            entries: list[BaselineEntry]) -> Comparison:
    """Split findings into new/baselined and entries into used/stale."""
    budget = collections.Counter(e.fingerprint for e in entries)
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        if budget.get(finding.fingerprint, 0) > 0:
            budget[finding.fingerprint] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale: list[BaselineEntry] = []
    for entry in entries:
        if budget.get(entry.fingerprint, 0) > 0:
            budget[entry.fingerprint] -= 1
            stale.append(entry)
    return Comparison(new=new, baselined=baselined, stale=stale)
