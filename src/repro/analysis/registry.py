"""Pluggable rule registry.

A rule is a class with a stable ``name`` (used by ``repro check
--rules``), a prose ``description``, and ``check_module`` /
``check_project`` hooks returning :class:`~repro.analysis.finding.
Finding` lists.  Registration mirrors the project's other extension
points (``register_backend``, ``register_codec``, ``register_model_kind``):
decorate the class with :func:`register_rule` at import time.

Built-in rules live in :mod:`repro.analysis.rules` and self-register
when that package imports; :func:`rule_classes` triggers the import
lazily so merely importing :mod:`repro.analysis` stays cheap.
"""

from __future__ import annotations

from .finding import Finding
from .project import ModuleInfo, Project


class Rule:
    """Base class for analysis rules (subclass and register)."""

    name = ""                          # stable selector, e.g. "lock-discipline"
    description = ""
    finding_ids: tuple[str, ...] = ()  # the rule ids this rule may emit

    def check_project(self, project: Project) -> list[Finding]:
        """Project-wide pass; defaults to mapping over modules."""
        findings: list[Finding] = []
        for module in project.modules:
            findings.extend(self.check_module(module, project))
        return findings

    def check_module(self, module: ModuleInfo,
                     project: Project) -> list[Finding]:
        return []


_RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    _RULES[cls.name] = cls
    return cls


def rule_classes() -> dict[str, type[Rule]]:
    """All registered rules (importing the built-ins on first use)."""
    from . import rules as _builtin  # noqa: F401  (self-registering)

    return dict(sorted(_RULES.items()))


def make_rules(names: list[str] | None = None) -> list[Rule]:
    """Instantiate the selected rules (all of them when ``names`` is None).

    Raises ``ValueError`` for an unknown rule name — the CLI maps that to
    a usage error (exit code 2).
    """
    classes = rule_classes()
    if names is None:
        return [cls() for cls in classes.values()]
    selected: list[Rule] = []
    for name in names:
        if name not in classes:
            raise ValueError(f"unknown rule {name!r}; "
                             f"available: {', '.join(classes)}")
        selected.append(classes[name]())
    return selected
