"""The ED-ViT framework orchestrator (Fig. 1).

Ties the four steps together over a trained Vision Transformer:

1. **Model splitting** — balanced class partition (Algorithm 1, lines 3–6)
   and the head-pruning schedule loop (lines 7–20, via
   :mod:`repro.splitting.schedule`);
2. **Model pruning** — Algorithm 2 per sub-model
   (:mod:`repro.pruning.pipeline`);
3. **Model assignment** — Algorithm 3 greedy placement
   (:mod:`repro.assignment`);
4. **Model fusion** — tower-MLP training (Section IV-E,
   :mod:`repro.splitting.fusion`).

The result is an :class:`EDViTSystem` that can classify inputs, report its
resource footprint, and export a deployment for the discrete-event
simulator or the process-based edge emulation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..assignment import AssignmentPlan, DeviceSpec
from ..data.synthetic import Dataset
from ..edge.device import DeviceModel
from ..edge.simulator import DeploymentSpec, SubModelProfile
from ..models.fusion import FusionMLP
from ..models.vit import VisionTransformer
from ..profiling import fusion_flops, module_param_count, paper_flops, size_mb
from ..pruning.pipeline import PruneConfig, PrunedSubModel, prune_submodel
from ..splitting.class_assignment import balanced_class_partition, validate_partition
from ..splitting.fusion import (
    fused_accuracy,
    fused_predict,
    softmax_average_accuracy,
    train_fusion_mlp,
)
from ..splitting.schedule import HeadSchedule, plan_head_schedule


@dataclasses.dataclass
class EDViTConfig:
    """End-to-end configuration of an ED-ViT build."""

    num_devices: int
    memory_budget_bytes: int
    workload_samples: int = 1
    initial_hp: int | None = None        # defaults to h/2 (see schedule.py)
    prune: PruneConfig = dataclasses.field(default_factory=PruneConfig)
    fusion_epochs: int = 5
    fusion_lr: float = 1e-3
    fusion_shrink: float = 0.5
    seed: int = 0


@dataclasses.dataclass
class EDViTSystem:
    """A built ED-ViT deployment: sub-models + fusion + placement."""

    submodels: list[PrunedSubModel]
    fusion: FusionMLP
    partition: list[list[int]]
    schedule: HeadSchedule
    plan: AssignmentPlan
    num_classes: int

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray,
                failed: set[int] | None = None) -> np.ndarray:
        """Classify inputs; ``failed`` zero-fills crashed sub-models' slots."""
        return fused_predict(self.submodels, self.fusion, x, failed=failed)

    def accuracy(self, dataset: Dataset) -> float:
        return fused_accuracy(self.submodels, self.fusion, dataset)

    def accuracy_under_failures(self, dataset: Dataset,
                                failed: set[int]) -> float:
        """Fused test accuracy with the listed sub-models offline."""
        pred = self.predict(dataset.x_test, failed=failed)
        return float((pred == dataset.y_test).mean())

    def softmax_average_accuracy(self, dataset: Dataset) -> float:
        """The "(w/o) retrain" Table-IV variant."""
        return softmax_average_accuracy(self.submodels, dataset)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_size_mb(self) -> float:
        return sum(size_mb(module_param_count(sm.model)) for sm in self.submodels)

    def submodel_sizes_mb(self) -> list[float]:
        return [size_mb(module_param_count(sm.model)) for sm in self.submodels]

    def submodel_flops(self) -> list[int]:
        return [paper_flops(sm.model.config) for sm in self.submodels]

    def feature_dims(self) -> list[int]:
        return [sm.model.feature_dim() for sm in self.submodels]

    # ------------------------------------------------------------------
    # Deployment export
    # ------------------------------------------------------------------
    def deployment(self, devices: list[DeviceModel],
                   fusion_device: DeviceModel) -> DeploymentSpec:
        """Export for :func:`repro.edge.simulator.simulate_inference`.

        Placement follows the Algorithm-3 plan computed at build time.
        """
        profiles = {}
        placement = {}
        for i, sm in enumerate(self.submodels):
            model_id = f"submodel-{i}"
            profiles[model_id] = SubModelProfile(
                model_id=model_id,
                flops_per_sample=float(paper_flops(sm.model.config)),
                feature_dim=sm.model.feature_dim(),
            )
            placement[model_id] = self.plan.mapping[model_id]
        fusion_cost = fusion_flops(sum(self.feature_dims()), self.num_classes,
                                   self.fusion.config.shrink)
        return DeploymentSpec(devices=devices, placement=placement,
                              profiles=profiles, fusion_device=fusion_device,
                              fusion_flops=float(fusion_cost))


def build_edvit(original: VisionTransformer, dataset: Dataset,
                devices: list[DeviceSpec], config: EDViTConfig) -> EDViTSystem:
    """Run the full ED-ViT pipeline (Fig. 1) and return the built system."""
    rng = np.random.default_rng(config.seed)

    # Step 1a: balanced class partition.
    partition = balanced_class_partition(dataset.num_classes,
                                         config.num_devices, rng)
    validate_partition(partition, dataset.num_classes)

    # Step 1b + 3 (planning): the Algorithm-1 scheduling loop, which embeds
    # Algorithm-3 feasibility checks.
    schedule = plan_head_schedule(
        original.config, partition, devices,
        memory_budget_bytes=config.memory_budget_bytes,
        num_samples=config.workload_samples,
        initial_hp=config.initial_hp)

    # Step 2: Algorithm-2 pruning per sub-model with the converged hp.
    submodels = []
    for classes, hp in zip(partition, schedule.hps):
        submodels.append(prune_submodel(original, dataset, classes, hp,
                                        config=config.prune))

    # Step 4: fusion MLP training on frozen features.
    fusion = train_fusion_mlp(submodels, dataset, epochs=config.fusion_epochs,
                              lr=config.fusion_lr, shrink=config.fusion_shrink,
                              seed=config.seed)

    return EDViTSystem(submodels=submodels, fusion=fusion, partition=partition,
                       schedule=schedule, plan=schedule.plan,
                       num_classes=dataset.num_classes)
