"""Persist and restore built ED-ViT systems.

A deployment bundle is a directory holding one checkpoint per sub-model,
the fusion MLP, and a JSON manifest (partition, head schedule, placement).
This is what an operator would ship to the edge fleet: each device needs
only its own sub-model file, the fusion device needs ``fusion.npz``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..assignment import AssignmentPlan
from ..models.fusion import FusionConfig, FusionMLP
from ..models.vit import ViTConfig, VisionTransformer
from ..nn.serialization import load_checkpoint, save_checkpoint
from ..pruning.pipeline import PrunedSubModel
from ..splitting.schedule import HeadSchedule, footprint
from .edvit import EDViTSystem

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


def save_system(system: EDViTSystem, directory: str | Path) -> Path:
    """Write a deployment bundle; returns the bundle directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    for i, sm in enumerate(system.submodels):
        save_checkpoint(sm.model, directory / f"submodel-{i}.npz",
                        config=sm.model.config.to_dict())
    save_checkpoint(system.fusion, directory / "fusion.npz",
                    config=system.fusion.config.to_dict())

    manifest = {
        "format_version": FORMAT_VERSION,
        "num_classes": system.num_classes,
        "partition": system.partition,
        "hps": list(system.schedule.hps),
        "one_vs_rest": [sm.one_vs_rest for sm in system.submodels],
        "classes": [list(sm.classes) for sm in system.submodels],
        "placement": dict(system.plan.mapping),
        "residual_memory": {k: int(v) for k, v
                            in system.plan.residual_memory.items()},
        "residual_energy": {k: float(v) for k, v
                            in system.plan.residual_energy.items()},
    }
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, allow_nan=False))
    return directory


def load_system(directory: str | Path) -> EDViTSystem:
    """Reconstruct an :class:`EDViTSystem` from a deployment bundle."""
    directory = Path(directory)
    manifest = json.loads((directory / MANIFEST_NAME).read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle version {manifest.get('format_version')!r}")

    submodels: list[PrunedSubModel] = []
    for i, (classes, hp, ovr) in enumerate(zip(manifest["classes"],
                                               manifest["hps"],
                                               manifest["one_vs_rest"])):
        state, config_dict = load_checkpoint(directory / f"submodel-{i}.npz")
        model = VisionTransformer(ViTConfig.from_dict(config_dict))
        model.load_state_dict(state)
        model.eval()
        submodels.append(PrunedSubModel(model=model, classes=list(classes),
                                        hp=int(hp), history={},
                                        one_vs_rest=bool(ovr)))

    state, config_dict = load_checkpoint(directory / "fusion.npz")
    fusion = FusionMLP(FusionConfig.from_dict(config_dict))
    fusion.load_state_dict(state)
    fusion.eval()

    plan = AssignmentPlan(
        mapping=dict(manifest["placement"]),
        residual_memory={k: int(v) for k, v
                         in manifest["residual_memory"].items()},
        residual_energy={k: float(v) for k, v
                         in manifest["residual_energy"].items()})

    # Rebuild the analytic schedule from the stored hp values so reporting
    # helpers keep working (the exact base config is recoverable from any
    # sub-model's pruned config only approximately, so footprints are
    # recomputed from the stored pruned configs directly).
    feet = [footprint(sm.model.config, i, 0, sm.model.config.num_classes)
            for i, sm in enumerate(submodels)]
    schedule = HeadSchedule(hps=[int(h) for h in manifest["hps"]],
                            footprints=feet, plan=plan, iterations=0)

    return EDViTSystem(submodels=submodels, fusion=fusion,
                       partition=[list(g) for g in manifest["partition"]],
                       schedule=schedule, plan=plan,
                       num_classes=int(manifest["num_classes"]))


def submodel_file_for_device(directory: str | Path,
                             device_id: str) -> list[Path]:
    """The checkpoint files a given device must receive (ops helper)."""
    directory = Path(directory)
    manifest = json.loads((directory / MANIFEST_NAME).read_text())
    files = []
    for model_id, placed_on in manifest["placement"].items():
        if placed_on == device_id:
            files.append(directory / f"{model_id}.npz")
    return files
