"""Experiment harness: regenerates every table and figure of the paper.

Two experiment families:

* **Analytic/simulated** (full-size ViT-S/B/L at 224×224): model profiles
  (Table I), sub-model FLOPs (Table II), latency and memory curves
  (Figs. 4–6 panels b/c), communication accounting (Section V-D).  These
  need no training — sub-model architectures come from the scheduling
  loop, latency from the calibrated discrete-event simulator.

* **Trained** (scaled-down ViTs on synthetic data): accuracy curves
  (Figs. 4–6 panel a), baseline comparison (Table III / Fig. 7),
  retraining ablation (Table IV).  These run the full pipeline end to end
  at CPU-tractable scale.

Head schedules: ``schedule_mode="algorithm1"`` runs the paper's Algorithm 1
loop; ``schedule_mode="paper"`` pins the uniform per-N schedules implied by
the paper's reported sub-model sizes/FLOPs (e.g. ViT-Base keeps 6/4/3/2 of
12 heads at N=2/3/5/10), which Algorithm 1's increment-the-largest loop
does not always land on exactly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..assignment import DeviceSpec
from ..data.synthetic import Dataset
from ..edge.device import DeviceModel, make_fleet, raspberry_pi_4b
from ..edge.network import RAW_IMAGE_BYTES, communication_reduction, feature_bytes
from ..edge.simulator import (
    DeploymentSpec,
    SubModelProfile,
    simulate_inference,
    single_device_latency,
)
from ..models.vit import (
    ViTConfig,
    VisionTransformer,
    vit_base_config,
    vit_large_config,
    vit_small_config,
)
from ..profiling import fusion_flops, paper_flops, size_mb, vit_param_count
from ..splitting.class_assignment import balanced_class_partition
from ..splitting.schedule import (
    HeadSchedule,
    SubModelFootprint,
    footprint,
    plan_head_schedule,
)

MB = 2 ** 20

# Device counts evaluated throughout Section V.
PAPER_DEVICE_COUNTS = (1, 2, 3, 5, 10)

# Memory budgets per model family (Section V-B / V-E).
PAPER_BUDGETS_MB = {"vit-small": 50, "vit-base": 180, "vit-large": 600}

# Heads *kept* per sub-model at each N, as implied by the paper's reported
# sizes/FLOPs for ViT-Base (6/4/3/2 of 12) and generalized by ratio.
_PAPER_KEPT_FRACTION = {1: 1 / 2, 2: 1 / 2, 3: 1 / 3, 5: 1 / 4, 10: 1 / 6}


def paper_kept_heads(num_heads: int, num_devices: int) -> int:
    if num_devices in _PAPER_KEPT_FRACTION:
        fraction = _PAPER_KEPT_FRACTION[num_devices]
    else:
        fraction = 1.0 / max(1.0, num_devices * 0.6)
    # Floor, not round: the paper's ViT-Large N=10 sub-models keep
    # floor(16/6)=2 heads (18.73 MB), not round(16/6)=3.
    return max(1, int(num_heads * fraction))


def paper_hp(num_heads: int, num_devices: int) -> int:
    return num_heads - paper_kept_heads(num_heads, num_devices)


# ----------------------------------------------------------------------
# Table I — standard model profiles
# ----------------------------------------------------------------------
def table1_rows(num_classes: int = 1000) -> list[dict]:
    device = raspberry_pi_4b("pi-ref")
    rows = []
    for name, factory, depth, width, heads in [
            ("ViT-Small", vit_small_config, 12, 384, 6),
            ("ViT-Base", vit_base_config, 12, 768, 12),
            ("ViT-Large", vit_large_config, 24, 1024, 16)]:
        cfg = factory(num_classes=num_classes)
        params = vit_param_count(cfg)
        flops = paper_flops(cfg)
        rows.append({
            "Model": name,
            "Depth": depth,
            "Width": width,
            "Heads": heads,
            "Params (M)": params / 1e6,
            "Flops (G)": flops / 1e9,
            "Latency (ms)": single_device_latency(device, flops) * 1e3,
            "Mem Size (MB)": size_mb(vit_param_count(
                factory(num_classes=10))),
        })
    return rows


# ----------------------------------------------------------------------
# Schedules and footprints for a (model, N) point
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SplitPlanPoint:
    """The analytic outcome of splitting a model across N devices."""

    num_devices: int
    hps: list[int]
    footprints: list[SubModelFootprint]
    schedule: HeadSchedule | None   # None in "paper" mode

    @property
    def total_size_mb(self) -> float:
        return sum(f.size_bytes for f in self.footprints) / MB

    @property
    def max_flops(self) -> float:
        return max(f.flops_per_sample for f in self.footprints)

    @property
    def feature_dims(self) -> list[int]:
        return [f.config.embed_dim for f in self.footprints]


def plan_split(base: ViTConfig, num_devices: int, num_classes: int,
               budget_mb: float, schedule_mode: str = "paper",
               devices: list[DeviceSpec] | None = None,
               workload_samples: int = 1,
               seed: int = 0) -> SplitPlanPoint:
    """Compute the sub-model architectures for one (model, N) point."""
    rng = np.random.default_rng(seed)
    groups = balanced_class_partition(num_classes, num_devices, rng)
    if schedule_mode == "paper":
        hp = paper_hp(base.num_heads, num_devices)
        feet = [footprint(base, i, hp, len(group))
                for i, group in enumerate(groups)]
        return SplitPlanPoint(num_devices=num_devices, hps=[hp] * num_devices,
                              footprints=feet, schedule=None)
    if schedule_mode == "algorithm1":
        if devices is None:
            devices = [d.to_spec() for d in make_fleet(num_devices)]
        schedule = plan_head_schedule(base, groups, devices,
                                      memory_budget_bytes=int(budget_mb * MB),
                                      num_samples=workload_samples)
        return SplitPlanPoint(num_devices=num_devices, hps=schedule.hps,
                              footprints=schedule.footprints, schedule=schedule)
    raise ValueError(f"unknown schedule_mode {schedule_mode!r}")


# ----------------------------------------------------------------------
# Table II — sub-model FLOPs vs number of devices
# ----------------------------------------------------------------------
def table2_rows(schedule_mode: str = "paper") -> list[dict]:
    rows = []
    for dataset, channels in [("CIFAR-10", 3), ("GTZAN", 1)]:
        base = vit_base_config(num_classes=10, in_channels=channels)
        row: dict = {"Dataset": dataset,
                     "Original (G)": paper_flops(base) / 1e9}
        for n in (2, 3, 5, 10):
            point = plan_split(base, n, num_classes=10,
                               budget_mb=PAPER_BUDGETS_MB["vit-base"],
                               schedule_mode=schedule_mode)
            row[f"N={n} (G)"] = point.max_flops / 1e9
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figures 4–6 — latency / memory panels (simulated)
# ----------------------------------------------------------------------
def deployment_for_point(point: SplitPlanPoint, num_classes: int,
                         fleet: list[DeviceModel] | None = None,
                         fusion_device: DeviceModel | None = None,
                         shrink: float = 0.5) -> DeploymentSpec:
    """Build a simulator deployment from an analytic split plan.

    Sub-models are placed round-robin (one per device at N devices, which
    is what the greedy plan degenerates to on a homogeneous fleet).
    """
    fleet = fleet or make_fleet(point.num_devices)
    fusion_device = fusion_device or raspberry_pi_4b("pi-fusion")
    profiles = {}
    placement = {}
    for i, foot in enumerate(point.footprints):
        model_id = f"submodel-{i}"
        profiles[model_id] = SubModelProfile(
            model_id=model_id, flops_per_sample=foot.flops_per_sample,
            feature_dim=foot.config.embed_dim)
        placement[model_id] = fleet[i % len(fleet)].device_id
    total_feature = sum(point.feature_dims)
    return DeploymentSpec(
        devices=fleet, placement=placement, profiles=profiles,
        fusion_device=fusion_device,
        fusion_flops=float(fusion_flops(total_feature, num_classes, shrink)))


def latency_memory_curve(base: ViTConfig, budget_mb: float,
                         num_classes: int = 10,
                         device_counts: tuple[int, ...] = PAPER_DEVICE_COUNTS,
                         schedule_mode: str = "paper") -> list[dict]:
    """Panels (b) and (c) of Figs. 4–6 for one model/dataset."""
    original_flops = paper_flops(base)
    original_latency = single_device_latency(raspberry_pi_4b("pi-ref"),
                                             original_flops)
    rows = []
    for n in device_counts:
        point = plan_split(base, n, num_classes, budget_mb, schedule_mode)
        deployment = deployment_for_point(point, num_classes)
        result = simulate_inference(deployment, num_samples=1)
        rows.append({
            "devices": n,
            "latency_s": result.max_latency,
            "original_latency_s": original_latency,
            "speedup_vs_original": original_latency / result.max_latency,
            "total_memory_mb": point.total_size_mb,
            "per_model_mb": point.footprints[0].size_bytes / MB,
            "hps": tuple(point.hps),
            "kept_heads": tuple(base.num_heads - hp for hp in point.hps),
        })
    return rows


# ----------------------------------------------------------------------
# Section V-D — communication overhead
# ----------------------------------------------------------------------
def communication_rows(base: ViTConfig | None = None,
                       device_counts: tuple[int, ...] = PAPER_DEVICE_COUNTS,
                       schedule_mode: str = "paper") -> list[dict]:
    base = base or vit_base_config(num_classes=10)
    from ..edge.network import tc_capped_link

    link = tc_capped_link()
    rows = []
    for n in device_counts:
        point = plan_split(base, n, base.num_classes,
                           PAPER_BUDGETS_MB["vit-base"], schedule_mode)
        fbytes = feature_bytes(point.feature_dims[0])
        rows.append({
            "devices": n,
            "feature_bytes": fbytes,
            "image_bytes": RAW_IMAGE_BYTES,
            "reduction_x": communication_reduction(fbytes),
            "transfer_ms": link.transfer_seconds(fbytes) * 1e3,
        })
    return rows


# ----------------------------------------------------------------------
# Trained experiments (accuracy panels) — scaled-down models
# ----------------------------------------------------------------------
@dataclasses.dataclass
class TrainedExperimentConfig:
    """Scale knobs for the CPU-trained accuracy experiments."""

    image_size: int = 16
    patch_size: int = 4
    depth: int = 2
    embed_dim: int = 32
    num_heads: int = 4
    train_epochs: int = 8
    train_per_class: int = 32
    test_per_class: int = 16
    prune_probe: int = 16
    retrain_epochs: int = 2
    fusion_epochs: int = 6
    seed: int = 0


def train_base_model(dataset: Dataset, cfg: TrainedExperimentConfig,
                     in_channels: int) -> VisionTransformer:
    from .training import TrainConfig, train_classifier

    vit_cfg = ViTConfig(image_size=cfg.image_size, patch_size=cfg.patch_size,
                        in_channels=in_channels, num_classes=dataset.num_classes,
                        depth=cfg.depth, embed_dim=cfg.embed_dim,
                        num_heads=cfg.num_heads, name="vit-tiny")
    model = VisionTransformer(vit_cfg, rng=np.random.default_rng(cfg.seed))
    train_classifier(model, dataset.x_train, dataset.y_train,
                     TrainConfig(epochs=cfg.train_epochs, lr=2e-3,
                                 seed=cfg.seed))
    return model


def runtime_speedup_rows(config: ViTConfig | None = None, *,
                         batch_size: int = 1, repeats: int = 3,
                         seed: int = 0) -> list[dict]:
    """Engineering table: per-mode forward latency of the inference engine.

    Compares the autograd graph-building forward against the graph-free
    ``no_grad`` path and the workspace-cached ``inference_mode`` path on
    one model, asserting nothing.  (The CI perf-smoke job is the separate
    ``benchmarks/bench_runtime_micro.py --smoke``, which additionally
    replays the seed op set as its baseline and uses min-of-N timing;
    this function is the library-level mean-latency counterpart.)
    """
    from .inference import benchmark_forward

    config = config or vit_base_config(num_classes=10)
    model = VisionTransformer(config, rng=np.random.default_rng(seed))
    x = np.random.default_rng(seed).normal(
        size=(batch_size, config.in_channels, config.image_size,
              config.image_size)).astype(np.float32)
    rows = []
    graph_s = benchmark_forward(model, x, repeats=repeats, mode="graph")
    for mode in ("graph", "no_grad", "inference"):
        mode_s = (graph_s if mode == "graph"
                  else benchmark_forward(model, x, repeats=repeats, mode=mode))
        rows.append({
            "model": config.name,
            "mode": mode,
            "batch": batch_size,
            "latency_s": mode_s,
            "speedup_vs_graph": graph_s / mode_s,
        })
    return rows


def accuracy_curve(dataset: Dataset, cfg: TrainedExperimentConfig,
                   device_counts: tuple[int, ...] = PAPER_DEVICE_COUNTS,
                   budget_mb: float = 10.0) -> list[dict]:
    """Panel (a) of Figs. 4–6: fused accuracy vs number of devices."""
    from ..pruning.pipeline import PruneConfig
    from .edvit import EDViTConfig, build_edvit

    in_channels = dataset.image_shape[0]
    base = train_base_model(dataset, cfg, in_channels)
    fleet_specs = [d.to_spec() for d in make_fleet(max(device_counts))]
    rows = []
    for n in device_counts:
        if n > dataset.num_classes:
            continue
        system = build_edvit(
            base, dataset, fleet_specs[:n],
            EDViTConfig(
                num_devices=n,
                memory_budget_bytes=int(budget_mb * MB),
                prune=PruneConfig(probe_size=cfg.prune_probe,
                                  retrain_epochs=cfg.retrain_epochs,
                                  seed=cfg.seed),
                fusion_epochs=cfg.fusion_epochs,
                seed=cfg.seed))
        rows.append({
            "devices": n,
            "accuracy": system.accuracy(dataset),
            "softmax_avg_accuracy": system.softmax_average_accuracy(dataset),
            "total_memory_mb": system.total_size_mb(),
            "hps": tuple(system.schedule.hps),
        })
    return rows
