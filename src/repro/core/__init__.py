"""ED-ViT core: orchestrator, training loops, metrics, experiment harness."""

from .edvit import EDViTConfig, EDViTSystem, build_edvit
from .metrics import format_mean_std, format_table, mean_std, ratio
from .training import (
    TrainConfig,
    TrainResult,
    evaluate,
    extract_features,
    predict_logits,
    predict_probabilities,
    train_classifier,
)

__all__ = [
    "EDViTConfig",
    "EDViTSystem",
    "TrainConfig",
    "TrainResult",
    "build_edvit",
    "evaluate",
    "extract_features",
    "format_mean_std",
    "format_table",
    "mean_std",
    "predict_logits",
    "predict_probabilities",
    "ratio",
    "train_classifier",
]
