"""ED-ViT core: orchestrator, training loops, inference engine, metrics,
experiment harness."""

from .edvit import EDViTConfig, EDViTSystem, build_edvit
from .inference import (
    benchmark_forward,
    evaluate,
    extract_features,
    iter_batches,
    predict,
    predict_labels,
    predict_logits,
    predict_probabilities,
    split_batch,
)
from .metrics import format_mean_std, format_table, mean_std, ratio
from .training import TrainConfig, TrainResult, train_classifier

__all__ = [
    "EDViTConfig",
    "EDViTSystem",
    "TrainConfig",
    "TrainResult",
    "benchmark_forward",
    "build_edvit",
    "evaluate",
    "extract_features",
    "format_mean_std",
    "format_table",
    "iter_batches",
    "mean_std",
    "predict",
    "predict_labels",
    "predict_logits",
    "predict_probabilities",
    "ratio",
    "split_batch",
    "train_classifier",
]
