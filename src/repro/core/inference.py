"""Batched graph-free inference entrypoints shared by every consumer.

This module is the single place the reproduction runs models *forward
only*: the experiment harness, the edge runtime workers, the fusion
helpers, and both Split-CNN/Split-SNN baselines all route through
:func:`predict` instead of hand-rolled per-sample loops.  It runs under
``nn.inference_mode()`` — the graph-free fast path with module workspace
reuse — and copies every batch output, so results stay valid after the
next forward overwrites the workspaces.

``data`` may be a plain array, a :class:`~repro.data.loaders.DataLoader`,
or any iterable yielding batches (bare ``x`` or ``(x, y)`` tuples).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from .. import nn


def iter_batches(data, batch_size: int = 64) -> Iterator[np.ndarray]:
    """Yield input batches from an array, DataLoader, or batch iterable."""
    if isinstance(data, np.ndarray):
        for start in range(0, len(data), batch_size):
            yield data[start:start + batch_size]
        return
    if isinstance(data, nn.Tensor):
        yield from iter_batches(data.data, batch_size)
        return
    for item in data:
        if isinstance(item, tuple):
            item = item[0]
        yield np.asarray(item)


def predict(model: nn.Module, data, batch_size: int = 64, *,
            forward: Callable | None = None,
            keep_workspaces: bool = False) -> np.ndarray:
    """Run ``model`` forward over ``data`` in batches, graph-free.

    Puts the model in eval mode, executes under ``nn.inference_mode()``
    (workspace-cached fast path), and returns the stacked, caller-owned
    outputs.  ``forward`` overrides the callable applied per batch
    (default ``model``; pass e.g. ``model.forward_features``).

    By default the model's workspace scratch is released afterwards, so
    one-shot callers don't keep batch-sized buffers alive for the model's
    lifetime.  Long-lived servers that call ``predict`` repeatedly with
    the same batch shape (e.g. the edge runtime workers) pass
    ``keep_workspaces=True`` to retain the warm buffers.
    """
    model.eval()
    apply = forward if forward is not None else model
    outputs = []
    try:
        with nn.inference_mode():
            for xb in iter_batches(data, batch_size):
                # nn.Tensor (not _noback) keeps the seed's input
                # normalization: float64 batches cast down to float32.
                out = apply(nn.Tensor(np.asarray(xb)))
                outputs.append(out.data.copy())
    finally:
        if not keep_workspaces:
            model.clear_workspaces()
    if not outputs:
        raise ValueError("predict() received no data")
    return np.concatenate(outputs, axis=0)


def split_batch(outputs: np.ndarray, sizes: "Iterable[int]") -> list[np.ndarray]:
    """Slice a coalesced batch output back into per-request chunks.

    The serving layer's dynamic batcher concatenates several requests into
    one fused forward; this is the inverse, returning one caller-owned view
    per request (``sizes`` are the per-request sample counts, in dispatch
    order).  The sizes must tile ``outputs`` exactly.
    """
    sizes = list(sizes)
    total = sum(sizes)
    if total != len(outputs):
        raise ValueError(f"sizes sum to {total} but batch has {len(outputs)} "
                         "samples")
    chunks: list[np.ndarray] = []
    start = 0
    for size in sizes:
        chunks.append(outputs[start:start + size])
        start += size
    return chunks


def predict_logits(model: nn.Module, x, batch_size: int = 64) -> np.ndarray:
    """Class logits for every sample (alias of :func:`predict`)."""
    return predict(model, x, batch_size)


def predict_labels(model: nn.Module, x, batch_size: int = 64) -> np.ndarray:
    """Argmax class predictions."""
    return predict(model, x, batch_size).argmax(axis=-1)


def predict_probabilities(model: nn.Module, x, batch_size: int = 64) -> np.ndarray:
    """Softmax class probabilities (computed in numpy, stable-shifted)."""
    logits = predict(model, x, batch_size)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=-1, keepdims=True)
    return shifted


def extract_features(model, x, batch_size: int = 64,
                     keep_workspaces: bool = False) -> np.ndarray:
    """Run ``model.forward_features`` batched (sub-model feature maps)."""
    return predict(model, x, batch_size, forward=model.forward_features,
                   keep_workspaces=keep_workspaces)


def evaluate(model: nn.Module, x, y: np.ndarray, batch_size: int = 64) -> float:
    """Top-1 test accuracy."""
    return float((predict_labels(model, x, batch_size) == np.asarray(y)).mean())


def benchmark_forward(model: nn.Module, x: np.ndarray, *, repeats: int = 3,
                      mode: str = "inference") -> float:
    """Mean seconds per forward pass in the given execution mode.

    ``mode`` is one of ``"graph"`` (autograd graph construction),
    ``"no_grad"`` (graph-free, fresh allocations), or ``"inference"``
    (graph-free plus workspace reuse).  Used by the runtime
    micro-benchmarks and the CI perf-smoke job.
    """
    import contextlib
    import time

    contexts = {
        "graph": contextlib.nullcontext,
        "no_grad": nn.no_grad,
        "inference": nn.inference_mode,
    }
    if mode not in contexts:
        raise ValueError(f"unknown mode {mode!r}; choose from {sorted(contexts)}")
    model.eval()
    tensor = nn.Tensor(np.asarray(x))
    with contexts[mode]():
        model(tensor)                      # warm-up (fills workspaces)
        start = time.perf_counter()
        for _ in range(repeats):
            model(tensor)
        elapsed = time.perf_counter() - start
    return elapsed / repeats
