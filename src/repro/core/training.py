"""Training and evaluation loops shared by every model in the reproduction.

The paper trains with Adam (initial LR 1e-4, decaying) — we default to the
same recipe, scaled to the synthetic workloads.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from .. import nn
from ..data.loaders import DataLoader


@dataclasses.dataclass
class TrainConfig:
    epochs: int = 10
    batch_size: int = 32
    lr: float = 1e-3
    lr_decay: float = 0.95
    weight_decay: float = 0.0
    grad_clip: float | None = 5.0
    label_smoothing: float = 0.0
    verbose: bool = False
    seed: int = 0


@dataclasses.dataclass
class TrainResult:
    train_losses: list[float]
    train_accuracies: list[float]
    wall_seconds: float

    @property
    def final_loss(self) -> float:
        return self.train_losses[-1]

    @property
    def final_accuracy(self) -> float:
        return self.train_accuracies[-1]


def train_classifier(model: nn.Module, x: np.ndarray, y: np.ndarray,
                     config: TrainConfig | None = None) -> TrainResult:
    """Train ``model`` to classify (x, y); returns per-epoch curves."""
    config = config or TrainConfig()
    rng = np.random.default_rng(config.seed)
    loader = DataLoader(x, y, batch_size=config.batch_size, shuffle=True, rng=rng)
    optimizer = nn.Adam(model.parameters(), lr=config.lr,
                        weight_decay=config.weight_decay)
    schedule = nn.DecayingLR(optimizer, decay=config.lr_decay)

    model.train()
    losses: list[float] = []
    accuracies: list[float] = []
    start = time.perf_counter()
    for epoch in range(config.epochs):
        epoch_loss = 0.0
        correct = 0
        seen = 0
        for xb, yb in loader:
            logits = model(nn.Tensor(xb))
            loss = nn.cross_entropy(logits, yb,
                                    label_smoothing=config.label_smoothing)
            optimizer.zero_grad()
            loss.backward()
            if config.grad_clip is not None:
                nn.clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            batch = len(yb)
            epoch_loss += loss.item() * batch
            correct += int((logits.data.argmax(axis=-1) == yb).sum())
            seen += batch
        schedule.step()
        losses.append(epoch_loss / max(1, seen))
        accuracies.append(correct / max(1, seen))
        if config.verbose:
            print(f"epoch {epoch + 1}/{config.epochs} "
                  f"loss={losses[-1]:.4f} acc={accuracies[-1]:.3f}")
    model.eval()
    return TrainResult(losses, accuracies, time.perf_counter() - start)


# Batched graph-free inference lives in repro.core.inference; these
# re-exports keep the original training-module surface intact.
from .inference import (  # noqa: E402  (re-export)
    evaluate,
    extract_features,
    predict_logits,
    predict_probabilities,
)

__all__ = [
    "TrainConfig",
    "TrainResult",
    "evaluate",
    "extract_features",
    "predict_logits",
    "predict_probabilities",
    "train_classifier",
]
