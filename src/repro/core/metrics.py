"""Result tables: plain-text rendering of experiment rows.

Benchmarks print the same rows/series the paper reports; these helpers
keep that presentation consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(rows: Sequence[dict[str, Any]],
                 columns: Sequence[str] | None = None,
                 floatfmt: str = ".4g") -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    else:
        columns = list(columns)

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(c.ljust(w) for c, w in zip(r, widths))
                     for r in rendered)
    return f"{header}\n{rule}\n{body}"


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Mean and (population) standard deviation of a metric over trials."""
    if not values:
        raise ValueError("need at least one value")
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return mean, var ** 0.5


def format_mean_std(values: Sequence[float], scale: float = 100.0,
                    digits: int = 2) -> str:
    """Render trials as the paper's ``mean±std`` percentage format."""
    mean, std = mean_std(values)
    return f"{mean * scale:.{digits}f}±{std * scale:.{digits}f}"


def ratio(reference: float, value: float) -> float:
    """Reduction factor "X times" as the paper reports (reference / value)."""
    if value == 0:
        raise ZeroDivisionError("cannot compute a reduction over zero")
    return reference / value
