"""The three structured-pruning stages of Fig. 2 (Section IV-C).

Every stage scores components (KL divergence by default), selects the
least-important ones given the pruning factor ``s = (h - hp) / h``, and
performs weight surgery.  Stage functions return a *new* model; callers
interleave finetuning (see :mod:`repro.pruning.pipeline`).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..models.vit import VisionTransformer
from . import importance as imp
from .surgery import prune_attention_dims, prune_ffn_hidden, prune_residual_channels

Backend = Literal["kl", "magnitude"]


def pruning_factor(num_heads: int, hp: int) -> float:
    """The paper's ``s = (h - hp) / h``."""
    if not 0 <= hp < num_heads:
        raise ValueError(f"pruning head number hp={hp} must be in [0, {num_heads})")
    return (num_heads - hp) / num_heads


def _target_count(original: int, s: float, minimum: int = 1) -> int:
    return max(minimum, int(round(original * s)))


def prune_short_connection(model: VisionTransformer, hp: int,
                           probe: imp.Probe | None = None,
                           backend: Backend = "kl") -> VisionTransformer:
    """Stage 1: residual channels d -> s*d (``PruneShortConnection``)."""
    cfg = model.config
    s = pruning_factor(cfg.num_heads, hp)
    if backend == "kl":
        if probe is None:
            raise ValueError("KL backend requires a probe")
        scores = imp.kl_residual_channel_importance(model, probe)
    else:
        scores = imp.magnitude_residual_channel_importance(model)
    keep_count = _target_count(cfg.embed_dim, s)
    keep = np.sort(np.argsort(scores)[-keep_count:])
    return prune_residual_channels(model, keep)


def prune_mhsa(model: VisionTransformer, hp: int,
               probe: imp.Probe | None = None,
               backend: Backend = "kl") -> VisionTransformer:
    """Stage 2: attention width h*dq -> s*h*dq, pruned within heads."""
    cfg = model.config
    s = pruning_factor(cfg.num_heads, hp)
    if backend == "kl":
        if probe is None:
            raise ValueError("KL backend requires a probe")
        scores = imp.kl_attention_importance(model, probe)
    else:
        scores = imp.magnitude_attention_importance(model)
    keep_count = _target_count(cfg.head_dim, s)
    keep_per_head: list[list[np.ndarray]] = []
    for b in range(cfg.depth):
        block_keep = []
        for h in range(cfg.num_heads):
            block_keep.append(np.sort(np.argsort(scores[b, h])[-keep_count:]))
        keep_per_head.append(block_keep)
    return prune_attention_dims(model, keep_per_head)


def prune_ffn(model: VisionTransformer, hp: int,
              probe: imp.Probe | None = None,
              backend: Backend = "kl") -> VisionTransformer:
    """Stage 3: FFN hidden width c -> s*c."""
    cfg = model.config
    s = pruning_factor(cfg.num_heads, hp)
    if backend == "kl":
        if probe is None:
            raise ValueError("KL backend requires a probe")
        scores = imp.kl_ffn_importance(model, probe)
    else:
        scores = imp.magnitude_ffn_importance(model)
    keep_count = _target_count(cfg.resolved_mlp_hidden, s)
    keep_per_block = [np.sort(np.argsort(scores[b])[-keep_count:])
                      for b in range(cfg.depth)]
    return prune_ffn_hidden(model, keep_per_block)


def pruned_dims(config, hp: int) -> dict[str, int]:
    """Analytic target dimensions after all three stages (no weights needed).

    Used by the splitter/profiler to size sub-models without running the
    expensive scoring passes.
    """
    s = pruning_factor(config.num_heads, hp)
    embed = _target_count(config.embed_dim, s)
    head_dim = _target_count(config.head_dim, s)
    hidden = _target_count(config.resolved_mlp_hidden, s)
    return {
        "embed_dim": embed,
        "attn_dim": head_dim * config.num_heads,
        "mlp_hidden": hidden,
        "num_heads": config.num_heads,
    }
