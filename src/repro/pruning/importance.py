"""Component-importance scoring for structured ViT pruning (Section IV-C).

The paper scores a prunable component by the KL divergence between the
output distribution of the original model and the model with that component
removed: components whose removal barely moves the output distribution are
pruned first.

We implement removal by temporarily zeroing every weight slice the
component feeds (an exact ablation for attention dims and FFN units, and
the standard masking approximation for residual channels, where LayerNorm
statistics still see the zeroed channel).  A magnitude backend (L1 norm of
the same slices) is provided for the KL-vs-magnitude ablation bench.
"""

from __future__ import annotations

import contextlib
import dataclasses

import numpy as np

from ..core.training import predict_probabilities
from ..models.vit import VisionTransformer
from ..nn.losses import kl_divergence
from ..nn.modules import Parameter


@dataclasses.dataclass
class Probe:
    """A probe batch plus the original model's reference distribution."""

    x: np.ndarray
    reference: np.ndarray  # (N, num_classes) probabilities

    @staticmethod
    def from_model(model: VisionTransformer, x: np.ndarray,
                   batch_size: int = 64) -> "Probe":
        return Probe(x=x, reference=predict_probabilities(model, x, batch_size))


@contextlib.contextmanager
def _zeroed(slices: list[tuple[Parameter, tuple]]):
    """Temporarily zero ``param[index]`` for each (param, index) pair."""
    saved = []
    try:
        for param, index in slices:
            saved.append((param, index, param.data[index].copy()))
            param.data[index] = 0.0
        yield
    finally:
        for param, index, value in saved:
            param.data[index] = value


def _divergence(model: VisionTransformer, probe: Probe) -> float:
    q = predict_probabilities(model, probe.x)
    return float(kl_divergence(probe.reference, q).mean())


# ----------------------------------------------------------------------
# Residual channels (stage 1)
# ----------------------------------------------------------------------
def _residual_channel_slices(model: VisionTransformer, channel: int):
    i = channel
    slices = [
        (model.patch_embed.proj.weight, (i,)),
        (model.patch_embed.proj.bias, (i,)),
        (model.cls_token, (slice(None), slice(None), i)),
        (model.pos_embed, (slice(None), slice(None), i)),
        (model.norm.weight, (i,)),
        (model.norm.bias, (i,)),
    ]
    for block in model.blocks:
        slices.extend([
            (block.norm1.weight, (i,)), (block.norm1.bias, (i,)),
            (block.norm2.weight, (i,)), (block.norm2.bias, (i,)),
            (block.attn.proj.weight, (i,)), (block.attn.proj.bias, (i,)),
            (block.mlp.fc2.weight, (i,)), (block.mlp.fc2.bias, (i,)),
        ])
    return slices


def kl_residual_channel_importance(model: VisionTransformer,
                                   probe: Probe) -> np.ndarray:
    """KL divergence caused by removing each residual channel; shape (d,)."""
    d = model.config.embed_dim
    scores = np.empty(d, dtype=np.float64)
    for i in range(d):
        with _zeroed(_residual_channel_slices(model, i)):
            scores[i] = _divergence(model, probe)
    return scores


def magnitude_residual_channel_importance(model: VisionTransformer) -> np.ndarray:
    d = model.config.embed_dim
    scores = np.zeros(d, dtype=np.float64)
    scores += np.abs(model.patch_embed.proj.weight.data).sum(axis=(1, 2, 3))
    scores += np.abs(model.pos_embed.data[0]).sum(axis=0)
    for block in model.blocks:
        scores += np.abs(block.attn.qkv.weight.data).sum(axis=0)
        scores += np.abs(block.attn.proj.weight.data).sum(axis=1)
        scores += np.abs(block.mlp.fc1.weight.data).sum(axis=0)
        scores += np.abs(block.mlp.fc2.weight.data).sum(axis=1)
    scores += np.abs(model.head.weight.data).sum(axis=0)
    return scores


# ----------------------------------------------------------------------
# Attention dims (stage 2)
# ----------------------------------------------------------------------
def _attention_unit_slices(model: VisionTransformer, block_idx: int,
                           head: int, dim: int):
    cfg = model.config
    a = cfg.resolved_attn_dim
    offset = head * cfg.head_dim + dim
    block = model.blocks[block_idx]
    rows = (np.array([offset, a + offset, 2 * a + offset]),)
    return [
        (block.attn.qkv.weight, rows),
        (block.attn.qkv.bias, rows),
        (block.attn.proj.weight, (slice(None), offset)),
    ]


def kl_attention_importance(model: VisionTransformer,
                            probe: Probe) -> np.ndarray:
    """KL per (block, head, dim) unit; shape (depth, h, head_dim)."""
    cfg = model.config
    scores = np.empty((cfg.depth, cfg.num_heads, cfg.head_dim), dtype=np.float64)
    for b in range(cfg.depth):
        for h in range(cfg.num_heads):
            for k in range(cfg.head_dim):
                with _zeroed(_attention_unit_slices(model, b, h, k)):
                    scores[b, h, k] = _divergence(model, probe)
    return scores


def magnitude_attention_importance(model: VisionTransformer) -> np.ndarray:
    cfg = model.config
    a = cfg.resolved_attn_dim
    scores = np.empty((cfg.depth, cfg.num_heads, cfg.head_dim), dtype=np.float64)
    for b, block in enumerate(model.blocks):
        qkv = np.abs(block.attn.qkv.weight.data)
        per_row = qkv.sum(axis=1)
        q, k, v = per_row[:a], per_row[a:2 * a], per_row[2 * a:]
        proj = np.abs(block.attn.proj.weight.data).sum(axis=0)
        combined = (q + k + v + proj).reshape(cfg.num_heads, cfg.head_dim)
        scores[b] = combined
    return scores


# ----------------------------------------------------------------------
# FFN hidden units (stage 3)
# ----------------------------------------------------------------------
def _ffn_unit_slices(model: VisionTransformer, block_idx: int, unit: int):
    block = model.blocks[block_idx]
    return [
        (block.mlp.fc1.weight, (unit,)),
        (block.mlp.fc1.bias, (unit,)),
        (block.mlp.fc2.weight, (slice(None), unit)),
    ]


def kl_ffn_importance(model: VisionTransformer, probe: Probe) -> np.ndarray:
    """KL per (block, hidden unit); shape (depth, c)."""
    cfg = model.config
    c = cfg.resolved_mlp_hidden
    scores = np.empty((cfg.depth, c), dtype=np.float64)
    for b in range(cfg.depth):
        for u in range(c):
            with _zeroed(_ffn_unit_slices(model, b, u)):
                scores[b, u] = _divergence(model, probe)
    return scores


def magnitude_ffn_importance(model: VisionTransformer) -> np.ndarray:
    cfg = model.config
    scores = np.empty((cfg.depth, cfg.resolved_mlp_hidden), dtype=np.float64)
    for b, block in enumerate(model.blocks):
        fc1 = np.abs(block.mlp.fc1.weight.data).sum(axis=1)
        fc2 = np.abs(block.mlp.fc2.weight.data).sum(axis=0)
        scores[b] = fc1 + fc2
    return scores
