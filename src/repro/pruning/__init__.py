"""Structured ViT pruning (Section IV-C) and baseline channel pruning."""

from .channel import prune_snn, prune_vgg, snn_filter_activations, vgg_filter_activations
from .importance import (
    Probe,
    kl_attention_importance,
    kl_ffn_importance,
    kl_residual_channel_importance,
    magnitude_attention_importance,
    magnitude_ffn_importance,
    magnitude_residual_channel_importance,
)
from .pipeline import PruneConfig, PrunedSubModel, prune_submodel
from .structured import (
    prune_ffn,
    prune_mhsa,
    prune_short_connection,
    pruned_dims,
    pruning_factor,
)
from .surgery import (
    prune_attention_dims,
    prune_ffn_hidden,
    prune_residual_channels,
    replace_classifier_head,
)

__all__ = [
    "Probe",
    "PruneConfig",
    "PrunedSubModel",
    "kl_attention_importance",
    "kl_ffn_importance",
    "kl_residual_channel_importance",
    "magnitude_attention_importance",
    "magnitude_ffn_importance",
    "magnitude_residual_channel_importance",
    "prune_attention_dims",
    "prune_ffn",
    "prune_ffn_hidden",
    "prune_mhsa",
    "prune_residual_channels",
    "prune_short_connection",
    "prune_snn",
    "prune_submodel",
    "prune_vgg",
    "pruned_dims",
    "pruning_factor",
    "replace_classifier_head",
    "snn_filter_activations",
    "vgg_filter_activations",
]
