"""Weight surgery: build a smaller ViT from a larger one by slicing weights.

Each function materializes a brand-new :class:`VisionTransformer` with a
reduced :class:`ViTConfig` and copies over the retained slices, so pruned
sub-models remain ordinary ViTs (the property Section IV-C highlights:
"even after pruning, the sub-models still retain the structure of Vision
Transformer").

Axis conventions (``nn.Linear`` stores weight as ``(out_features,
in_features)``):

* residual channels ``d`` appear as: patch-conv output channels, cls/pos
  embedding last axis, LayerNorm params, qkv *input* columns, attention
  output-projection *output* rows, fc1 input columns, fc2 output rows,
  final norm, and head input columns;
* attention dims appear as rows of the qkv projection — laid out
  ``[q | k | v]``, each section head-major ``(h, head_dim)`` — and as input
  columns of the output projection;
* FFN hidden dims appear as fc1 output rows and fc2 input columns.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..models.vit import ViTConfig, VisionTransformer


def _check_unique_sorted(indices: np.ndarray, bound: int, label: str) -> np.ndarray:
    idx = np.asarray(indices, dtype=np.int64)
    if idx.ndim != 1 or idx.size == 0:
        raise ValueError(f"{label}: need a non-empty 1-D index array")
    if len(np.unique(idx)) != len(idx):
        raise ValueError(f"{label}: indices must be unique")
    if idx.min() < 0 or idx.max() >= bound:
        raise ValueError(f"{label}: indices out of range [0, {bound})")
    return np.sort(idx)


def prune_residual_channels(model: VisionTransformer,
                            keep: np.ndarray) -> VisionTransformer:
    """Stage 1 — keep only residual-stream channels ``keep`` (d -> len(keep))."""
    cfg = model.config
    keep = _check_unique_sorted(keep, cfg.embed_dim, "residual channels")
    new_cfg = dataclasses.replace(cfg, embed_dim=len(keep),
                                  attn_dim=cfg.resolved_attn_dim,
                                  mlp_hidden=cfg.resolved_mlp_hidden)
    new = VisionTransformer(new_cfg)

    new.patch_embed.proj.weight.data = model.patch_embed.proj.weight.data[keep].copy()
    new.patch_embed.proj.bias.data = model.patch_embed.proj.bias.data[keep].copy()
    new.cls_token.data = model.cls_token.data[:, :, keep].copy()
    new.pos_embed.data = model.pos_embed.data[:, :, keep].copy()

    for old_block, new_block in zip(model.blocks, new.blocks):
        new_block.norm1.weight.data = old_block.norm1.weight.data[keep].copy()
        new_block.norm1.bias.data = old_block.norm1.bias.data[keep].copy()
        new_block.attn.qkv.weight.data = old_block.attn.qkv.weight.data[:, keep].copy()
        new_block.attn.qkv.bias.data = old_block.attn.qkv.bias.data.copy()
        new_block.attn.proj.weight.data = old_block.attn.proj.weight.data[keep].copy()
        new_block.attn.proj.bias.data = old_block.attn.proj.bias.data[keep].copy()
        new_block.norm2.weight.data = old_block.norm2.weight.data[keep].copy()
        new_block.norm2.bias.data = old_block.norm2.bias.data[keep].copy()
        new_block.mlp.fc1.weight.data = old_block.mlp.fc1.weight.data[:, keep].copy()
        new_block.mlp.fc1.bias.data = old_block.mlp.fc1.bias.data.copy()
        new_block.mlp.fc2.weight.data = old_block.mlp.fc2.weight.data[keep].copy()
        new_block.mlp.fc2.bias.data = old_block.mlp.fc2.bias.data[keep].copy()

    new.norm.weight.data = model.norm.weight.data[keep].copy()
    new.norm.bias.data = model.norm.bias.data[keep].copy()
    new.head.weight.data = model.head.weight.data[:, keep].copy()
    new.head.bias.data = model.head.bias.data.copy()
    return new


def attention_unit_rows(config: ViTConfig, head: int, dim: int) -> tuple[int, int, int]:
    """Row indices of one (head, dim) unit in the q, k and v sections."""
    a = config.resolved_attn_dim
    offset = head * config.head_dim + dim
    return offset, a + offset, 2 * a + offset


def prune_attention_dims(model: VisionTransformer,
                         keep_per_head: list[list[np.ndarray]]) -> VisionTransformer:
    """Stage 2 — keep per-head projection dims.

    ``keep_per_head[block][head]`` lists the head-local dims to keep; every
    head of a block must keep the same count so the reshape-based attention
    stays rectangular (this realizes the paper's "reduce total heads to
    s×h without discarding any head").
    """
    cfg = model.config
    if len(keep_per_head) != cfg.depth:
        raise ValueError("need keep indices for every block")
    counts = {len(_check_unique_sorted(np.asarray(k), cfg.head_dim, "attn dims"))
              for block in keep_per_head for k in block}
    if len(counts) != 1:
        raise ValueError("all heads must keep the same number of dims")
    if any(len(block) != cfg.num_heads for block in keep_per_head):
        raise ValueError("need keep indices for every head")
    kept_per_head = counts.pop()
    new_attn = kept_per_head * cfg.num_heads
    new_cfg = dataclasses.replace(cfg, attn_dim=new_attn,
                                  mlp_hidden=cfg.resolved_mlp_hidden)
    new = VisionTransformer(new_cfg)

    _copy_embedding(model, new)
    a = cfg.resolved_attn_dim
    for b, (old_block, new_block) in enumerate(zip(model.blocks, new.blocks)):
        section = np.concatenate([
            np.sort(np.asarray(keep_per_head[b][h], dtype=np.int64)) + h * cfg.head_dim
            for h in range(cfg.num_heads)])
        rows = np.concatenate([section, a + section, 2 * a + section])
        new_block.norm1.weight.data = old_block.norm1.weight.data.copy()
        new_block.norm1.bias.data = old_block.norm1.bias.data.copy()
        new_block.attn.qkv.weight.data = old_block.attn.qkv.weight.data[rows].copy()
        new_block.attn.qkv.bias.data = old_block.attn.qkv.bias.data[rows].copy()
        new_block.attn.proj.weight.data = old_block.attn.proj.weight.data[:, section].copy()
        new_block.attn.proj.bias.data = old_block.attn.proj.bias.data.copy()
        new_block.norm2.weight.data = old_block.norm2.weight.data.copy()
        new_block.norm2.bias.data = old_block.norm2.bias.data.copy()
        new_block.mlp.fc1.weight.data = old_block.mlp.fc1.weight.data.copy()
        new_block.mlp.fc1.bias.data = old_block.mlp.fc1.bias.data.copy()
        new_block.mlp.fc2.weight.data = old_block.mlp.fc2.weight.data.copy()
        new_block.mlp.fc2.bias.data = old_block.mlp.fc2.bias.data.copy()
    _copy_tail(model, new)
    return new


def prune_ffn_hidden(model: VisionTransformer,
                     keep_per_block: list[np.ndarray]) -> VisionTransformer:
    """Stage 3 — keep FFN hidden units per block (c -> len(keep))."""
    cfg = model.config
    if len(keep_per_block) != cfg.depth:
        raise ValueError("need keep indices for every block")
    counts = {len(_check_unique_sorted(np.asarray(k), cfg.resolved_mlp_hidden, "ffn"))
              for k in keep_per_block}
    if len(counts) != 1:
        raise ValueError("all blocks must keep the same hidden width")
    new_cfg = dataclasses.replace(cfg, attn_dim=cfg.resolved_attn_dim,
                                  mlp_hidden=counts.pop())
    new = VisionTransformer(new_cfg)

    _copy_embedding(model, new)
    for b, (old_block, new_block) in enumerate(zip(model.blocks, new.blocks)):
        keep = np.sort(np.asarray(keep_per_block[b], dtype=np.int64))
        new_block.norm1.weight.data = old_block.norm1.weight.data.copy()
        new_block.norm1.bias.data = old_block.norm1.bias.data.copy()
        new_block.attn.qkv.weight.data = old_block.attn.qkv.weight.data.copy()
        new_block.attn.qkv.bias.data = old_block.attn.qkv.bias.data.copy()
        new_block.attn.proj.weight.data = old_block.attn.proj.weight.data.copy()
        new_block.attn.proj.bias.data = old_block.attn.proj.bias.data.copy()
        new_block.norm2.weight.data = old_block.norm2.weight.data.copy()
        new_block.norm2.bias.data = old_block.norm2.bias.data.copy()
        new_block.mlp.fc1.weight.data = old_block.mlp.fc1.weight.data[keep].copy()
        new_block.mlp.fc1.bias.data = old_block.mlp.fc1.bias.data[keep].copy()
        new_block.mlp.fc2.weight.data = old_block.mlp.fc2.weight.data[:, keep].copy()
        new_block.mlp.fc2.bias.data = old_block.mlp.fc2.bias.data.copy()
    _copy_tail(model, new)
    return new


def replace_classifier_head(model: VisionTransformer, num_classes: int,
                            rng: np.random.Generator | None = None) -> VisionTransformer:
    """Clone the model with a freshly initialized ``num_classes``-way head."""
    cfg = dataclasses.replace(model.config, num_classes=num_classes,
                              attn_dim=model.config.resolved_attn_dim,
                              mlp_hidden=model.config.resolved_mlp_hidden)
    new = VisionTransformer(cfg, rng=rng)
    _copy_embedding(model, new)
    for old_block, new_block in zip(model.blocks, new.blocks):
        for name, param in old_block.named_parameters():
            dict(new_block.named_parameters())[name].data = param.data.copy()
    new.norm.weight.data = model.norm.weight.data.copy()
    new.norm.bias.data = model.norm.bias.data.copy()
    return new


def _copy_embedding(src: VisionTransformer, dst: VisionTransformer) -> None:
    dst.patch_embed.proj.weight.data = src.patch_embed.proj.weight.data.copy()
    dst.patch_embed.proj.bias.data = src.patch_embed.proj.bias.data.copy()
    dst.cls_token.data = src.cls_token.data.copy()
    dst.pos_embed.data = src.pos_embed.data.copy()


def _copy_tail(src: VisionTransformer, dst: VisionTransformer) -> None:
    dst.norm.weight.data = src.norm.weight.data.copy()
    dst.norm.bias.data = src.norm.bias.data.copy()
    dst.head.weight.data = src.head.weight.data.copy()
    dst.head.bias.data = src.head.bias.data.copy()
