"""Algorithm 2 — class-wise sub-model pruning.

Given the trained original model, a class subset ``C_i`` and a pruning head
number ``hp_i``, this pipeline:

1. resamples the training data to ``C_i`` and adapts the classification
   head to ``|C_i|`` outputs;
2. runs the three pruning stages (residual channels, MHSA dims, FFN
   hidden), finetuning after each stage to recover accuracy;
3. retrains the pruned sub-model on its class subset.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.training import TrainConfig, train_classifier
from ..data.synthetic import Dataset
from ..models.vit import VisionTransformer
from .importance import Probe
from .structured import Backend, prune_ffn, prune_mhsa, prune_short_connection
from .surgery import replace_classifier_head


@dataclasses.dataclass
class PruneConfig:
    """Hyper-parameters of the per-sub-model pruning pipeline."""

    backend: Backend = "kl"
    probe_size: int = 32
    head_adapt_epochs: int = 2      # retrain the new |C_i|-way head pre-pruning
    stage_finetune_epochs: int = 1  # finetune after each pruning stage
    retrain_epochs: int = 3         # Algorithm 2's final retrain
    batch_size: int = 32
    lr: float = 1e-3
    seed: int = 0
    verbose: bool = False

    def train_config(self, epochs: int) -> TrainConfig:
        return TrainConfig(epochs=epochs, batch_size=self.batch_size,
                           lr=self.lr, seed=self.seed, verbose=self.verbose)


@dataclasses.dataclass
class PrunedSubModel:
    """The product of Algorithm 2 for one class subset.

    ``one_vs_rest`` marks singleton-subset sub-models trained as binary
    own-class-vs-rest classifiers (a 1-way softmax carries no training or
    KL signal; see :func:`repro.data.one_vs_rest_dataset`).  Their head has
    two outputs: index 1 scores the positive class.
    """

    model: VisionTransformer
    classes: list[int]
    hp: int
    history: dict[str, float]
    one_vs_rest: bool = False


def _probe_from(dataset: Dataset, model: VisionTransformer, size: int,
                seed: int) -> Probe:
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(dataset.x_train), size=min(size, len(dataset.x_train)),
                     replace=False)
    return Probe.from_model(model, dataset.x_train[idx])


def prune_submodel(original: VisionTransformer, dataset: Dataset,
                   classes: list[int], hp: int,
                   config: PruneConfig | None = None) -> PrunedSubModel:
    """Run Algorithm 2: resample -> 3-stage prune -> retrain."""
    config = config or PruneConfig()
    history: dict[str, float] = {}
    rng = np.random.default_rng(config.seed)

    # Line 1: resample (X_i, y_i) to the class subset.  A singleton subset
    # becomes a binary one-vs-rest task (a 1-way softmax has neither a
    # training gradient nor a KL-scoring signal).
    one_vs_rest = len(classes) == 1
    if one_vs_rest:
        from ..data.synthetic import one_vs_rest_dataset

        subset = one_vs_rest_dataset(dataset, classes[0], rng)
    else:
        subset = dataset.subset_of_classes(classes)

    # Adapt the classification head before pruning so the KL reference
    # distribution is over the sub-model's own label space.
    model = replace_classifier_head(original, subset.num_classes, rng=rng)
    if hp == 0 and len(classes) == original.config.num_classes:
        # Degenerate single-device, no-pruning case: keep the trained head.
        model.head.weight.data = original.head.weight.data.copy()
        model.head.bias.data = original.head.bias.data.copy()
    elif config.head_adapt_epochs > 0:
        result = train_classifier(model, subset.x_train, subset.y_train,
                                  config.train_config(config.head_adapt_epochs))
        history["head_adapt_acc"] = result.final_accuracy

    if hp > 0:
        probe = _probe_from(subset, model, config.probe_size, config.seed)

        # Line 2: PruneShortConnection.
        model = prune_short_connection(model, hp, probe, config.backend)
        _finetune(model, subset, config, history, "stage1")

        # Line 3: PruneMHSA (fresh probe against the current model).
        probe = _probe_from(subset, model, config.probe_size, config.seed)
        model = prune_mhsa(model, hp, probe, config.backend)
        _finetune(model, subset, config, history, "stage2")

        # Line 4: PruneFFN.
        probe = _probe_from(subset, model, config.probe_size, config.seed)
        model = prune_ffn(model, hp, probe, config.backend)
        _finetune(model, subset, config, history, "stage3")

    # Line 5: retrain.
    if config.retrain_epochs > 0:
        result = train_classifier(model, subset.x_train, subset.y_train,
                                  config.train_config(config.retrain_epochs))
        history["retrain_acc"] = result.final_accuracy

    return PrunedSubModel(model=model, classes=list(classes), hp=hp,
                          history=history, one_vs_rest=one_vs_rest)


def _finetune(model: VisionTransformer, subset: Dataset, config: PruneConfig,
              history: dict[str, float], stage: str) -> None:
    if config.stage_finetune_epochs > 0:
        result = train_classifier(model, subset.x_train, subset.y_train,
                                  config.train_config(config.stage_finetune_epochs))
        history[f"{stage}_finetune_acc"] = result.final_accuracy
