"""Channel-wise filter pruning for the Split-CNN / Split-SNN baselines.

NNFacet and EC-SNN shrink their per-class sub-models with filter pruning in
the style of Network Trimming (Hu et al., 2016): filters whose activations
are weakest on a probe batch are removed, uniformly across conv layers.
This module implements that surgery for our VGG and ConvSNN models so the
baseline comparison in Table III / Fig. 7 follows the same protocol as the
original systems.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..models.snn import ConvSNN, SNNConfig
from ..models.vgg import VGG, VGGConfig


def _keep_count(original: int, ratio: float) -> int:
    return max(1, int(round(original * ratio)))


# ----------------------------------------------------------------------
# VGG
# ----------------------------------------------------------------------
def vgg_filter_activations(model: VGG, x: np.ndarray) -> list[np.ndarray]:
    """Mean |activation| per filter for each conv layer, on a probe batch."""
    scores: list[np.ndarray] = []
    with nn.no_grad():
        out = nn.Tensor(x)
        for layer in model.features:
            out = layer(out)
            if isinstance(layer, nn.Conv2d):
                scores.append(np.abs(out.data).mean(axis=(0, 2, 3)))
    return scores


def prune_vgg(model: VGG, keep_ratio: float, probe_x: np.ndarray) -> VGG:
    """Filter-prune every conv layer of a VGG to ``keep_ratio`` width."""
    if not 0.0 < keep_ratio <= 1.0:
        raise ValueError("keep_ratio must be in (0, 1]")
    cfg = model.config
    activations = vgg_filter_activations(model, probe_x)

    # Select kept filters per conv layer.
    keeps: list[np.ndarray] = []
    for act in activations:
        count = _keep_count(len(act), keep_ratio)
        keeps.append(np.sort(np.argsort(act)[-count:]))

    # Build the pruned architecture via a plan override so the new model's
    # config keeps describing the true widths (vgg_flops/vgg_param_count
    # stay correct).  The classifier hidden width shrinks from the *actual*
    # trained width by keep_ratio.
    width_iter = iter(len(k) for k in keeps)
    override = tuple(entry if entry == "M" else next(width_iter)
                     for entry in cfg.scaled_plan())
    old_hidden = list(model.classifier)[1].out_features
    new_hidden = max(8, int(round(old_hidden * keep_ratio)))
    new_cfg = dataclasses.replace(cfg, name=f"{cfg.name}-pruned",
                                  plan_override=override, width_scale=1.0,
                                  classifier_hidden=new_hidden)
    new = VGG(new_cfg)

    # Copy surviving weights.
    prev_keep: np.ndarray | None = None
    conv_idx = 0
    old_layers = list(model.features)
    new_layers = list(new.features)
    for old_layer, new_layer in zip(old_layers, new_layers):
        if isinstance(old_layer, nn.Conv2d):
            keep = keeps[conv_idx]
            w = old_layer.weight.data[keep]
            if prev_keep is not None:
                w = w[:, prev_keep]
            new_layer.weight.data = w.copy()
            new_layer.bias.data = old_layer.bias.data[keep].copy()
            prev_keep = keep
            conv_idx += 1
        elif isinstance(old_layer, nn.BatchNorm2d):
            keep = keeps[conv_idx - 1]
            new_layer.weight.data = old_layer.weight.data[keep].copy()
            new_layer.bias.data = old_layer.bias.data[keep].copy()
            np.copyto(new_layer.running_mean, old_layer.running_mean[keep])
            np.copyto(new_layer.running_var, old_layer.running_var[keep])

    # Classifier: the first linear reads flattened (C, S, S) features, so
    # keep the spatial block of every surviving channel.
    num_pools = sum(1 for e in cfg.scaled_plan() if e == "M")
    spatial = cfg.image_size // (2 ** num_pools)
    flat_keep = (prev_keep[:, None] * spatial * spatial
                 + np.arange(spatial * spatial)[None, :]).reshape(-1)

    old_cls = list(model.classifier)
    new_cls = list(new.classifier)
    old_fc1, old_fc2, old_fc3 = old_cls[1], old_cls[3], old_cls[5]
    new_fc1, new_fc2, new_fc3 = new_cls[1], new_cls[3], new_cls[5]
    hidden_keep = _hidden_keep(old_fc1, probe_count=new_fc1.out_features)
    new_fc1.weight.data = old_fc1.weight.data[hidden_keep][:, flat_keep].copy()
    new_fc1.bias.data = old_fc1.bias.data[hidden_keep].copy()
    hidden_keep2 = _hidden_keep(old_fc2, probe_count=new_fc2.out_features)
    new_fc2.weight.data = old_fc2.weight.data[hidden_keep2][:, hidden_keep].copy()
    new_fc2.bias.data = old_fc2.bias.data[hidden_keep2].copy()
    new_fc3.weight.data = old_fc3.weight.data[:, hidden_keep2].copy()
    new_fc3.bias.data = old_fc3.bias.data.copy()
    return new


def _hidden_keep(fc: nn.Linear, probe_count: int) -> np.ndarray:
    """Keep the ``probe_count`` highest-magnitude rows of a linear layer."""
    scores = np.abs(fc.weight.data).sum(axis=1) + np.abs(fc.bias.data)
    return np.sort(np.argsort(scores)[-probe_count:])



# ----------------------------------------------------------------------
# ConvSNN
# ----------------------------------------------------------------------
def snn_filter_activations(model: ConvSNN, x: np.ndarray) -> list[np.ndarray]:
    """Mean spike rate per filter for each LIF conv layer on a probe batch."""
    rates = [np.zeros(layer.conv.out_channels) for layer in model.lif_layers]
    with nn.no_grad():
        model.reset_states()
        for _ in range(model.config.time_steps):
            out = nn.Tensor(x)
            for i, layer in enumerate(model.lif_layers):
                out = layer(out)
                rates[i] += out.data.mean(axis=(0, 2, 3))
                out = model.pool(out)
    return [r / model.config.time_steps for r in rates]


def prune_snn(model: ConvSNN, keep_ratio: float, probe_x: np.ndarray) -> ConvSNN:
    """Filter-prune every LIF conv layer of a ConvSNN to ``keep_ratio``."""
    if not 0.0 < keep_ratio <= 1.0:
        raise ValueError("keep_ratio must be in (0, 1]")
    cfg = model.config
    rates = snn_filter_activations(model, probe_x)
    keeps = [np.sort(np.argsort(r)[-_keep_count(len(r), keep_ratio):])
             for r in rates]

    new_channels = tuple(len(k) for k in keeps)
    new_cfg = SNNConfig(
        image_size=cfg.image_size, in_channels=cfg.in_channels,
        num_classes=cfg.num_classes, channels=new_channels,
        time_steps=cfg.time_steps, decay=cfg.decay, threshold=cfg.threshold,
        classifier_hidden=max(8, int(round(model.fc_hidden.out_features
                                           * keep_ratio))),
        width_scale=1.0, name=f"{cfg.name}-pruned")
    new = ConvSNN(new_cfg)

    prev_keep: np.ndarray | None = None
    for old_layer, new_layer, keep in zip(model.lif_layers, new.lif_layers, keeps):
        w = old_layer.conv.weight.data[keep]
        if prev_keep is not None:
            w = w[:, prev_keep]
        new_layer.conv.weight.data = w.copy()
        new_layer.conv.bias.data = old_layer.conv.bias.data[keep].copy()
        prev_keep = keep

    spatial = cfg.image_size // (2 ** len(cfg.scaled_channels()))
    flat_keep = (prev_keep[:, None] * spatial * spatial
                 + np.arange(spatial * spatial)[None, :]).reshape(-1)
    hidden_keep = _hidden_keep(model.fc_hidden, new.fc_hidden.out_features)
    new.fc_hidden.weight.data = model.fc_hidden.weight.data[hidden_keep][:, flat_keep].copy()
    new.fc_hidden.bias.data = model.fc_hidden.bias.data[hidden_keep].copy()
    new.fc_out.weight.data = model.fc_out.weight.data[:, hidden_keep].copy()
    new.fc_out.bias.data = model.fc_out.bias.data.copy()
    return new
