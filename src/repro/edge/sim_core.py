"""A minimal discrete-event simulation kernel.

Provides an event queue with deterministic tie-breaking and FIFO resources
with deterministic service times — enough to model edge devices (serial
compute), links (serial transfer) and fusion barriers without pulling in a
full simulation framework.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Callable


class Simulator:
    """Event loop: schedule callbacks at absolute times, run to quiescence."""

    def __init__(self):
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def run(self, until: float | None = None) -> None:
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            callback()


@dataclasses.dataclass
class FifoResource:
    """A serially-shared resource (CPU, link): requests queue in FIFO order.

    ``acquire`` returns the time at which the request's service *finishes*;
    the caller schedules its completion callback at that time.  Utilization
    statistics are tracked for reporting.
    """

    sim: Simulator
    name: str
    _free_at: float = 0.0
    busy_seconds: float = 0.0
    served: int = 0

    def acquire(self, service_seconds: float) -> float:
        if service_seconds < 0:
            raise ValueError("service time must be non-negative")
        start = max(self.sim.now, self._free_at)
        finish = start + service_seconds
        self._free_at = finish
        self.busy_seconds += service_seconds
        self.served += 1
        return finish

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / horizon)


class Barrier:
    """Fires a callback once ``expected`` arrivals have occurred."""

    def __init__(self, expected: int, callback: Callable[[], None]):
        if expected < 1:
            raise ValueError("expected must be >= 1")
        self.expected = expected
        self.arrived = 0
        self.callback = callback
        self.fired = False

    def arrive(self) -> None:
        if self.fired:
            raise RuntimeError("barrier already fired")
        self.arrived += 1
        if self.arrived == self.expected:
            self.fired = True
            self.callback()
