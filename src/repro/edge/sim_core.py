"""A minimal discrete-event simulation kernel.

Provides an event queue with deterministic tie-breaking and FIFO resources
with deterministic service times — enough to model edge devices (serial
compute), links (serial transfer) and fusion barriers without pulling in a
full simulation framework.

The kernel is deliberately small and hot: every class is ``__slots__``-ed
(fleet-scale runs allocate one :class:`FifoResource` per device plus
millions of queue entries) and :meth:`Simulator.run` drains the heap with
locally-bound references instead of per-event attribute lookups.  For the
star-topology inference pattern the event loop is bypassed entirely — see
:mod:`repro.edge.fastsim` for the vectorized scorer that reproduces this
kernel's results bit for bit.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Callable


class Simulator:
    """Event loop: schedule callbacks at absolute times, run to quiescence.

    Events are stored as ``(time, seq, callback)`` tuples in a binary heap
    (array-backed, cache-friendly); ``seq`` is a monotone counter so ties
    execute in scheduling order, which makes runs deterministic.
    """

    __slots__ = ("_queue", "_counter", "now")

    def __init__(self):
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def run(self, until: float | None = None) -> None:
        """Run events in time order; ``until`` bounds the clock (inclusive).

        With ``until`` the clock always advances to exactly ``until`` when
        it returns, even if no event lands there — so horizon-based
        statistics (e.g. :meth:`FifoResource.utilization`) see the full
        observation window and repeated ``run(until=...)`` calls resume
        from the horizon rather than from the last executed event.
        """
        # Batched draining: bind the heap and heappop once and loop tight.
        # Callbacks may push new events; heappop keeps the heap invariant,
        # so re-reading queue[0] each iteration stays correct.
        queue = self._queue
        pop = heapq.heappop
        if until is None:
            while queue:
                time, _, callback = pop(queue)
                self.now = time
                callback()
            return
        while queue and queue[0][0] <= until:
            time, _, callback = pop(queue)
            self.now = time
            callback()
        if until > self.now:
            self.now = until


@dataclasses.dataclass(slots=True)
class FifoResource:
    """A serially-shared resource (CPU, link): requests queue in FIFO order.

    ``acquire`` returns the time at which the request's service *finishes*;
    the caller schedules its completion callback at that time.  Utilization
    statistics are tracked for reporting.  ``busy_seconds`` is the total
    service time ever booked; :meth:`busy_within` clamps it to an
    observation horizon so work scheduled past the horizon (the resource is
    booked into the future at acquire time) is not counted as utilization
    inside it.
    """

    sim: Simulator
    name: str
    _free_at: float = 0.0
    busy_seconds: float = 0.0
    served: int = 0
    # Disjoint busy intervals, merged when back-to-back; bounded by the
    # number of idle gaps, not by the number of requests.
    _segments: list[list[float]] = dataclasses.field(default_factory=list)

    def acquire(self, service_seconds: float) -> float:
        if service_seconds < 0:
            raise ValueError("service time must be non-negative")
        start = max(self.sim.now, self._free_at)
        finish = start + service_seconds
        self._free_at = finish
        self.busy_seconds += service_seconds
        self.served += 1
        if self._segments and start <= self._segments[-1][1]:
            self._segments[-1][1] = finish
        elif service_seconds > 0:
            self._segments.append([start, finish])
        return finish

    def segments(self) -> list[tuple[float, float]]:
        """The merged busy intervals booked so far, as (start, finish)."""
        return [(start, finish) for start, finish in self._segments]

    def busy_within(self, horizon: float) -> float:
        """Service seconds falling inside ``[0, horizon]``."""
        total = 0.0
        for start, finish in self._segments:
            if start >= horizon:
                break
            total += min(finish, horizon) - start
        return total

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_within(horizon) / horizon)


class Barrier:
    """Fires a callback once ``expected`` arrivals have occurred.

    Arrivals after the barrier has fired are tolerated and counted in
    ``late`` rather than raising: a straggler reply landing after degraded
    fusion already proceeded without it must not kill the event loop.
    """

    __slots__ = ("expected", "arrived", "late", "callback", "fired")

    def __init__(self, expected: int, callback: Callable[[], None]):
        if expected < 1:
            raise ValueError("expected must be >= 1")
        self.expected = expected
        self.arrived = 0
        self.late = 0
        self.callback = callback
        self.fired = False

    def arrive(self) -> None:
        if self.fired:
            self.late += 1
            return
        self.arrived += 1
        if self.arrived == self.expected:
            self.fired = True
            self.callback()
