"""Edge-device performance model calibrated against the paper's testbed.

The paper measures single-sample inference latency on Raspberry Pi 4B
boards (Table I).  Latency there is compute-bound, so we model a device as
an effective MAC throughput plus memory/energy budgets.  The throughput
constant is calibrated so that ViT-Base's analytic MAC count maps exactly
to the paper's measured 36.94 s; ViT-Small and ViT-Large then land within
±9 % of their measured values (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses

from ..assignment.problem import DeviceSpec
from ..models.vit import vit_base_config
from ..profiling import paper_flops

# Paper Table I: ViT-Base takes 36.94 s on a Raspberry Pi 4B.
_VIT_BASE_LATENCY_S = 36.94
PI4B_MACS_PER_SECOND = paper_flops(vit_base_config()) / _VIT_BASE_LATENCY_S

# Raspberry Pi 4B (4 GB variant): usable application memory.
PI4B_MEMORY_BYTES = 4 * 2 ** 30

# Default per-device energy budget expressed as FLOPs, following the
# paper's formulation (E_i in Eq. 1).  Chosen to be ample for single-sample
# workloads; experiments override it when studying energy pressure.
PI4B_ENERGY_FLOPS = 100e9


@dataclasses.dataclass(frozen=True)
class DeviceModel:
    """A simulated edge device: compute throughput + resource budgets."""

    device_id: str
    macs_per_second: float = PI4B_MACS_PER_SECOND
    memory_bytes: int = PI4B_MEMORY_BYTES
    energy_flops: float = PI4B_ENERGY_FLOPS

    def compute_seconds(self, macs: float) -> float:
        """Wall-clock seconds to execute ``macs`` multiply-accumulates."""
        if macs < 0:
            raise ValueError("macs must be non-negative")
        return macs / self.macs_per_second

    def to_spec(self) -> DeviceSpec:
        return DeviceSpec(device_id=self.device_id,
                          memory_bytes=self.memory_bytes,
                          energy_flops=self.energy_flops)


def raspberry_pi_4b(device_id: str) -> DeviceModel:
    return DeviceModel(device_id=device_id)


def make_fleet(count: int, prefix: str = "pi", **overrides) -> list[DeviceModel]:
    """A homogeneous fleet of Raspberry-Pi-class devices."""
    return [DeviceModel(device_id=f"{prefix}-{i}", **overrides)
            for i in range(count)]


def heterogeneous_fleet(throughputs: list[float],
                        prefix: str = "dev") -> list[DeviceModel]:
    """A fleet with per-device throughput multipliers (e.g. mixed Pi models)."""
    return [DeviceModel(device_id=f"{prefix}-{i}",
                        macs_per_second=PI4B_MACS_PER_SECOND * factor)
            for i, factor in enumerate(throughputs)]
