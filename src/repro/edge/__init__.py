"""Edge-device substrate: calibrated device models, network models, a
discrete-event simulator, and process-based device emulation."""

from .device import (
    DeviceModel,
    PI4B_ENERGY_FLOPS,
    PI4B_MACS_PER_SECOND,
    PI4B_MEMORY_BYTES,
    heterogeneous_fleet,
    make_fleet,
    raspberry_pi_4b,
)
from .network import (
    FLOAT32_BYTES,
    GIGABIT_BPS,
    LinkModel,
    RAW_IMAGE_BYTES,
    StarTopology,
    TC_CAP_BPS,
    communication_reduction,
    feature_bytes,
    gigabit_link,
    tc_capped_link,
    uniform_star,
)
from .runtime import EdgeCluster, InferenceTiming, WorkerSpec
from .sim_core import Barrier, FifoResource, Simulator
from .simulator import (
    DeploymentSpec,
    SimulationResult,
    SubModelProfile,
    energy_report,
    simulate_inference,
    single_device_latency,
    utilization_report,
)

__all__ = [
    "Barrier",
    "DeploymentSpec",
    "DeviceModel",
    "EdgeCluster",
    "FLOAT32_BYTES",
    "FifoResource",
    "GIGABIT_BPS",
    "InferenceTiming",
    "LinkModel",
    "PI4B_ENERGY_FLOPS",
    "PI4B_MACS_PER_SECOND",
    "PI4B_MEMORY_BYTES",
    "RAW_IMAGE_BYTES",
    "SimulationResult",
    "Simulator",
    "StarTopology",
    "SubModelProfile",
    "TC_CAP_BPS",
    "WorkerSpec",
    "communication_reduction",
    "energy_report",
    "feature_bytes",
    "gigabit_link",
    "heterogeneous_fleet",
    "make_fleet",
    "raspberry_pi_4b",
    "simulate_inference",
    "single_device_latency",
    "tc_capped_link",
    "uniform_star",
    "utilization_report",
]
