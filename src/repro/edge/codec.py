"""Feature wire codecs: shrink bytes-on-the-wire for shipped features.

The paper's deployment is communication-bound by design — every device
sits behind a tc-capped 2 Mbps uplink — so the bytes a worker ships per
feature vector translate directly into served latency.  A
:class:`FeatureCodec` encodes a worker's ``(N, D)`` float32 feature array
into a compact byte payload at the worker and decodes it back at the
server; the emulated link charges
:meth:`~repro.edge.network.LinkModel.transfer_seconds` on the *encoded*
byte count, so a smaller codec is a faster fleet.

Built-in codecs:

* ``raw32`` — float32 verbatim (4 B/value), lossless, the default;
* ``f16``  — IEEE half precision (2 B/value), ~1e-3 relative error;
* ``q8``   — per-row affine int8 quantization (1 B/value + 8 B/row for
  the row's min/scale), max abs error half a quantization step.

Any codec name may carry a ``+zlib`` suffix (e.g. ``q8+zlib``) to wrap
the payload in DEFLATE — data-dependent, so its *estimated* bytes (used
by the planner's DES scoring) conservatively equal the base codec's.

Custom codecs register via :func:`register_codec` and become usable
everywhere a codec name is accepted (``WorkerSpec.codec``,
``DeploymentPlan.codec``, ``serve --codec``).  Like model kinds,
registrations must run at **import time** to reach workers on the
process-based transports (which re-import this module); the in-process
transport also sees runtime registrations.  A codec unknown inside a
worker surfaces as a typed "failed to start" error, not a hang.
"""

from __future__ import annotations

import dataclasses
import math
import zlib

import numpy as np

FLOAT32_BYTES = 4


@dataclasses.dataclass(frozen=True)
class EncodedFeatures:
    """A codec's wire representation of one ``(N, D)`` feature array."""

    codec: str                         # name of the codec that produced it
    shape: tuple[int, int]             # (num_samples, feature_dim)
    payload: bytes                     # everything needed to decode

    @property
    def nbytes(self) -> int:
        """Bytes on the wire — what the emulated link charges for."""
        return len(self.payload)


def _as_features(x: np.ndarray) -> np.ndarray:
    x = np.ascontiguousarray(x, dtype=np.float32)
    if x.ndim != 2:
        raise ValueError(f"feature codecs expect a (N, D) array, got shape "
                         f"{x.shape}")
    return x


class FeatureCodec:
    """Base class: float32 verbatim (the ``raw32`` behaviour)."""

    name = "raw32"
    bytes_per_value: float = float(FLOAT32_BYTES)
    row_overhead_bytes: int = 0
    # Expected fused-accuracy cost of the codec's quantization error; the
    # planner uses it when no trained system exists to measure against.
    nominal_accuracy_drop: float = 0.0

    def encode(self, features: np.ndarray) -> EncodedFeatures:
        features = _as_features(features)
        return EncodedFeatures(self.name, features.shape, features.tobytes())

    def decode(self, encoded: EncodedFeatures) -> np.ndarray:
        return np.frombuffer(encoded.payload, dtype=np.float32).reshape(
            encoded.shape).copy()

    def estimate_bytes(self, feature_dim: int, num_samples: int = 1) -> int:
        """A-priori wire bytes (what the planner's DES scoring uses)."""
        per_row = self.bytes_per_value * feature_dim + self.row_overhead_bytes
        return int(math.ceil(per_row * num_samples))


class F16Codec(FeatureCodec):
    name = "f16"
    bytes_per_value = 2.0
    nominal_accuracy_drop = 1e-4

    def encode(self, features: np.ndarray) -> EncodedFeatures:
        features = _as_features(features)
        return EncodedFeatures(self.name, features.shape,
                               features.astype(np.float16).tobytes())

    def decode(self, encoded: EncodedFeatures) -> np.ndarray:
        return np.frombuffer(encoded.payload, dtype=np.float16).reshape(
            encoded.shape).astype(np.float32)


class Q8Codec(FeatureCodec):
    """Per-row affine int8: ``x ≈ lo + q * (hi - lo) / 255``.

    Each row (one sample's feature vector) stores its own float32 ``lo``
    and ``scale`` header, so one outlier sample cannot wreck the whole
    batch's resolution.  Constant rows encode with scale 0 and decode
    exactly.
    """

    name = "q8"
    bytes_per_value = 1.0
    row_overhead_bytes = 2 * FLOAT32_BYTES
    nominal_accuracy_drop = 5e-3

    def encode(self, features: np.ndarray) -> EncodedFeatures:
        features = _as_features(features)
        lo = features.min(axis=1)
        scale = (features.max(axis=1) - lo) / 255.0
        safe = np.where(scale > 0, scale, 1.0)
        q = np.rint((features - lo[:, None]) / safe[:, None])
        q = np.clip(q, 0, 255).astype(np.uint8)
        payload = (lo.astype("<f4").tobytes()
                   + scale.astype("<f4").tobytes() + q.tobytes())
        return EncodedFeatures(self.name, features.shape, payload)

    def decode(self, encoded: EncodedFeatures) -> np.ndarray:
        n, d = encoded.shape
        header = FLOAT32_BYTES * n
        lo = np.frombuffer(encoded.payload[:header], dtype="<f4")
        scale = np.frombuffer(encoded.payload[header:2 * header], dtype="<f4")
        q = np.frombuffer(encoded.payload[2 * header:], dtype=np.uint8)
        q = q.reshape(n, d).astype(np.float32)
        return (q * scale[:, None] + lo[:, None]).astype(np.float32)


class ZlibCodec(FeatureCodec):
    """Wraps any base codec's payload in DEFLATE (``<base>+zlib``)."""

    def __init__(self, base: FeatureCodec, level: int = 6):
        self.base = base
        self.level = level
        self.name = f"{base.name}+zlib"
        # Compression is data-dependent; estimates stay conservative.
        self.bytes_per_value = base.bytes_per_value
        self.row_overhead_bytes = base.row_overhead_bytes
        self.nominal_accuracy_drop = base.nominal_accuracy_drop

    def encode(self, features: np.ndarray) -> EncodedFeatures:
        encoded = self.base.encode(features)
        return EncodedFeatures(self.name, encoded.shape,
                               zlib.compress(encoded.payload, self.level))

    def decode(self, encoded: EncodedFeatures) -> np.ndarray:
        inner = EncodedFeatures(self.base.name, encoded.shape,
                                zlib.decompress(encoded.payload))
        return self.base.decode(inner)


CODECS: dict[str, FeatureCodec] = {}


def register_codec(codec: FeatureCodec) -> None:
    """Make ``codec`` addressable by name (plans, specs, CLI flags).

    Call at import time (module top level) if workers on the
    process-based transports need it — spawned processes re-import this
    module and only see import-time registrations.
    """
    CODECS[codec.name] = codec


for _codec in (FeatureCodec(), F16Codec(), Q8Codec()):
    register_codec(_codec)

ZLIB_SUFFIX = "+zlib"


def get_codec(name: str) -> FeatureCodec:
    """Resolve a codec name; ``<base>+zlib`` wraps any registered base."""
    if name in CODECS:
        return CODECS[name]
    if name.endswith(ZLIB_SUFFIX):
        base = name[:-len(ZLIB_SUFFIX)]
        if base in CODECS:
            codec = ZlibCodec(CODECS[base])
            CODECS[name] = codec       # cache the wrapper
            return codec
    raise KeyError(f"unknown feature codec {name!r}; registered codecs: "
                   f"{sorted(CODECS)} (any base also accepts '+zlib')")


def codec_names(include_zlib: bool = True) -> list[str]:
    """All addressable codec names (for CLI choices and sweeps)."""
    bases = sorted(n for n in CODECS if not n.endswith(ZLIB_SUFFIX))
    if not include_zlib:
        return bases
    return bases + [b + ZLIB_SUFFIX for b in bases]
