"""Emulated edge-device runtime over pluggable transports.

Where :mod:`repro.edge.simulator` predicts timing analytically, this module
actually *runs* the deployment: every emulated device is a worker (an OS
process, a thread, or a TCP-connected process, depending on the
:mod:`~repro.edge.transport` chosen) hosting its sub-model; inputs and
features cross the worker boundary; link bandwidth is emulated by sleeping
for the tc-equivalent transfer time of the bytes that would actually move.
This is the "emulate devices as processes" substitution for the paper's
physical Raspberry Pi testbed.

Features ship through a :mod:`~repro.edge.codec` (``WorkerSpec.codec``):
the worker encodes its ``(N, D)`` float32 features, the emulated link is
charged for the **encoded** byte count, and the parent decodes — so a
smaller codec is directly a faster fleet on the paper's 2 Mbps links.

A ``time_scale`` knob shrinks emulated sleeps so tests stay fast while the
measured proportions remain meaningful.

The wire protocol is request-id tagged so several in-flight requests can be
distinguished (the serving layer pipelines them) and the gather side never
blocks on a dead worker: every receive goes through poll-with-timeout plus
a worker-liveness check, and failures surface as the typed
:class:`WorkerFailure` instead of a hang.

Messages parent -> worker (built/read only via :mod:`repro.edge.wire`,
which owns the protocol's shape table)::

    ("infer", request_id, x[, trace])   # run forward_features over x
    ("stop",)                           # drain and exit

Messages worker -> parent::

    ("ready", worker_id)                        # once, after model build
    ("failed", worker_id, detail)               # startup failure
    ("features", request_id, encoded, stats)    # per-request success
    ("error", request_id | None, message)       # per-request failure
    ("stopped", worker_id)                      # reply to "stop"

``encoded`` is an :class:`~repro.edge.codec.EncodedFeatures`;
:meth:`EdgeCluster.poll` decodes it back to a float32 array before
handing the reply to callers, so consumers never see codec internals.

The optional ``trace`` field is the propagated **trace context**
(``{"trace_id", "parent_id"}``, see :mod:`repro.obs.trace`): when
present the worker records spans for its forward/encode/emulate phases
as plain dicts and piggybacks them on the reply under ``stats["_spans"]``;
:meth:`EdgeCluster.poll` strips that key and merges the spans into the
server-side tracer.  Absent trace context (tracing disabled), workers
record nothing — the server's switch is the only switch.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Callable

import numpy as np

from .. import nn
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer, new_span_id, span_dict, tracing_enabled
from ..models.snn import ConvSNN, SNNConfig
from ..models.vgg import VGG, VGGConfig
from ..models.vit import ViTConfig, VisionTransformer
from . import wire
from .codec import EncodedFeatures, get_codec
from .device import DeviceModel
from .network import LinkModel, tc_capped_link
from .transport import Transport, WorkerHandle, get_transport


class WorkerFailure(RuntimeError):
    """A worker process died, timed out, or replied with an error."""

    def __init__(self, worker_id: str, reason: str):
        super().__init__(f"worker {worker_id!r} failed: {reason}")
        self.worker_id = worker_id
        self.reason = reason


# ----------------------------------------------------------------------
# Model-kind registry: maps the WorkerSpec.model_kind string to the pair
# (config decoder, model constructor) needed to rebuild the sub-model
# inside a worker process.  Registrations run at import time, so spawned
# workers (which re-import this module) see the same table.
@dataclasses.dataclass(frozen=True)
class ModelKind:
    config_from_dict: Callable[[dict], Any]
    build: Callable[[Any], nn.Module]
    flops: Callable[[Any], float] | None = None   # per-sample MACs profiler


MODEL_KINDS: dict[str, ModelKind] = {}


def register_model_kind(kind: str, config_from_dict: Callable[[dict], Any],
                        build: Callable[[Any], nn.Module],
                        flops: Callable[[Any], float] | None = None) -> None:
    """Make ``kind`` servable by :class:`EdgeCluster` workers.

    ``flops`` (config -> per-sample MACs) additionally makes the kind
    *plannable*: :func:`repro.profiling.model_flops` consults it when the
    planning layer profiles sub-models of this kind.
    """
    MODEL_KINDS[kind] = ModelKind(config_from_dict, build, flops)


def _register_builtin_kinds() -> None:
    from ..profiling.flops import paper_flops, snn_flops, vgg_flops

    register_model_kind("vit", ViTConfig.from_dict, VisionTransformer,
                        flops=paper_flops)
    register_model_kind("vgg", VGGConfig.from_dict, VGG, flops=vgg_flops)
    register_model_kind("snn", SNNConfig.from_dict, ConvSNN, flops=snn_flops)


_register_builtin_kinds()


def _build_model(kind: str, config: dict) -> nn.Module:
    try:
        entry = MODEL_KINDS[kind]
    except KeyError:
        raise KeyError(f"unknown model kind {kind!r}; registered kinds: "
                       f"{sorted(MODEL_KINDS)}") from None
    return entry.build(entry.config_from_dict(config))


@dataclasses.dataclass
class WorkerSpec:
    """Everything needed to reconstruct one sub-model inside a worker."""

    worker_id: str
    model_kind: str                    # any key of MODEL_KINDS
    model_config: dict
    state_blob: bytes
    flops_per_sample: float
    device: DeviceModel
    link: LinkModel
    batch_size: int = 64               # forward chunk size inside the worker
    feature_dim: int | None = None     # width of forward_features output
    codec: str = "raw32"               # repro.edge.codec name for features
    quant: str = "fp32"                # weight scheme of state_blob

    @staticmethod
    def from_model(worker_id: str, model: nn.Module, kind: str,
                   flops_per_sample: float, device: DeviceModel,
                   link: LinkModel | None = None,
                   batch_size: int = 64,
                   codec: str = "raw32") -> "WorkerSpec":
        """Generic constructor for any registered model kind.

        A quantized module is detected here (its state blob carries
        int8 weight buffers), so the worker knows to apply the same
        module surgery before loading.
        """
        if kind not in MODEL_KINDS:
            raise KeyError(f"unknown model kind {kind!r}; registered kinds: "
                           f"{sorted(MODEL_KINDS)}")
        get_codec(codec)               # fail fast on unknown codec names
        return WorkerSpec(
            worker_id=worker_id,
            model_kind=kind,
            model_config=model.config.to_dict(),
            state_blob=nn.state_dict_to_bytes(model.state_dict()),
            flops_per_sample=flops_per_sample,
            device=device,
            link=link or tc_capped_link(),
            batch_size=batch_size,
            feature_dim=int(model.feature_dim()),
            codec=codec,
            quant="int8" if nn.is_quantized(model) else "fp32",
        )

    @staticmethod
    def from_vit(worker_id: str, model: VisionTransformer,
                 flops_per_sample: float, device: DeviceModel,
                 link: LinkModel | None = None,
                 batch_size: int = 64,
                 codec: str = "raw32") -> "WorkerSpec":
        return WorkerSpec.from_model(worker_id, model, "vit",
                                     flops_per_sample, device, link,
                                     batch_size, codec)

    @staticmethod
    def from_plan(plan, model_id: str, model: nn.Module,
                  batch_size: int = 64,
                  worker_id: str | None = None) -> "WorkerSpec":
        """Spec for one planned sub-model, on its plan-assigned device.

        ``plan`` is a :class:`repro.planning.DeploymentPlan` (duck-typed
        here to keep the edge layer free of planning imports): the
        sub-model's kind/config/footprint and the hosting device's
        compute/link parameters all come from the plan, the weights from
        the concrete ``model``.  ``worker_id`` defaults to the model id,
        so plan-booted clusters address workers by sub-model.
        """
        sub = plan.submodel(model_id)
        device = plan.device(plan.mapping[model_id])
        return WorkerSpec(
            worker_id=worker_id or model_id,
            model_kind=sub.model_kind,
            model_config=dict(sub.model_config),
            state_blob=nn.state_dict_to_bytes(model.state_dict()),
            flops_per_sample=sub.flops_per_sample,
            device=device.device_model(),
            link=device.link_model(),
            batch_size=batch_size,
            feature_dim=int(sub.feature_dim),
            codec=getattr(plan, "codec", "raw32"),
            quant=str(getattr(sub, "quant", "fp32")),
        )


def _worker_main(spec: WorkerSpec, conn, time_scale: float) -> None:
    """Entry point of an emulated device worker (any transport)."""
    from ..core.inference import extract_features

    try:
        # Process transports re-import this module fresh, so a model kind
        # or codec registered only at runtime in the parent is unknown
        # here (registrations must happen at import time, like the
        # built-ins).  Report that as a typed startup failure instead of
        # dying and leaving the parent a bare EOFError.
        model = _build_model(spec.model_kind, spec.model_config)
        quant = getattr(spec, "quant", "fp32")  # pre-quant specs lack it
        if quant != "fp32":
            model = nn.quantize_module(model, scheme=quant)
        model.load_state_dict(nn.state_dict_from_bytes(spec.state_blob))
        model.eval()
        codec = get_codec(spec.codec)
    except Exception as exc:
        try:
            conn.send(wire.failed_message(spec.worker_id,
                                          f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
        return
    conn.send(wire.ready_message(spec.worker_id))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return                     # parent went away; nothing to reply to
        command = wire.command(message)
        if command == wire.STOP:
            conn.send(wire.stopped_message(spec.worker_id))
            return
        if command != wire.INFER:
            conn.send(wire.error_message(
                None, f"unknown command {command!r}"))
            continue
        request_id = wire.request_id(message)
        x = wire.payload(message)
        # Propagated trace context (absent when tracing is off server-side
        # or the parent predates the field): its presence is the worker's
        # only tracing switch.
        trace = wire.trace_context(message)
        try:
            wall_anchor = time.time()
            wall_start = time.perf_counter()
            # Batched, graph-free, workspace-cached: repeated requests reuse
            # the same scratch buffers, which is exactly the long-lived-server
            # shape of an edge deployment.
            features = extract_features(model, x, spec.batch_size,
                                        keep_workspaces=True)
            forward_done = time.perf_counter()
            encoded = codec.encode(features)
            wall_compute = time.perf_counter() - wall_start
            encode_done = wall_start + wall_compute

            # Emulate the Pi-4B compute time and the tc-capped transfer of
            # the bytes that actually go on the wire (the encoded payload).
            emulated_compute = spec.device.compute_seconds(
                spec.flops_per_sample * len(x))
            emulated_transfer = spec.link.transfer_seconds(encoded.nbytes)
            sleep_for = max(0.0,
                            (emulated_compute + emulated_transfer) * time_scale
                            - wall_compute)
            if sleep_for > 0:
                time.sleep(sleep_for)
            stats = {"emulated_compute_s": emulated_compute,
                     "emulated_transfer_s": emulated_transfer,
                     "host_compute_s": wall_compute,
                     "bytes_out": float(encoded.nbytes),
                     "bytes_in": float(np.asarray(x).nbytes)}
            if trace is not None:
                # Record this request's worker-side phases as plain span
                # dicts (wall-clock anchored, so they align with server
                # spans) and piggyback them on the reply.
                done = time.perf_counter()
                tid = trace.get("trace_id")
                wid = spec.worker_id
                root = new_span_id()

                def _child(name, t0, t1, attrs=None):
                    return span_dict(name, tid, new_span_id(), root, wid,
                                     wall_anchor + (t0 - wall_start),
                                     t1 - t0, attrs)

                stats["_spans"] = [
                    span_dict("worker.request", tid, root,
                              trace.get("parent_id"), wid, wall_anchor,
                              done - wall_start, {"samples": len(x)}),
                    _child("worker.forward", wall_start, forward_done),
                    _child("codec.encode", forward_done, encode_done,
                           {"codec": spec.codec,
                            "nbytes": int(encoded.nbytes)}),
                    _child("worker.emulate", encode_done, done,
                           {"emulated_compute_s": emulated_compute,
                            "emulated_transfer_s": emulated_transfer}),
                ]
            conn.send(wire.features_message(request_id, encoded, stats))
        except Exception as exc:       # an infer error must not kill the loop
            conn.send(wire.error_message(
                request_id, f"{type(exc).__name__}: {exc}"))


@dataclasses.dataclass
class InferenceTiming:
    """Timing report for one ``EdgeCluster.infer`` call."""

    wall_seconds: float
    per_worker: dict[str, dict[str, float]]

    @property
    def emulated_critical_path(self) -> float:
        """Max over workers of emulated compute + transfer (the DES estimate)."""
        return max(w["emulated_compute_s"] + w["emulated_transfer_s"]
                   for w in self.per_worker.values())


class EdgeCluster:
    """A fleet of emulated devices plus a local fusion stage.

    Two client surfaces:

    * the synchronous scatter/gather pair :meth:`infer_features` /
      :meth:`infer_fused`, which raises :class:`WorkerFailure` on a dead,
      erroring, or timed-out worker instead of hanging; and
    * the non-blocking primitives :meth:`submit` / :meth:`poll` /
      :meth:`mark_down`, which the serving layer
      (:mod:`repro.serving`) uses to drive all workers concurrently and
      keep answering in degraded mode when some of them die.

    ``transport`` selects the worker substrate (see
    :mod:`repro.edge.transport`): ``"multiprocess"`` (default, one OS
    process per worker), ``"inprocess"`` (threads — cheap spawns for
    tests and big simulated fleets), or ``"tcp"`` (processes dialing back
    over loopback TCP, the multi-host-capable wire).  A
    :class:`~repro.edge.transport.Transport` instance is also accepted.
    """

    def __init__(self, workers: list[WorkerSpec], time_scale: float = 0.0,
                 transport: str | Transport = "multiprocess"):
        if not workers:
            raise ValueError("need at least one worker")
        ids = [w.worker_id for w in workers]
        if len(set(ids)) != len(ids):
            raise ValueError("worker ids must be unique")
        # Own copy: add_worker appends (replanning/rolling swaps), and
        # mutating the caller's list would leak replacement specs into
        # every cluster later built from it.
        self._specs = list(workers)
        self._time_scale = time_scale
        self._transport = get_transport(transport)
        self._handles: dict[str, WorkerHandle] = {}
        self._down: dict[str, str] = {}      # worker_id -> failure reason
        self._started = False
        self._request_counter = 0
        self._request_counter_lock = threading.Lock()
        # Per-worker instrument cache + in-flight accounting: one registry
        # lookup per worker lifetime instead of per dispatch.
        self._worker_metrics: dict[str, dict] = {}
        self._outstanding: dict[str, int] = {}

    def _metrics_for(self, worker_id: str) -> dict:
        metrics = self._worker_metrics.get(worker_id)
        if metrics is None:
            registry = get_registry()
            metrics = self._worker_metrics[worker_id] = {
                "dispatch": registry.counter("edge.dispatch_total",
                                             worker=worker_id),
                "replies": registry.counter("edge.replies_total",
                                            worker=worker_id),
                "inflight": registry.gauge("edge.inflight",
                                           worker=worker_id),
                "bytes_out": registry.counter("wire.bytes_out_total",
                                              worker=worker_id),
                "bytes_in": registry.counter("wire.bytes_in_total",
                                             worker=worker_id),
            }
        return metrics

    def _note_reply(self, worker_id: str, nbytes: int = 0) -> None:
        """Account one reply: decrement in-flight (floored — stale replies
        from an aborted batch must not go negative) and count wire bytes."""
        metrics = self._metrics_for(worker_id)
        left = max(0, self._outstanding.get(worker_id, 0) - 1)
        self._outstanding[worker_id] = left
        metrics["inflight"].set(left)
        metrics["replies"].inc()
        if nbytes:
            metrics["bytes_in"].inc(nbytes)

    @classmethod
    def from_plan(cls, plan, models: list[nn.Module],
                  time_scale: float = 0.0,
                  batch_size: int = 64,
                  transport: str | Transport = "multiprocess",
                  ) -> "EdgeCluster":
        """Boot a cluster straight from a deployment plan.

        ``models`` carries the concrete (trained) modules aligned with
        ``plan.submodels``; worker ids are the plan's model ids.  The
        plan's ``codec`` rides into every worker spec.
        """
        if len(models) != len(plan.submodels):
            raise ValueError(
                f"plan has {len(plan.submodels)} sub-models but "
                f"{len(models)} models were supplied")
        specs = [WorkerSpec.from_plan(plan, sub.model_id, model,
                                      batch_size=batch_size)
                 for sub, model in zip(plan.submodels, models)]
        return cls(specs, time_scale=time_scale, transport=transport)

    # ------------------------------------------------------------------
    @property
    def specs(self) -> list[WorkerSpec]:
        return list(self._specs)

    @property
    def started(self) -> bool:
        return self._started

    @property
    def worker_ids(self) -> list[str]:
        return [s.worker_id for s in self._specs]

    @property
    def down_workers(self) -> dict[str, str]:
        """Workers marked down, mapped to the failure reason."""
        return dict(self._down)

    @property
    def transport(self) -> Transport:
        return self._transport

    def feature_dims(self) -> dict[str, int]:
        """Per-worker feature width (used for zero-filled degraded fusion)."""
        dims: dict[str, int] = {}
        for spec in self._specs:
            if spec.feature_dim is None:
                model = _build_model(spec.model_kind, spec.model_config)
                spec.feature_dim = int(model.feature_dim())
            dims[spec.worker_id] = spec.feature_dim
        return dims

    def next_request_id(self) -> int:
        # Client threads (telemetry ids) and the serving loop (dispatch
        # ids) share this counter, so the bump must be atomic.
        with self._request_counter_lock:
            self._request_counter += 1
            return self._request_counter

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("cluster already started")
        for spec in self._specs:
            self._handles[spec.worker_id] = self._transport.spawn(
                spec, self._time_scale, _worker_main)
        for spec in self._specs:
            message = self._handles[spec.worker_id].recv()
            if wire.command(message) != wire.READY:
                detail = wire.startup_detail(message)
                raise RuntimeError(
                    f"worker {spec.worker_id} failed to start: {detail}")
        self._started = True

    def add_worker(self, spec: WorkerSpec, ready_timeout: float = 30.0) -> None:
        """Register one more worker; spawn it immediately if running.

        This is the replanning primitive: after a device failure the
        planning layer reassigns the orphaned sub-models and adds fresh
        workers for them on surviving devices, while the cluster keeps
        serving.  Raises ``RuntimeError`` (and marks the worker down) if
        the new worker fails to report ready within ``ready_timeout``.
        """
        if any(s.worker_id == spec.worker_id for s in self._specs):
            raise ValueError(f"duplicate worker id {spec.worker_id!r}")
        self._specs.append(spec)
        if not self._started:
            return                     # start() will spawn it with the rest
        # The handle stays private until the worker reports ready: once
        # registered in _handles a concurrently-polling serving thread
        # would race this handshake for the channel and could consume
        # the "ready" message itself.
        handle = self._transport.spawn(spec, self._time_scale, _worker_main)
        try:
            if not handle.poll(ready_timeout):
                raise RuntimeError(
                    f"worker {spec.worker_id} not ready within "
                    f"{ready_timeout}s")
            message = handle.recv()
            if wire.command(message) != wire.READY:
                detail = wire.startup_detail(message)
                raise RuntimeError(
                    f"worker {spec.worker_id} failed to start: {detail}")
        except (EOFError, OSError) as exc:
            self._retire_unready(spec.worker_id, handle,
                                 f"failed to start: {exc}")
            raise RuntimeError(
                f"worker {spec.worker_id} died during startup") from exc
        except RuntimeError as exc:
            self._retire_unready(spec.worker_id, handle, str(exc))
            raise
        self._handles[spec.worker_id] = handle

    def _retire_unready(self, worker_id: str, handle: WorkerHandle,
                        reason: str) -> None:
        """Mark a never-registered worker down and reap its handle."""
        self._down[worker_id] = reason
        handle.close()
        if handle.alive():
            handle.kill()

    def shutdown(self) -> None:
        """Stop all workers.  Idempotent, and tolerant of dead workers."""
        if not self._started:
            return
        # Snapshot once: a concurrent mark_down (e.g. a rolling swap
        # retiring the worker it just drained) pops from _handles, and
        # mutating a dict mid-iteration kills the shutdown halfway.
        handles = list(self._handles.values())
        for handle in handles:
            try:
                handle.send(wire.stop_message())
            except (BrokenPipeError, OSError):
                pass                       # worker already gone
        for handle in handles:
            deadline = time.perf_counter() + 5.0
            while True:                    # drain stale replies until stopped
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or not handle.poll(remaining):
                    break
                try:
                    if wire.command(handle.recv()) == wire.STOPPED:
                        break
                except (EOFError, OSError):
                    break
        for handle in handles:
            handle.join(timeout=10)
            handle.close()
        self._handles.clear()
        self._transport.close()
        self._down.clear()
        self._started = False

    def __enter__(self) -> "EdgeCluster":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Non-blocking primitives (the serving layer's dispatch surface).
    def is_alive(self, worker_id: str) -> bool:
        """Worker is up: not marked down and its worker still runs."""
        if not self._started or worker_id in self._down:
            return False
        handle = self._handles.get(worker_id)
        return handle is not None and handle.alive()

    def live_workers(self) -> list[str]:
        return [wid for wid in self.worker_ids if self.is_alive(wid)]

    def mark_down(self, worker_id: str, reason: str = "marked down") -> None:
        """Retire a worker: close its channel and kill its worker."""
        if worker_id in self._down:
            return
        self._down[worker_id] = reason
        # A retired worker owes no more replies: zero its in-flight gauge
        # (but never touch series of workers that never dispatched).
        if worker_id in self._worker_metrics:
            self._outstanding[worker_id] = 0
            self._worker_metrics[worker_id]["inflight"].set(0)
        handle = self._handles.pop(worker_id, None)
        if handle is not None:
            handle.close()
            if handle.alive():
                handle.kill()

    def has_buffered_reply(self, worker_id: str) -> bool:
        """A reply is sitting in the channel even if the worker already died."""
        handle = self._handles.get(worker_id)
        try:
            return handle is not None and handle.poll(0)
        except (OSError, ValueError):
            return False

    def kill_worker(self, worker_id: str) -> None:
        """Hard-kill a worker (crash injection for tests/demos).

        Deliberately does *not* mark the worker down: the point is to
        exercise the failure-detection path, which must notice the death
        via channel EOF / worker liveness and degrade on its own.  A
        no-op for unknown ids or after shutdown (e.g. a late kill timer).
        """
        handle = self._handles.get(worker_id)
        if handle is None:
            return
        handle.kill()

    def submit(self, worker_id: str, request_id: int, x: np.ndarray,
               trace: dict | None = None) -> bool:
        """Dispatch one request without blocking on the reply.

        Inputs are canonicalized to contiguous float32 here — the dtype
        the workers compute in — so a float64 (or integer) caller cannot
        silently double the bytes crossing the worker boundary and the
        emulated transfer charged on them.

        ``trace`` is an optional trace context (``{"trace_id",
        "parent_id"}``) propagated on the wire so worker-side spans join
        the server-side trace; when ``None`` the legacy 3-tuple is sent
        and the worker records nothing.

        Returns ``False`` (after marking the worker down) when the worker
        cannot accept work — dead worker or closed channel.
        """
        if not self._started:
            raise RuntimeError("cluster not started; use start() or a with-block")
        handle = self._handles.get(worker_id)
        if handle is None:
            return False
        if not handle.alive():
            self.mark_down(worker_id, "process died")
            return False
        x = np.ascontiguousarray(x, dtype=np.float32)
        try:
            handle.send(wire.infer_message(request_id, x, trace))
        except (BrokenPipeError, OSError):
            self.mark_down(worker_id, "pipe closed")
            return False
        metrics = self._metrics_for(worker_id)
        metrics["dispatch"].inc()
        metrics["bytes_out"].inc(x.nbytes)
        inflight = self._outstanding.get(worker_id, 0) + 1
        self._outstanding[worker_id] = inflight
        metrics["inflight"].set(inflight)
        return True

    def _decode_reply(self, worker_id: str, message: tuple) -> tuple:
        """Decode a ``features`` reply's payload back to a float32 array.

        Also the reply-side observability tap: per-worker reply/in-flight/
        wire-bytes accounting, merging piggybacked worker spans into the
        server-side tracer, and a ``codec.decode`` span (joined to the
        batch trace by request id).
        """
        if wire.command(message) == wire.ERROR:
            self._note_reply(worker_id)
            return message
        if wire.command(message) != wire.FEATURES \
                or not isinstance(wire.payload(message), EncodedFeatures):
            return message
        encoded = wire.payload(message)
        self._note_reply(worker_id, nbytes=int(encoded.nbytes))
        stats = wire.stats(message)
        # Strip piggybacked spans unconditionally so consumers of the
        # stats dict never see the private key, even if tracing was
        # switched off between dispatch and reply.
        spans = stats.pop("_spans", None) if isinstance(stats, dict) else None
        traced = tracing_enabled()
        if spans and traced:
            get_tracer().record_dicts(spans)
        try:
            t_wall = time.time()
            t0 = time.perf_counter()
            features = get_codec(encoded.codec).decode(encoded)
            decode_s = time.perf_counter() - t0
        except Exception as exc:       # corrupt payload: surface, don't die
            return wire.error_message(
                wire.request_id(message),
                f"feature decode failed: {type(exc).__name__}: {exc}")
        if traced:
            get_tracer().emit("codec.decode",
                              trace_id=wire.request_id(message),
                              ts=t_wall, duration_s=decode_s,
                              attrs={"worker": worker_id,
                                     "codec": encoded.codec,
                                     "nbytes": int(encoded.nbytes)})
        return wire.features_message(wire.request_id(message), features,
                                     stats)

    def poll(self, timeout: float = 0.0) -> list[tuple[str, tuple]]:
        """Collect every reply that arrives within ``timeout`` seconds.

        Waits on all live channels at once (``Transport.wait``) so one
        slow worker never serializes the gather.  A channel that hits EOF
        (worker crashed) marks that worker down instead of raising.
        Encoded feature payloads are decoded here, so callers always see
        plain float32 arrays.
        """
        if not self._handles:
            if timeout > 0:
                time.sleep(timeout)
            return []
        replies: list[tuple[str, tuple]] = []
        try:
            ready = self._transport.wait(list(self._handles.values()),
                                         timeout)
        except (OSError, ValueError):
            # A handle in our snapshot was closed mid-wait (e.g. a
            # rolling swap retiring a worker from another thread).  The
            # caller's gather loop re-polls immediately with a fresh
            # snapshot, so skipping this cycle loses nothing.
            return []
        for handle in ready:
            worker_id = handle.worker_id
            while True:                # drain everything already buffered
                try:
                    has_more = handle.poll(0)
                except (OSError, ValueError):
                    self.mark_down(worker_id, "connection closed")
                    break
                if not has_more:
                    break
                try:
                    message = handle.recv()
                except (EOFError, OSError):
                    self.mark_down(worker_id, "process died (pipe EOF)")
                    break
                replies.append((worker_id, self._decode_reply(worker_id,
                                                              message)))
        return replies

    # ------------------------------------------------------------------
    def infer_features(self, x: np.ndarray, timeout: float | None = 60.0,
                       ) -> tuple[dict[str, np.ndarray], InferenceTiming]:
        """Scatter ``x`` to all workers; gather per-worker feature arrays.

        Raises :class:`WorkerFailure` if any worker is already down, dies
        mid-request, replies with an error, or fails to answer within
        ``timeout`` seconds (``None`` disables the deadline but dead
        processes are still detected).
        """
        if not self._started:
            raise RuntimeError("cluster not started; use start() or a with-block")
        start = time.perf_counter()
        request_id = self.next_request_id()
        pending: set[str] = set()
        for spec in self._specs:
            worker_id = spec.worker_id
            if worker_id in self._down:
                raise WorkerFailure(worker_id, self._down[worker_id])
            if not self.submit(worker_id, request_id, x):
                raise WorkerFailure(worker_id,
                                    self._down.get(worker_id, "dispatch failed"))
            pending.add(worker_id)
        deadline = None if timeout is None else start + timeout

        features: dict[str, np.ndarray] = {}
        per_worker: dict[str, dict[str, float]] = {}
        while pending:
            step = 0.05
            if deadline is not None:
                step = min(step, max(0.0, deadline - time.perf_counter()))
            for worker_id, message in self.poll(step):
                if worker_id not in pending:
                    continue
                if wire.command(message) == wire.ERROR:
                    # Stale errors from an earlier aborted request carry
                    # that request's id — skip them, they already raised.
                    reply_id = wire.request_id(message)
                    if reply_id is not None and reply_id != request_id:
                        continue
                    raise WorkerFailure(worker_id, str(wire.payload(message)))
                if wire.command(message) != wire.FEATURES \
                        or wire.request_id(message) != request_id:
                    continue           # stale reply from an aborted request
                features[worker_id] = wire.payload(message)
                per_worker[worker_id] = wire.stats(message)
                pending.discard(worker_id)
            for worker_id in sorted(pending):
                if worker_id in self._down:
                    raise WorkerFailure(worker_id, self._down[worker_id])
                if not self.is_alive(worker_id) \
                        and not self.has_buffered_reply(worker_id):
                    # Dead worker with nothing buffered: it can never reply.
                    self.mark_down(worker_id, "process died mid-request")
                    raise WorkerFailure(worker_id, "process died mid-request")
            if pending and deadline is not None \
                    and time.perf_counter() >= deadline:
                worker_id = sorted(pending)[0]
                self.mark_down(worker_id, f"no reply within {timeout}s")
                raise WorkerFailure(worker_id, f"no reply within {timeout}s")
        timing = InferenceTiming(wall_seconds=time.perf_counter() - start,
                                 per_worker=per_worker)
        return features, timing

    def infer_fused(self, x: np.ndarray, fusion: nn.Module,
                    timeout: float | None = 60.0) -> tuple[np.ndarray,
                                                           InferenceTiming]:
        """Full pipeline: scatter -> gather features -> fuse -> predictions."""
        from ..core.inference import predict

        features, timing = self.infer_features(x, timeout=timeout)
        ordered = [features[s.worker_id] for s in self._specs]
        # Long-lived serving path: keep the fusion MLP's scratch warm across
        # requests, mirroring the workers' keep_workspaces=True.
        logits = predict(fusion, np.concatenate(ordered, axis=-1),
                         keep_workspaces=True)
        return logits.argmax(axis=-1), timing
