"""Process-based edge-device emulation.

Where :mod:`repro.edge.simulator` predicts timing analytically, this module
actually *runs* the deployment: every emulated device is an OS process
hosting its sub-model; inputs and features cross real process boundaries
(serialized numpy arrays over pipes); link bandwidth is emulated by
sleeping for the tc-equivalent transfer time.  This is the "emulate devices
as processes" substitution for the paper's physical Raspberry Pi testbed.

A ``time_scale`` knob shrinks emulated sleeps so tests stay fast while the
measured proportions remain meaningful.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import time

import numpy as np

from .. import nn
from ..models.vit import ViTConfig, VisionTransformer
from .device import DeviceModel
from .network import LinkModel, tc_capped_link
from .simulator import feature_bytes


@dataclasses.dataclass
class WorkerSpec:
    """Everything needed to reconstruct one sub-model inside a worker."""

    worker_id: str
    model_kind: str                    # currently "vit"
    model_config: dict
    state_blob: bytes
    flops_per_sample: float
    device: DeviceModel
    link: LinkModel
    batch_size: int = 64               # forward chunk size inside the worker

    @staticmethod
    def from_vit(worker_id: str, model: VisionTransformer,
                 flops_per_sample: float, device: DeviceModel,
                 link: LinkModel | None = None,
                 batch_size: int = 64) -> "WorkerSpec":
        return WorkerSpec(
            worker_id=worker_id,
            model_kind="vit",
            model_config=model.config.to_dict(),
            state_blob=nn.state_dict_to_bytes(model.state_dict()),
            flops_per_sample=flops_per_sample,
            device=device,
            link=link or tc_capped_link(),
            batch_size=batch_size,
        )


def _build_model(kind: str, config: dict) -> nn.Module:
    if kind == "vit":
        return VisionTransformer(ViTConfig.from_dict(config))
    raise KeyError(f"unknown model kind {kind!r}")


def _worker_main(spec: WorkerSpec, conn, time_scale: float) -> None:
    """Entry point of an emulated device process."""
    from ..core.inference import extract_features

    model = _build_model(spec.model_kind, spec.model_config)
    model.load_state_dict(nn.state_dict_from_bytes(spec.state_blob))
    model.eval()
    conn.send(("ready", spec.worker_id))
    while True:
        message = conn.recv()
        command = message[0]
        if command == "stop":
            conn.send(("stopped", spec.worker_id))
            return
        if command != "infer":
            conn.send(("error", f"unknown command {command!r}"))
            continue
        x = message[1]
        wall_start = time.perf_counter()
        # Batched, graph-free, workspace-cached: repeated requests reuse the
        # same scratch buffers, which is exactly the long-lived-server shape
        # of an edge deployment.
        features = extract_features(model, x, spec.batch_size,
                                    keep_workspaces=True)
        wall_compute = time.perf_counter() - wall_start

        # Emulate the Pi-4B compute time and the tc-capped feature transfer.
        emulated_compute = spec.device.compute_seconds(
            spec.flops_per_sample * len(x))
        payload = feature_bytes(features.shape[-1]) * len(x)
        emulated_transfer = spec.link.transfer_seconds(payload)
        sleep_for = max(0.0, (emulated_compute + emulated_transfer) * time_scale
                        - wall_compute)
        if sleep_for > 0:
            time.sleep(sleep_for)
        conn.send(("features", features,
                   {"emulated_compute_s": emulated_compute,
                    "emulated_transfer_s": emulated_transfer,
                    "host_compute_s": wall_compute}))


@dataclasses.dataclass
class InferenceTiming:
    """Timing report for one ``EdgeCluster.infer`` call."""

    wall_seconds: float
    per_worker: dict[str, dict[str, float]]

    @property
    def emulated_critical_path(self) -> float:
        """Max over workers of emulated compute + transfer (the DES estimate)."""
        return max(w["emulated_compute_s"] + w["emulated_transfer_s"]
                   for w in self.per_worker.values())


class EdgeCluster:
    """A fleet of emulated devices plus a local fusion stage."""

    def __init__(self, workers: list[WorkerSpec], time_scale: float = 0.0):
        if not workers:
            raise ValueError("need at least one worker")
        ids = [w.worker_id for w in workers]
        if len(set(ids)) != len(ids):
            raise ValueError("worker ids must be unique")
        self._specs = workers
        self._time_scale = time_scale
        self._context = mp.get_context("spawn")
        self._processes: list = []
        self._conns: dict[str, object] = {}
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("cluster already started")
        for spec in self._specs:
            parent, child = self._context.Pipe()
            process = self._context.Process(
                target=_worker_main, args=(spec, child, self._time_scale),
                daemon=True)
            process.start()
            self._processes.append(process)
            self._conns[spec.worker_id] = parent
        for spec in self._specs:
            status, worker_id = self._conns[spec.worker_id].recv()
            if status != "ready":
                raise RuntimeError(f"worker {worker_id} failed to start")
        self._started = True

    def shutdown(self) -> None:
        if not self._started:
            return
        for conn in self._conns.values():
            conn.send(("stop",))
        for conn in self._conns.values():
            conn.recv()
        for process in self._processes:
            process.join(timeout=10)
        self._processes.clear()
        self._conns.clear()
        self._started = False

    def __enter__(self) -> "EdgeCluster":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def infer_features(self, x: np.ndarray) -> tuple[dict[str, np.ndarray],
                                                     InferenceTiming]:
        """Scatter ``x`` to all workers; gather per-worker feature arrays."""
        if not self._started:
            raise RuntimeError("cluster not started; use start() or a with-block")
        start = time.perf_counter()
        for spec in self._specs:
            self._conns[spec.worker_id].send(("infer", x))
        features: dict[str, np.ndarray] = {}
        per_worker: dict[str, dict[str, float]] = {}
        for spec in self._specs:
            reply = self._conns[spec.worker_id].recv()
            if reply[0] != "features":
                raise RuntimeError(f"worker {spec.worker_id} error: {reply[1]}")
            features[spec.worker_id] = reply[1]
            per_worker[spec.worker_id] = reply[2]
        timing = InferenceTiming(wall_seconds=time.perf_counter() - start,
                                 per_worker=per_worker)
        return features, timing

    def infer_fused(self, x: np.ndarray, fusion: nn.Module) -> tuple[np.ndarray,
                                                                     InferenceTiming]:
        """Full pipeline: scatter -> gather features -> fuse -> predictions."""
        from ..core.inference import predict

        features, timing = self.infer_features(x)
        ordered = [features[s.worker_id] for s in self._specs]
        # Long-lived serving path: keep the fusion MLP's scratch warm across
        # requests, mirroring the workers' keep_workspaces=True.
        logits = predict(fusion, np.concatenate(ordered, axis=-1),
                         keep_workspaces=True)
        return logits.argmax(axis=-1), timing
