"""Pluggable transports: how emulated edge workers are spawned and reached.

:class:`~repro.edge.runtime.EdgeCluster` used to hard-code
``multiprocessing.Pipe``; every spawn/submit/poll/kill now goes through a
:class:`Transport`, so the same cluster code runs over three substrates:

* ``multiprocess`` — one OS process per worker, spawn context, duplex
  pipes (the original behaviour, still the default: real process
  isolation, real serialization across the boundary);
* ``inprocess``   — one daemon *thread* per worker with in-memory
  mailboxes: no fork/spawn cost, so tests and huge simulated fleets are
  cheap, while the wire protocol and emulated link sleeps stay identical;
* ``tcp``         — one OS process per worker connected back over a
  TCP socket (``multiprocessing.connection`` framing with an authkey
  handshake).  Loopback by default, but the address is real — the
  multi-host-capable substrate.

A transport hands back one :class:`WorkerHandle` per spawn; the handle is
the only thing the cluster talks to (``send``/``recv``/``poll``/
``alive``/``kill``).  ``Transport.wait`` multiplexes many handles the way
``multiprocessing.connection.wait`` multiplexes pipes, so one slow worker
never serializes a gather.
"""

from __future__ import annotations

import collections
import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import socket
import threading
import time
from typing import Any, Callable, Iterable

# The worker loop body lives in runtime.py (_worker_main); transports
# receive it as a callable so this module stays import-cycle-free.
WorkerMain = Callable[[Any, Any, float], None]


class WorkerHandle:
    """Parent-side endpoint of one spawned worker."""

    def __init__(self, worker_id: str):
        self.worker_id = worker_id

    def send(self, message: tuple) -> None:
        raise NotImplementedError

    def recv(self) -> tuple:
        raise NotImplementedError

    def poll(self, timeout: float = 0.0) -> bool:
        raise NotImplementedError

    def alive(self) -> bool:
        raise NotImplementedError

    def kill(self) -> None:
        """Hard-kill the worker (crash injection); never raises."""
        raise NotImplementedError

    def join(self, timeout: float | None = None) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Close the parent-side channel; never raises."""
        raise NotImplementedError


class Transport:
    """Spawns workers and multiplexes their handles."""

    name = "abstract"

    def spawn(self, spec, time_scale: float,
              worker_main: WorkerMain) -> WorkerHandle:
        raise NotImplementedError

    def wait(self, handles: Iterable[WorkerHandle],
             timeout: float | None) -> list[WorkerHandle]:
        """Handles with a message (or EOF) ready within ``timeout``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport-wide resources (e.g. a TCP listener)."""


# ----------------------------------------------------------------------
# Connection-backed transports (multiprocess pipes, TCP sockets): both
# wrap a multiprocessing.connection.Connection plus a child process, and
# both multiplex through multiprocessing.connection.wait.
class _ConnectionHandle(WorkerHandle):
    def __init__(self, worker_id: str, process, conn):
        super().__init__(worker_id)
        self.process = process
        self.conn = conn

    def send(self, message: tuple) -> None:
        self.conn.send(message)

    def recv(self) -> tuple:
        return self.conn.recv()

    def poll(self, timeout: float = 0.0) -> bool:
        return self.conn.poll(timeout)

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        self.process.terminate()
        self.process.join(timeout=5)

    def join(self, timeout: float | None = None) -> None:
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class _ConnectionTransport(Transport):
    def wait(self, handles: Iterable[WorkerHandle],
             timeout: float | None) -> list[WorkerHandle]:
        by_conn = {h.conn: h for h in handles}
        if not by_conn:
            return []
        ready = mp_connection.wait(list(by_conn), timeout)
        return [by_conn[conn] for conn in ready]


class MultiprocessTransport(_ConnectionTransport):
    """One spawned OS process per worker, duplex pipe to the parent."""

    name = "multiprocess"

    def __init__(self):
        self._context = mp.get_context("spawn")

    def spawn(self, spec, time_scale: float,
              worker_main: WorkerMain) -> WorkerHandle:
        parent, child = self._context.Pipe()
        process = self._context.Process(
            target=worker_main, args=(spec, child, time_scale), daemon=True)
        process.start()
        return _ConnectionHandle(spec.worker_id, process, parent)


def _tcp_worker_entry(worker_main: WorkerMain, spec, address,
                      authkey: bytes, time_scale: float) -> None:
    """Child-process entry: dial back to the parent, then run the loop."""
    conn = mp_connection.Client(address, authkey=authkey)
    worker_main(spec, conn, time_scale)


class TcpTransport(_ConnectionTransport):
    """One OS process per worker, connected back over a TCP socket.

    The parent listens on ``host:port`` (an ephemeral loopback port by
    default); every spawned worker dials back and authenticates with the
    transport's random authkey.  Spawns are sequential, so the accepted
    connection always belongs to the worker just started.  The same
    framing would carry to real multi-host deployments — only the spawn
    step (here ``multiprocessing``) is machine-local.
    """

    name = "tcp"

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 accept_timeout_s: float = 30.0):
        self._context = mp.get_context("spawn")
        self._host = host
        self._port = port
        self._accept_timeout_s = accept_timeout_s
        self._authkey = os.urandom(16)
        self._listener: mp_connection.Listener | None = None

    @property
    def address(self) -> tuple[str, int] | None:
        return None if self._listener is None else self._listener.address

    def _ensure_listener(self) -> mp_connection.Listener:
        if self._listener is None:
            self._listener = mp_connection.Listener(
                (self._host, self._port), family="AF_INET",
                authkey=self._authkey)
        return self._listener

    def _accept(self, listener: mp_connection.Listener):
        """``listener.accept()`` bounded by the accept timeout.

        ``Listener`` has no public timeout, so the accept runs in a
        watchdog thread; on expiry a dummy self-connection completes the
        pending accept (closing the socket would not wake a thread
        already blocked in ``accept()``), its connection is discarded,
        and ``TimeoutError`` is raised.
        """
        result: dict = {}

        def do_accept() -> None:
            try:
                result["conn"] = listener.accept()
            except Exception as exc:   # surfaced to the spawning thread
                result["error"] = exc

        thread = threading.Thread(target=do_accept, daemon=True)
        thread.start()
        thread.join(self._accept_timeout_s)
        if thread.is_alive():
            try:
                dummy = mp_connection.Client(listener.address,
                                             authkey=self._authkey)
                dummy.close()
            except OSError:
                self.close()           # last resort: tear the listener down
            thread.join(timeout=5)
            conn = result.pop("conn", None)
            if conn is not None:       # the dummy (or a late worker) landed
                conn.close()
            raise TimeoutError(
                f"no TCP dial-back within {self._accept_timeout_s}s")
        if "error" in result:
            raise result["error"]
        return result["conn"]

    def spawn(self, spec, time_scale: float,
              worker_main: WorkerMain) -> WorkerHandle:
        listener = self._ensure_listener()
        process = self._context.Process(
            target=_tcp_worker_entry,
            args=(worker_main, spec, listener.address, self._authkey,
                  time_scale),
            daemon=True)
        process.start()
        try:
            conn = self._accept(listener)
        except (TimeoutError, socket.timeout, OSError,
                mp.AuthenticationError) as exc:
            process.terminate()
            process.join(timeout=5)
            raise RuntimeError(
                f"worker {spec.worker_id} never connected back over TCP: "
                f"{exc}") from exc
        return _ConnectionHandle(spec.worker_id, process, conn)

    def close(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            finally:
                self._listener = None


# ----------------------------------------------------------------------
# In-process transport: worker threads and in-memory mailboxes.
class _Mailbox:
    """A closable one-way message queue with non-consuming poll."""

    def __init__(self, notify: threading.Event | None = None):
        self._items: collections.deque = collections.deque()
        self._cond = threading.Condition()
        self._closed = False
        self._notify = notify

    def put(self, item) -> None:
        with self._cond:
            if self._closed:
                raise BrokenPipeError("mailbox closed")
            self._items.append(item)
            self._cond.notify_all()
        if self._notify is not None:
            self._notify.set()

    def get(self) -> Any:
        """Blocking receive; EOFError once closed and drained (pipe EOF)."""
        with self._cond:
            self._cond.wait_for(lambda: self._items or self._closed)
            if self._items:
                return self._items.popleft()
            raise EOFError("mailbox closed")

    def poll(self, timeout: float = 0.0) -> bool:
        with self._cond:
            if timeout <= 0:
                return bool(self._items)
            # Also wake on close: a drained, closed mailbox can never
            # become ready, so waiting out the full timeout (e.g. the
            # shutdown drain's 5 s deadline) would just stall the caller.
            self._cond.wait_for(lambda: self._items or self._closed,
                                timeout)
            return bool(self._items)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class _InProcEndpoint:
    """Connection-alike handed to the worker loop (send/recv only)."""

    def __init__(self, inbox: _Mailbox, outbox: _Mailbox):
        self._inbox = inbox
        self._outbox = outbox

    def recv(self):
        return self._inbox.get()

    def send(self, message) -> None:
        self._outbox.put(message)


class _InProcHandle(WorkerHandle):
    def __init__(self, worker_id: str, thread: threading.Thread,
                 to_worker: _Mailbox, from_worker: _Mailbox):
        super().__init__(worker_id)
        self._thread = thread
        self._to_worker = to_worker
        self._from_worker = from_worker
        self._killed = False

    def send(self, message: tuple) -> None:
        self._to_worker.put(message)   # BrokenPipeError once killed/closed

    def recv(self) -> tuple:
        return self._from_worker.get()

    def poll(self, timeout: float = 0.0) -> bool:
        return self._from_worker.poll(timeout)

    def alive(self) -> bool:
        return self._thread.is_alive() and not self._killed

    def kill(self) -> None:
        # Threads cannot be terminated; closing both mailboxes makes the
        # worker's next recv raise EOFError (so its loop exits) while
        # replies already buffered stay readable — the same observable
        # state as a killed process with bytes left in the pipe.
        self._killed = True
        self._to_worker.close()
        self._from_worker.close()

    def join(self, timeout: float | None = None) -> None:
        self._thread.join(timeout)
        if self._thread.is_alive():
            self.kill()

    def close(self) -> None:
        self._to_worker.close()
        self._from_worker.close()


class InProcessTransport(Transport):
    """Worker threads instead of processes: no spawn cost, same protocol.

    The emulated-link sleeps and the codec encode/decode round trip still
    happen, so measured proportions stay meaningful; only process
    isolation (and its startup latency) is gone.  Ideal for tests and
    for simulating fleets far larger than the host's process budget.
    """

    name = "inprocess"

    def __init__(self):
        # One event for all workers: wait() parks here instead of
        # spin-polling every mailbox.
        self._event = threading.Event()

    def spawn(self, spec, time_scale: float,
              worker_main: WorkerMain) -> WorkerHandle:
        to_worker = _Mailbox()
        from_worker = _Mailbox(notify=self._event)
        endpoint = _InProcEndpoint(to_worker, from_worker)

        def run() -> None:
            try:
                worker_main(spec, endpoint, time_scale)
            except (BrokenPipeError, EOFError, OSError):
                pass                   # parent closed the channel mid-send

        thread = threading.Thread(target=run, daemon=True,
                                  name=f"edge-worker-{spec.worker_id}")
        thread.start()
        return _InProcHandle(spec.worker_id, thread, to_worker, from_worker)

    def wait(self, handles: Iterable[WorkerHandle],
             timeout: float | None) -> list[WorkerHandle]:
        # Readiness means "a message is buffered": like a parent-held
        # multiprocessing pipe, a dead worker with an empty mailbox is
        # *not* ready — deaths are noticed by liveness checks, not here.
        handles = list(handles)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            ready = [h for h in handles if h.poll(0)]
            if ready:
                return ready
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
            self._event.clear()
            # Re-check after clearing so a put() between the poll above
            # and the clear cannot be missed.
            ready = [h for h in handles if h.poll(0)]
            if ready:
                return ready
            step = 0.05 if deadline is None else min(
                0.05, max(0.0, deadline - time.monotonic()))
            if step <= 0:
                return []
            self._event.wait(step)


# ----------------------------------------------------------------------
TRANSPORTS: dict[str, type[Transport]] = {
    MultiprocessTransport.name: MultiprocessTransport,
    InProcessTransport.name: InProcessTransport,
    TcpTransport.name: TcpTransport,
}


def get_transport(transport: str | Transport | None) -> Transport:
    """Resolve a transport name (or pass an instance through)."""
    if transport is None:
        return MultiprocessTransport()
    if isinstance(transport, Transport):
        return transport
    try:
        return TRANSPORTS[transport]()
    except KeyError:
        raise KeyError(f"unknown transport {transport!r}; registered "
                       f"transports: {sorted(TRANSPORTS)}") from None
