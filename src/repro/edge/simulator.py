"""Discrete-event simulation of ED-ViT distributed inference.

Models the paper's deployment (Fig. 3): N worker devices each hold one or
more sub-models; for every input sample each worker runs its sub-models
and ships the CLS features through its (tc-capped) link to the fusion
device, which concatenates them and runs the fusion MLP.  Per-sample
latency is the scatter→compute→transfer→fuse critical path; streams of
samples pipeline naturally through the FIFO resources.

Two engines produce identical results: the event-loop DES (one Python
callback per event — general, and the reference semantics) and the
vectorized fast path (:mod:`repro.edge.fastsim`) that advances the whole
fleet's FIFO recurrences with numpy — orders of magnitude faster at
fleet scale and bit-identical where applicable.  ``engine="auto"`` (the
default, and what :class:`repro.planning.Planner` scoring uses) picks the
fast path automatically whenever the run is pure star-pattern — which it
always is for ``simulate_inference``'s own workload unless inputs are
shipped to workers on an open arrival stream.
"""

from __future__ import annotations

import dataclasses
import math
import statistics
from typing import Sequence

from . import fastsim
from .codec import get_codec
from .device import DeviceModel
from .network import StarTopology, uniform_star
from .sim_core import Barrier, FifoResource, Simulator

ENGINES = ("auto", "event", "vector")


@dataclasses.dataclass(frozen=True)
class SubModelProfile:
    """What the simulator needs to know about one deployed sub-model."""

    model_id: str
    flops_per_sample: float
    feature_dim: int
    codec: str = "raw32"               # wire codec the features ship with

    @property
    def feature_bytes(self) -> int:
        """Estimated wire bytes per sample under the profile's codec."""
        return get_codec(self.codec).estimate_bytes(self.feature_dim)


@dataclasses.dataclass(frozen=True)
class DeploymentSpec:
    """A complete deployment: devices, placement, fusion cost, topology."""

    devices: list[DeviceModel]
    placement: dict[str, str]              # model_id -> device_id
    profiles: dict[str, SubModelProfile]   # model_id -> profile
    fusion_device: DeviceModel
    fusion_flops: float
    topology: StarTopology | None = None
    input_bytes: int = 0                   # >0 to also ship inputs to workers

    def resolved_topology(self) -> StarTopology:
        if self.topology is not None:
            return self.topology
        ids = [d.device_id for d in self.devices] + [self.fusion_device.device_id]
        return uniform_star(ids)


@dataclasses.dataclass
class SimulationResult:
    latencies: list[float]                 # per-sample end-to-end seconds
    makespan: float
    device_busy: dict[str, float]
    link_busy: dict[str, float]
    # Merged busy intervals per resource ("cpu:<id>" / "link:<id>"), the
    # FifoResource segment semantics — lets callers compute horizon-clamped
    # utilization after the run, regardless of which engine produced it.
    busy_segments: dict[str, list[tuple[float, float]]] = \
        dataclasses.field(default_factory=dict)
    engine: str = "event"                  # which engine produced this run

    @property
    def mean_latency(self) -> float:
        return statistics.fmean(self.latencies)

    @property
    def max_latency(self) -> float:
        return max(self.latencies)

    @property
    def throughput(self) -> float:
        """Completed samples per second over the whole run."""
        return len(self.latencies) / self.makespan if self.makespan > 0 else 0.0

    def busy_within(self, resource: str, horizon: float) -> float:
        """Service seconds booked on ``resource`` inside ``[0, horizon]``
        (:meth:`repro.edge.sim_core.FifoResource.busy_within` semantics)."""
        total = 0.0
        for start, finish in self.busy_segments.get(resource, []):
            if start >= horizon:
                break
            total += min(finish, horizon) - start
        return total

    def utilization(self, resource: str, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_within(resource, horizon) / horizon)


def _resolve_arrivals(num_samples: int, arrival_interval: float,
                      arrival_times: Sequence[float] | None) -> list[float]:
    """The absolute per-sample arrival times a run simulates.

    ``arrival_times`` (e.g. a :class:`repro.serving.traffic.ArrivalTrace`'s
    arrivals) overrides the uniform ``num_samples`` × ``arrival_interval``
    schedule; it must be non-empty, finite, non-negative and sorted.
    """
    if arrival_times is not None:
        if arrival_interval:
            raise ValueError(
                "pass arrival_interval or arrival_times, not both")
        arrivals = [float(t) for t in arrival_times]
        if not arrivals:
            raise ValueError("arrival_times must not be empty")
        if not all(math.isfinite(t) for t in arrivals) or arrivals[0] < 0:
            raise ValueError("arrival_times must be finite and non-negative")
        for earlier, later in zip(arrivals, arrivals[1:]):
            if later < earlier:
                raise ValueError("arrival_times must be sorted")
        return arrivals
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    return [k * arrival_interval for k in range(num_samples)]


def simulate_inference(spec: DeploymentSpec, num_samples: int = 1,
                       arrival_interval: float = 0.0,
                       failed_devices: set[str] | frozenset[str] | None = None,
                       arrival_times: Sequence[float] | None = None,
                       engine: str = "auto",
                       ) -> SimulationResult:
    """Simulate inferences through the deployment.

    ``arrival_interval == 0`` issues all samples at t=0 (batch mode);
    a positive interval issues an open stream, exercising pipelining.
    ``arrival_times`` replaces both with an explicit sorted schedule of
    absolute arrival seconds (trace-driven simulation) — the sample count
    is then ``len(arrival_times)``.

    ``failed_devices`` marks crashed workers: their sub-models never
    deliver features and the fusion barrier proceeds without them (the
    fusion device zero-fills the missing slots — see
    :func:`repro.splitting.fusion.fused_predict` with ``failed``).

    ``engine`` selects the scorer: ``"event"`` runs the callback event
    loop, ``"vector"`` forces the numpy fast path (ValueError when its
    star-pattern preconditions do not hold), and ``"auto"`` — the default —
    uses the fast path whenever it is exact and falls back otherwise.
    Both engines return bit-identical results.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    arrivals = _resolve_arrivals(num_samples, arrival_interval, arrival_times)
    failed = set(failed_devices or ())
    known = {d.device_id for d in spec.devices}
    if not failed <= known:
        raise KeyError(f"failed devices not in fleet: {sorted(failed - known)}")

    if engine != "event":
        if fastsim.applicable(spec, arrivals):
            run = fastsim.simulate_star(spec, arrivals, failed)
            return SimulationResult(
                latencies=run.latencies.tolist(),
                makespan=run.makespan,
                device_busy=run.device_busy,
                link_busy=run.link_busy,
                busy_segments=run.busy_segments,
                engine="vector")
        if engine == "vector":
            raise ValueError(
                "vector engine requires the star pattern to be static: "
                "input_bytes == 0 or a single batch arrival instant")
    return _simulate_event_loop(spec, arrivals, failed)


def _simulate_event_loop(spec: DeploymentSpec, arrivals_schedule: list[float],
                         failed: set[str]) -> SimulationResult:
    """The reference callback-per-event DES."""
    num_samples = len(arrivals_schedule)
    sim = Simulator()
    topology = spec.resolved_topology()

    compute: dict[str, FifoResource] = {
        d.device_id: FifoResource(sim, f"cpu:{d.device_id}") for d in spec.devices}
    fusion_cpu = FifoResource(sim, f"cpu:{spec.fusion_device.device_id}")
    uplinks: dict[str, FifoResource] = {
        d.device_id: FifoResource(sim, f"link:{d.device_id}") for d in spec.devices}

    device_by_id = {d.device_id: d for d in spec.devices}
    models_on: dict[str, list[SubModelProfile]] = {d.device_id: [] for d in spec.devices}
    for model_id, device_id in spec.placement.items():
        if device_id not in models_on:
            raise KeyError(f"placement targets unknown device {device_id!r}")
        models_on[device_id].append(spec.profiles[model_id])

    latencies: dict[int, float] = {}
    arrivals: dict[int, float] = {}

    def start_sample(k: int) -> None:
        arrivals[k] = sim.now

        def finish_fusion() -> None:
            done = fusion_cpu.acquire(
                spec.fusion_device.compute_seconds(spec.fusion_flops))
            sim.schedule_at(done, lambda: latencies.__setitem__(
                k, sim.now - arrivals[k]))

        live = {d: profiles for d, profiles in models_on.items()
                if d not in failed}
        expected = sum(len(p) for p in live.values())
        if expected == 0:
            finish_fusion()
            return
        barrier = Barrier(expected=expected, callback=finish_fusion)

        for device_id, profiles in live.items():
            device = device_by_id[device_id]
            for profile in profiles:
                _run_submodel(sim, device, profile, compute[device_id],
                              uplinks[device_id], topology, spec.input_bytes,
                              barrier)

    for k in range(num_samples):
        sim.schedule_at(arrivals_schedule[k], lambda k=k: start_sample(k))
    sim.run()

    if len(latencies) != num_samples:
        raise RuntimeError("simulation ended with unfinished samples")
    ordered = [latencies[k] for k in range(num_samples)]
    makespan = max(arrivals[k] + latencies[k] for k in range(num_samples))
    segments = {r.name: r.segments()
                for r in [*compute.values(), *uplinks.values()]}
    segments[fusion_cpu.name] = fusion_cpu.segments()
    return SimulationResult(
        latencies=ordered,
        makespan=makespan,
        device_busy={d: r.busy_seconds for d, r in compute.items()}
        | {spec.fusion_device.device_id: fusion_cpu.busy_seconds},
        link_busy={d: r.busy_seconds for d, r in uplinks.items()},
        busy_segments=segments,
        engine="event",
    )


def _run_submodel(sim: Simulator, device: DeviceModel, profile: SubModelProfile,
                  cpu: FifoResource, uplink: FifoResource,
                  topology: StarTopology, input_bytes: int,
                  barrier: Barrier) -> None:
    """Chain: (optional input receive) -> compute -> feature transfer -> barrier."""

    def after_input() -> None:
        compute_done = cpu.acquire(device.compute_seconds(profile.flops_per_sample))

        def after_compute() -> None:
            transfer = topology.transfer_seconds(device.device_id,
                                                 profile.feature_bytes)
            send_done = uplink.acquire(transfer)
            sim.schedule_at(send_done, barrier.arrive)

        sim.schedule_at(compute_done, after_compute)

    if input_bytes > 0:
        recv = uplink.acquire(topology.transfer_seconds(device.device_id,
                                                        input_bytes))
        sim.schedule_at(recv, after_input)
    else:
        after_input()


def single_device_latency(device: DeviceModel, flops: float) -> float:
    """Latency of running one monolithic model on one device (the paper's
    dotted baseline lines in Figs. 4–5)."""
    return device.compute_seconds(flops)


def utilization_report(result: SimulationResult) -> dict[str, float]:
    """Per-device compute utilization over the run's makespan."""
    if result.makespan <= 0:
        return {d: 0.0 for d in result.device_busy}
    return {d: min(1.0, busy / result.makespan)
            for d, busy in result.device_busy.items()}


def energy_report(spec: DeploymentSpec,
                  result: SimulationResult) -> dict[str, float]:
    """Per-device energy in joules, from executed MACs (Section III's
    energy-proportional-to-FLOPs model)."""
    from ..profiling.energy import JOULES_PER_MAC

    devices = {d.device_id: d for d in spec.devices}
    devices[spec.fusion_device.device_id] = spec.fusion_device
    report = {}
    for device_id, busy in result.device_busy.items():
        macs = busy * devices[device_id].macs_per_second
        report[device_id] = macs * JOULES_PER_MAC
    return report
