"""Vectorized fast path for the star-topology inference pattern.

Every sample simulated by :func:`repro.edge.simulator.simulate_inference`
follows the same deterministic chain through FIFO resources — (optional
input receive) → device compute → feature transfer → fusion barrier →
fusion compute — so fleet-scale runs do not need a Python callback per
event.  For a FIFO resource the finish times obey the Lindley recurrence

    ``finish_i = max(ready_i, finish_{i-1}) + service_i``

and because every device owns its CPU and uplink independently, the
recurrence advances for the *whole fleet at once* with ``np.maximum`` and
adds, one short numpy step per (sample, sub-model slot) instead of ~4
Python events per (sample, sub-model, device).  The operations are applied
in the exact order and with the exact float64 arithmetic the event loop
uses (``max`` then ``+``), so latencies, busy totals, and busy segments are
**bit-identical** to the event-loop DES, not merely close — the CI
capacity smoke and the property suite assert this.

Applicability: the pattern must be closed-form FIFO, which holds whenever

* ``input_bytes == 0`` (no input shipping — the uplink only carries
  feature sends, whose acquisition order is the sample order), or
* all samples arrive at the same instant (batch mode — every input
  receive is booked before any feature send, so the uplink order is
  still static).

With input shipping *and* staggered arrivals the uplink interleaves
receives and sends in an order that depends on queue state, so
:func:`applicable` returns False and the caller falls back to the event
loop.  :func:`simulate_star` is not called directly by users — use
``simulate_inference(..., engine="vector")`` (or the default ``"auto"``).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:                      # pragma: no cover - typing only
    from .simulator import DeploymentSpec


def applicable(spec: "DeploymentSpec", arrivals: Sequence[float]) -> bool:
    """True when the vectorized scorer reproduces the event loop exactly."""
    if spec.input_bytes <= 0:
        return True
    first = arrivals[0]
    return all(t == first for t in arrivals)


@dataclasses.dataclass
class StarRunOutput:
    """Raw vectorized-run results, assembled into a SimulationResult by
    :func:`repro.edge.simulator.simulate_inference`."""

    latencies: np.ndarray              # (num_samples,) float64
    makespan: float
    device_busy: dict[str, float]
    link_busy: dict[str, float]
    busy_segments: dict[str, list[tuple[float, float]]]


def _merge_segments(starts: np.ndarray,
                    finishes: np.ndarray) -> list[tuple[float, float]]:
    """Merge back-to-back busy intervals, FifoResource-style.

    ``starts``/``finishes`` are in acquisition order; intervals are
    disjoint by FIFO construction, so merging only joins intervals whose
    boundaries touch exactly.  Zero-length intervals are dropped, matching
    ``FifoResource.acquire``'s ``service_seconds > 0`` guard.
    """
    return _merge_segment_rows(starts, finishes,
                               np.zeros(starts.size, dtype=np.intp), 1)[0]


def _merge_segment_rows(starts: np.ndarray, finishes: np.ndarray,
                        rows: np.ndarray,
                        num_rows: int) -> list[list[tuple[float, float]]]:
    """Merge busy intervals for many resources in one numpy pass.

    ``rows`` labels each interval with its resource index; intervals of
    one resource are contiguous and in acquisition order.  One global
    merge beats a per-device Python loop by ~two orders of magnitude at
    thousand-device fleets.
    """
    keep = finishes > starts
    s = starts[keep]
    f = finishes[keep]
    rows = rows[keep]
    out: list[list[tuple[float, float]]] = [[] for _ in range(num_rows)]
    if s.size == 0:
        return out
    new = np.empty(s.size, dtype=bool)
    new[0] = True
    np.logical_or(s[1:] > f[:-1], rows[1:] != rows[:-1], out=new[1:])
    heads = np.flatnonzero(new)
    tails = np.append(heads[1:], s.size) - 1
    for row, start, finish in zip(rows[heads].tolist(), s[heads].tolist(),
                                  f[tails].tolist()):
        out[row].append((start, finish))
    return out


def simulate_star(spec: "DeploymentSpec", arrivals: Sequence[float],
                  failed: set[str]) -> StarRunOutput:
    """Score a star-topology deployment without the event loop.

    ``arrivals`` are absolute, non-decreasing sample arrival times;
    ``failed`` devices contribute no features (their resources stay idle),
    mirroring ``simulate_inference(failed_devices=...)``.
    """
    topology = spec.resolved_topology()
    models_on: dict[str, list] = {d.device_id: [] for d in spec.devices}
    for model_id, device_id in spec.placement.items():
        if device_id not in models_on:
            raise KeyError(f"placement targets unknown device {device_id!r}")
        models_on[device_id].append(spec.profiles[model_id])

    t = np.asarray(arrivals, dtype=np.float64)
    num_samples = t.size
    active = [d for d in spec.devices
              if d.device_id not in failed and models_on[d.device_id]]
    width = len(active)
    fusion_service = spec.fusion_device.compute_seconds(spec.fusion_flops)

    segments: dict[str, list[tuple[float, float]]] = {}
    for d in spec.devices:
        segments[f"cpu:{d.device_id}"] = []
        segments[f"link:{d.device_id}"] = []
    device_busy = {d.device_id: 0.0 for d in spec.devices}
    link_busy = {d.device_id: 0.0 for d in spec.devices}

    if width == 0:
        # No live sub-models: the fusion barrier is vacuous and every
        # sample goes straight to the fusion CPU at its arrival time.
        barrier = t
    else:
        slots = max(len(models_on[d.device_id]) for d in active)
        compute_s = np.zeros((width, slots))
        send_s = np.zeros((width, slots))
        mask = np.zeros((width, slots), dtype=bool)
        for i, dev in enumerate(active):
            for j, profile in enumerate(models_on[dev.device_id]):
                compute_s[i, j] = dev.compute_seconds(profile.flops_per_sample)
                send_s[i, j] = topology.transfer_seconds(dev.device_id,
                                                         profile.feature_bytes)
                mask[i, j] = True

        link_free = np.zeros(width)
        link_acc = np.zeros(width)
        recv_finish = None
        recv_start_log = recv_finish_log = None
        if spec.input_bytes > 0:
            # Batch mode (checked by `applicable`): every sample's input
            # receive is booked at t[0], before any feature send, so the
            # uplink serves all receives first, in flattened sample-major
            # order — exactly the event loop's acquisition order.
            recv_s = np.array([topology.transfer_seconds(d.device_id,
                                                         spec.input_bytes)
                               for d in active])
            recv_start_log = np.empty((num_samples, width, slots))
            recv_finish_log = np.empty((num_samples, width, slots))
            t0 = t[0]
            for k in range(num_samples):
                for j in range(slots):
                    in_slot = mask[:, j]
                    start = np.maximum(t0, link_free)
                    finish = start + recv_s
                    recv_start_log[k, :, j] = start
                    recv_finish_log[k, :, j] = finish
                    link_free = np.where(in_slot, finish, link_free)
                    link_acc = np.where(in_slot, link_acc + recv_s, link_acc)
            recv_finish = recv_finish_log

        cpu_free = np.zeros(width)
        cpu_acc = np.zeros(width)
        cpu_start_log = np.empty((num_samples, width, slots))
        cpu_finish_log = np.empty((num_samples, width, slots))
        send_start_log = np.empty((num_samples, width, slots))
        send_finish_log = np.empty((num_samples, width, slots))
        barrier = np.empty(num_samples)
        for k in range(num_samples):
            for j in range(slots):
                in_slot = mask[:, j]
                ready = t[k] if recv_finish is None else recv_finish[k, :, j]
                start_c = np.maximum(ready, cpu_free)
                finish_c = start_c + compute_s[:, j]
                cpu_start_log[k, :, j] = start_c
                cpu_finish_log[k, :, j] = finish_c
                cpu_free = np.where(in_slot, finish_c, cpu_free)
                cpu_acc = np.where(in_slot, cpu_acc + compute_s[:, j], cpu_acc)
                start_u = np.maximum(finish_c, link_free)
                finish_u = start_u + send_s[:, j]
                send_start_log[k, :, j] = start_u
                send_finish_log[k, :, j] = finish_u
                link_free = np.where(in_slot, finish_u, link_free)
                link_acc = np.where(in_slot, link_acc + send_s[:, j], link_acc)
            # The barrier fires at the last feature arrival: the max of
            # every live device's final send finish for this sample.
            barrier[k] = link_free.max()

        for device_id, busy, lbusy in zip((d.device_id for d in active),
                                          cpu_acc.tolist(), link_acc.tolist()):
            device_busy[device_id] = busy
            link_busy[device_id] = lbusy

        # Segment assembly, one global merge per resource class.  The logs
        # are (sample, device, slot); per device the acquisition order is
        # flattened sample-major (k, j), so transposing to device-major and
        # ravelling reproduces it — and labelling each interval with its
        # device index lets `_merge_segment_rows` split per-device segment
        # lists out of a single numpy pass instead of a per-device loop
        # (which dominated runtime at thousand-device fleets).
        lane = np.broadcast_to(mask[:, None, :],
                               (width, num_samples, slots)).ravel()
        rows = np.repeat(np.arange(width), num_samples * slots)[lane]
        cpu_rows = _merge_segment_rows(
            cpu_start_log.transpose(1, 0, 2).ravel()[lane],
            cpu_finish_log.transpose(1, 0, 2).ravel()[lane],
            rows, width)
        if recv_start_log is None:
            link_rows = _merge_segment_rows(
                send_start_log.transpose(1, 0, 2).ravel()[lane],
                send_finish_log.transpose(1, 0, 2).ravel()[lane],
                rows, width)
        else:
            # Per device the uplink serves every input receive before any
            # feature send (batch mode), so stack the recv block ahead of
            # the send block on a per-device axis before ravelling.
            def _stack(recv_log: np.ndarray, send_log: np.ndarray) -> np.ndarray:
                return np.stack([recv_log.transpose(1, 0, 2),
                                 send_log.transpose(1, 0, 2)], axis=1).ravel()
            lane2 = np.broadcast_to(mask[:, None, None, :],
                                    (width, 2, num_samples, slots)).ravel()
            rows2 = np.repeat(np.arange(width), 2 * num_samples * slots)[lane2]
            link_rows = _merge_segment_rows(
                _stack(recv_start_log, send_start_log)[lane2],
                _stack(recv_finish_log, send_finish_log)[lane2],
                rows2, width)
        for i, dev in enumerate(active):
            segments[f"cpu:{dev.device_id}"] = cpu_rows[i]
            segments[f"link:{dev.device_id}"] = link_rows[i]

    # Fusion CPU: barrier times are non-decreasing (each device's send
    # finishes grow with the sample index), so acquisitions happen in
    # sample order — a short scalar recurrence.
    fusion_free = 0.0
    fusion_acc = 0.0
    fusion_start = np.empty(num_samples)
    fusion_finish = np.empty(num_samples)
    latencies = np.empty(num_samples)
    for k in range(num_samples):
        ready = barrier[k]
        start = fusion_free if fusion_free > ready else ready
        finish = start + fusion_service
        fusion_free = finish
        fusion_acc += fusion_service
        fusion_start[k] = start
        fusion_finish[k] = finish
        latencies[k] = finish - t[k]

    fusion_id = spec.fusion_device.device_id
    device_busy[fusion_id] = fusion_acc
    segments[f"cpu:{fusion_id}"] = _merge_segments(fusion_start, fusion_finish)

    makespan = float(np.max(t + latencies))
    return StarRunOutput(latencies=latencies, makespan=makespan,
                         device_busy=device_busy, link_busy=link_busy,
                         busy_segments=segments)
