"""Typed constructors and accessors for the worker wire protocol.

The parent↔worker messages (:mod:`repro.edge.runtime`) are plain tuples
so every transport can ship them unchanged, but their *shape* is a
contract four modules depend on: the worker loop, the cluster's
dispatch/poll surface, the serving gather loop, and the trace-context
propagation added in the observability layer.  This module is the single
place that shape lives — everything else builds messages through the
``*_message`` constructors and reads fields through the accessors, and
the static checker (:mod:`repro.analysis`, rule ``wire-protocol``) flags
raw tuple literals or ``message[0] == "..."`` string matching anywhere
else, so the protocol cannot drift one call site at a time.

Wire shapes (see :data:`ARITY` for the machine-readable form)::

    parent -> worker:
        (INFER, request_id, x)             # legacy 3-tuple, tracing off
        (INFER, request_id, x, trace)      # trace context propagated
        (STOP,)
    worker -> parent:
        (READY, worker_id)                 # once, after model build
        (FAILED, worker_id, detail)        # startup failure, then exit
        (FEATURES, request_id, encoded, stats)
        (ERROR, request_id | None, detail)
        (STOPPED, worker_id)
"""

from __future__ import annotations

from typing import Any

# Command tags, parent -> worker.
INFER = "infer"
STOP = "stop"
# Command tags, worker -> parent.
READY = "ready"
FAILED = "failed"
FEATURES = "features"
ERROR = "error"
STOPPED = "stopped"

COMMANDS = frozenset({INFER, STOP, READY, FAILED, FEATURES, ERROR, STOPPED})

# command -> (min_len, max_len) including the command element itself.
# INFER's optional 4th element is the trace context; its absence keeps
# the wire byte-identical to the pre-tracing protocol.
ARITY: dict[str, tuple[int, int]] = {
    INFER: (3, 4),
    STOP: (1, 1),
    READY: (2, 2),
    FAILED: (3, 3),
    FEATURES: (4, 4),
    ERROR: (3, 3),
    STOPPED: (2, 2),
}


class WireError(ValueError):
    """A message does not match the wire protocol's declared shape."""


# ----------------------------------------------------------------------
# Constructors (the only sanctioned way to build a wire tuple).
def infer_message(request_id: int, x, trace: dict | None = None) -> tuple:
    """An inference dispatch; ``trace`` rides as the optional 4th element."""
    if trace is None:
        return (INFER, request_id, x)
    return (INFER, request_id, x, trace)


def stop_message() -> tuple:
    return (STOP,)


def ready_message(worker_id: str) -> tuple:
    return (READY, worker_id)


def failed_message(worker_id: str, detail: str) -> tuple:
    """Typed startup failure (model build / codec resolution died)."""
    return (FAILED, worker_id, detail)


def features_message(request_id: int, encoded, stats: dict) -> tuple:
    return (FEATURES, request_id, encoded, stats)


def error_message(request_id: int | None, detail: str) -> tuple:
    """Per-request failure; ``request_id`` is ``None`` for unparseable
    commands that never carried one."""
    return (ERROR, request_id, detail)


def stopped_message(worker_id: str) -> tuple:
    return (STOPPED, worker_id)


# ----------------------------------------------------------------------
# Accessors (the only sanctioned way to take a wire tuple apart).
def command(message: tuple) -> Any:
    """The message's command tag (its first element)."""
    return message[0]


def request_id(message: tuple) -> Any:
    """Request id of an INFER/FEATURES/ERROR message."""
    return message[1]


def payload(message: tuple) -> Any:
    """Third element: input array (INFER), encoded features (FEATURES),
    or detail string (ERROR/FAILED)."""
    return message[2]


def stats(message: tuple) -> Any:
    """The per-request stats dict of a FEATURES message."""
    return message[3]


def trace_context(message: tuple) -> dict | None:
    """The propagated trace context of an INFER message, if present."""
    return message[3] if len(message) > 3 else None


def startup_detail(message: tuple) -> Any:
    """Human-readable detail of a FAILED startup reply.

    Tolerates malformed/legacy replies by returning the whole message —
    start-up error paths must degrade to *something* printable.
    """
    return message[2] if len(message) > 2 else message


def check(message: tuple) -> tuple:
    """Validate a message against :data:`ARITY`; returns it unchanged.

    Raises :class:`WireError` on an unknown command or arity drift.
    Debug/ingress guard — the hot paths trust their own constructors.
    """
    if not isinstance(message, tuple) or not message:
        raise WireError(f"not a wire message: {message!r}")
    tag = message[0]
    bounds = ARITY.get(tag)
    if bounds is None:
        raise WireError(f"unknown wire command {tag!r}; "
                        f"known: {sorted(COMMANDS)}")
    lo, hi = bounds
    if not lo <= len(message) <= hi:
        raise WireError(
            f"{tag!r} message has {len(message)} elements; "
            f"protocol allows {lo}" + ("" if lo == hi else f"..{hi}"))
    return message
