"""Network model: the paper's gigabit switch with `tc`-capped 2 Mbps links.

Every device connects to a switch through its own full-duplex link, so
transfers from different devices proceed in parallel; transfers sharing a
link serialize.  The paper caps device bandwidth at 2 Mbps with Linux
``tc`` to mimic constrained deployments — :func:`tc_capped_link` mirrors
that configuration.
"""

from __future__ import annotations

import dataclasses

BITS_PER_BYTE = 8

# Section V-A: "The maximum bandwidth between devices is capped at 2 Mbps".
TC_CAP_BPS = 2_000_000
# The switch itself (Huawei S1720-52GWR) is gigabit.
GIGABIT_BPS = 1_000_000_000
# Per-message protocol/propagation overhead through one switch hop.
DEFAULT_OVERHEAD_S = 0.0002

# Section V-D constants.
RAW_IMAGE_BYTES = 224 * 224 * 3  # = 150528, the paper's per-image payload
FLOAT32_BYTES = 4


@dataclasses.dataclass(frozen=True)
class LinkModel:
    """A point-to-point link with fixed bandwidth and per-message overhead."""

    bandwidth_bps: float = TC_CAP_BPS
    overhead_seconds: float = DEFAULT_OVERHEAD_S

    def transfer_seconds(self, num_bytes: int) -> float:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return num_bytes * BITS_PER_BYTE / self.bandwidth_bps + self.overhead_seconds


def tc_capped_link() -> LinkModel:
    """The paper's experimental link: 2 Mbps cap through the gigabit switch."""
    return LinkModel(bandwidth_bps=TC_CAP_BPS)


def gigabit_link() -> LinkModel:
    return LinkModel(bandwidth_bps=GIGABIT_BPS)


def feature_bytes(embed_dim: int) -> int:
    """Bytes to ship one CLS feature vector (float32), Section V-D.

    With ViT-Base pruned to half its heads (the single-device deployment)
    the feature is 384 floats = 1536 B; at ten devices it is 128 floats =
    512 B — both match the paper's reported sizes.
    """
    return embed_dim * FLOAT32_BYTES


def communication_reduction(num_feature_bytes: int,
                            image_bytes: int = RAW_IMAGE_BYTES) -> float:
    """How much smaller the transmitted feature is than the raw image."""
    return image_bytes / num_feature_bytes


@dataclasses.dataclass(frozen=True)
class StarTopology:
    """All devices attached to one switch; per-device dedicated links."""

    device_links: dict[str, LinkModel]
    switch_latency_seconds: float = 0.0

    def link_of(self, device_id: str) -> LinkModel:
        if device_id not in self.device_links:
            raise KeyError(f"device {device_id!r} not attached to topology")
        return self.device_links[device_id]

    def transfer_seconds(self, device_id: str, num_bytes: int) -> float:
        return (self.link_of(device_id).transfer_seconds(num_bytes)
                + self.switch_latency_seconds)


def uniform_star(device_ids: list[str],
                 link: LinkModel | None = None) -> StarTopology:
    link = link or tc_capped_link()
    return StarTopology(device_links={d: link for d in device_ids})
