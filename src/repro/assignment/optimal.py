"""Exhaustive optimal assignment — a reference for the greedy heuristic.

Section IV-D frames assignment as a 0-1-knapsack-style problem.  For the
small instances in the benchmarks (≤ 10 sub-models, ≤ 10 devices) we can
enumerate assignments with branch-and-bound and report the true optimum of
``max min_i (E_i - L·e_j)``, quantifying the greedy algorithm's optimality
gap (an ablation DESIGN.md calls out).
"""

from __future__ import annotations

import itertools

from .problem import AssignmentPlan, DeviceSpec, InfeasibleAssignment, SubModelSpec


def optimal_assign(devices: list[DeviceSpec], submodels: list[SubModelSpec],
                   num_samples: int,
                   max_states: int = 2_000_000) -> AssignmentPlan:
    """Exact search over assignments maximizing the minimum residual energy.

    Branch-and-bound over sub-models in decreasing workload order; prunes
    branches whose (optimistic) objective cannot beat the incumbent.
    Raises :class:`InfeasibleAssignment` when no feasible assignment exists
    or the state limit is exceeded.
    """
    if not devices:
        raise InfeasibleAssignment("no devices available")
    order = sorted(submodels, key=lambda m: m.flops_per_sample, reverse=True)
    device_ids = [d.device_id for d in devices]
    base_memory = {d.device_id: d.memory_bytes for d in devices}
    base_energy = {d.device_id: float(d.energy_flops) for d in devices}

    best_plan: AssignmentPlan | None = None
    best_objective = float("-inf")
    states = 0

    def recurse(idx: int, memory: dict[str, int], energy: dict[str, float],
                mapping: dict[str, str]) -> None:
        nonlocal best_plan, best_objective, states
        states += 1
        if states > max_states:
            raise InfeasibleAssignment("optimal search exceeded state limit")
        hosting = set(mapping.values())
        current_min = min((energy[d] for d in hosting), default=float("inf"))
        if current_min <= best_objective:
            return  # placing more models can only lower the minimum
        if idx == len(order):
            plan = AssignmentPlan(mapping=dict(mapping),
                                  residual_memory=dict(memory),
                                  residual_energy=dict(energy))
            best_objective = plan.objective
            best_plan = plan
            return
        model = order[idx]
        need = model.workload_flops(num_samples)
        # Deduplicate symmetric devices (same residual state) to cut search.
        seen: set[tuple[int, float]] = set()
        for device_id in device_ids:
            state = (memory[device_id], energy[device_id])
            if state in seen:
                continue
            seen.add(state)
            if memory[device_id] < model.size_bytes or energy[device_id] < need:
                continue
            memory[device_id] -= model.size_bytes
            energy[device_id] -= need
            mapping[model.model_id] = device_id
            recurse(idx + 1, memory, energy, mapping)
            del mapping[model.model_id]
            memory[device_id] += model.size_bytes
            energy[device_id] += need

    recurse(0, dict(base_memory), dict(base_energy), {})
    if best_plan is None:
        raise InfeasibleAssignment("no feasible assignment exists")
    return best_plan


def brute_force_assign(devices: list[DeviceSpec], submodels: list[SubModelSpec],
                       num_samples: int) -> AssignmentPlan | None:
    """Plain product enumeration (tiny instances only; used to test B&B)."""
    device_ids = [d.device_id for d in devices]
    best: AssignmentPlan | None = None
    for combo in itertools.product(device_ids, repeat=len(submodels)):
        memory = {d.device_id: d.memory_bytes for d in devices}
        energy = {d.device_id: float(d.energy_flops) for d in devices}
        ok = True
        for model, device_id in zip(submodels, combo):
            need = model.workload_flops(num_samples)
            if memory[device_id] < model.size_bytes or energy[device_id] < need:
                ok = False
                break
            memory[device_id] -= model.size_bytes
            energy[device_id] -= need
        if not ok:
            continue
        plan = AssignmentPlan(
            mapping={m.model_id: d for m, d in zip(submodels, combo)},
            residual_memory=memory, residual_energy=energy)
        if best is None or plan.objective > best.objective:
            best = plan
    return best
