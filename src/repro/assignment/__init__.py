"""Sub-model-to-device assignment (Algorithm 3) and optimal reference."""

from .greedy import greedy_assign, try_greedy_assign
from .optimal import brute_force_assign, optimal_assign
from .problem import (
    AssignmentPlan,
    DeviceSpec,
    InfeasibleAssignment,
    SubModelSpec,
    validate_plan,
)

__all__ = [
    "AssignmentPlan",
    "DeviceSpec",
    "InfeasibleAssignment",
    "SubModelSpec",
    "brute_force_assign",
    "greedy_assign",
    "optimal_assign",
    "try_greedy_assign",
    "validate_plan",
]
