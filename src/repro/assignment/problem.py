"""Data model for the partitioning/assignment optimization problem (Eq. 1).

Devices carry memory and energy (FLOPs) budgets; sub-models carry a size
and a per-sample FLOPs cost.  An assignment maps every sub-model to a
device subject to::

    L * e_j <= E_i          (energy of the hosting device)
    m_j <= M_i              (memory of the hosting device)
    sum_j m_j <= budget     (fleet-wide memory budget)

maximizing ``min_i (E_i - L * e_j)`` — the weakest device's residual
energy, a proxy for the worst-case inference latency.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """An edge device's resource envelope (the paper's M_i and E_i)."""

    device_id: str
    memory_bytes: int
    energy_flops: float

    def __post_init__(self):
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.energy_flops <= 0:
            raise ValueError("energy_flops must be positive")


@dataclasses.dataclass(frozen=True)
class SubModelSpec:
    """Resource footprint of one sub-model (the paper's m_j and e_j)."""

    model_id: str
    size_bytes: int
    flops_per_sample: float
    classes: tuple[int, ...] = ()

    def workload_flops(self, num_samples: int) -> float:
        return self.flops_per_sample * num_samples


@dataclasses.dataclass
class AssignmentPlan:
    """A feasible mapping of sub-models to devices plus residual resources."""

    mapping: dict[str, str]                   # model_id -> device_id
    residual_memory: dict[str, int]           # device_id -> bytes left
    residual_energy: dict[str, float]         # device_id -> FLOPs left

    @property
    def objective(self) -> float:
        """The paper's objective: the minimum residual energy.

        The min ranges over devices that actually host a sub-model
        ("Model_j deploys on D_i" in Eq. 1) — otherwise the weakest idle
        device would make every feasible plan score identically.  Falls
        back to the global minimum when nothing is placed.
        """
        hosting = set(self.mapping.values())
        pool = [e for d, e in self.residual_energy.items() if d in hosting]
        if not pool:
            pool = list(self.residual_energy.values())
        return min(pool)

    def device_of(self, model_id: str) -> str:
        return self.mapping[model_id]

    def models_on(self, device_id: str) -> list[str]:
        return [m for m, d in self.mapping.items() if d == device_id]


class InfeasibleAssignment(Exception):
    """Raised when no assignment satisfies the constraints."""


def validate_plan(plan: AssignmentPlan, devices: list[DeviceSpec],
                  submodels: list[SubModelSpec], num_samples: int,
                  memory_budget: int | None = None) -> None:
    """Raise ``InfeasibleAssignment`` if the plan violates any constraint."""
    device_by_id = {d.device_id: d for d in devices}
    model_by_id = {m.model_id: m for m in submodels}
    if set(plan.mapping) != set(model_by_id):
        raise InfeasibleAssignment("plan must assign every sub-model exactly once")
    if memory_budget is not None:
        total = sum(m.size_bytes for m in submodels)
        if total > memory_budget:
            raise InfeasibleAssignment(
                f"total sub-model size {total} exceeds budget {memory_budget}")
    mem_used: dict[str, int] = {d: 0 for d in device_by_id}
    energy_used: dict[str, float] = {d: 0.0 for d in device_by_id}
    for model_id, device_id in plan.mapping.items():
        if device_id not in device_by_id:
            raise InfeasibleAssignment(f"unknown device {device_id!r}")
        model = model_by_id[model_id]
        mem_used[device_id] += model.size_bytes
        energy_used[device_id] += model.workload_flops(num_samples)
    for device_id, device in device_by_id.items():
        if mem_used[device_id] > device.memory_bytes:
            raise InfeasibleAssignment(
                f"device {device_id} over memory: {mem_used[device_id]} "
                f"> {device.memory_bytes}")
        if energy_used[device_id] > device.energy_flops:
            raise InfeasibleAssignment(
                f"device {device_id} over energy: {energy_used[device_id]:.3g} "
                f"> {device.energy_flops:.3g}")
