"""Algorithm 3 — greedy sub-model-to-device assignment.

Sub-models are sorted by computation overhead (descending) and each is
placed on the device with the most residual energy; devices that cannot
host the current sub-model are skipped *for that sub-model only*.  Multiple
sub-models may share a device when resources allow, matching Section IV-D
("multiple sub-models can be deployed on a single device").

The paper's pseudocode advances to the next sub-model after discarding a
device; read literally that would leave the current sub-model unplaced, so
— as the surrounding prose clearly intends — we keep trying the remaining
devices for the *current* sub-model until it is placed or no devices
remain.  A device that cannot host the current (large) sub-model may still
have room for a later, smaller one — sub-models are visited largest-first
— so rejection must never remove the device from the fleet.
"""

from __future__ import annotations

from .problem import AssignmentPlan, DeviceSpec, InfeasibleAssignment, SubModelSpec


def greedy_assign(devices: list[DeviceSpec], submodels: list[SubModelSpec],
                  num_samples: int) -> AssignmentPlan:
    """Run Algorithm 3; raises :class:`InfeasibleAssignment` on failure."""
    if not devices:
        raise InfeasibleAssignment("no devices available")

    residual_memory = {d.device_id: d.memory_bytes for d in devices}
    residual_energy = {d.device_id: float(d.energy_flops) for d in devices}
    mapping: dict[str, str] = {}

    # Line 1: sort by computation overhead, highest first.
    order = sorted(submodels, key=lambda m: m.flops_per_sample, reverse=True)

    for model in order:
        need_energy = model.workload_flops(num_samples)
        placed = False
        # Candidates are skipped per sub-model, never dropped globally: a
        # device too small for this sub-model can still host a later one.
        candidates = sorted(residual_memory)
        while candidates and not placed:
            # Line 3: the device with maximum residual energy (ties broken
            # by device id, so plans are reproducible across processes).
            best = max(candidates, key=lambda d: residual_energy[d])
            if (residual_memory[best] >= model.size_bytes
                    and residual_energy[best] >= need_energy):
                residual_memory[best] -= model.size_bytes
                residual_energy[best] -= need_energy
                mapping[model.model_id] = best
                placed = True
            else:
                # Line 8: skip the device for this sub-model only.
                candidates.remove(best)
        if not placed:
            raise InfeasibleAssignment(
                f"sub-model {model.model_id} (size={model.size_bytes}, "
                f"workload={need_energy:.3g}) cannot be placed on any device")

    return AssignmentPlan(mapping=mapping,
                          residual_memory=residual_memory,
                          residual_energy=residual_energy)


def try_greedy_assign(devices: list[DeviceSpec], submodels: list[SubModelSpec],
                      num_samples: int) -> AssignmentPlan | None:
    """Algorithm 3 returning ``None`` instead of raising (Algorithm 1's MA=∅)."""
    try:
        return greedy_assign(devices, submodels, num_samples)
    except InfeasibleAssignment:
        return None
