"""Command-line interface to the analytic experiment harness.

Usage::

    python -m repro.cli profile                     # Table I
    python -m repro.cli flops [--mode paper]        # Table II
    python -m repro.cli curve --model vit-base --budget-mb 180  # Fig. 4 b/c
    python -m repro.cli communication               # Section V-D
    python -m repro.cli schedule --model vit-base --devices 5 --budget-mb 180
    python -m repro.cli plan --workers 3 --codec auto --out plan.json
    python -m repro.cli plan --train-fusion --store ./artifacts --out plan.json
    python -m repro.cli serve --workers 2 --requests 200 --rps 200
    python -m repro.cli serve --transport inprocess --codec q8
    python -m repro.cli serve --plan plan.json --kill-after 0.3
    python -m repro.cli serve --plan plan.json --store ./artifacts --swap-after 0.3
    python -m repro.cli serve --backend blocked --workers 2
    python -m repro.cli plan --quant auto --memory-headroom 0.5 --store ./artifacts
    python -m repro.cli quantize --plan plan.json --store ./artifacts --out plan-int8.json
    python -m repro.cli loadgen --rates 50,100,200 --compare-batching
    python -m repro.cli trace --out trace.json --transport inprocess
    python -m repro.cli loadgen --rates 100 --trace trace.json --metrics
    python -m repro.cli capacity --traffic burst --slo-p95-ms 8000
    python -m repro.cli capacity --trace-file arrivals.jsonl --json
    python -m repro.cli artifacts ls --store ./artifacts
    python -m repro.cli artifacts gc --store ./artifacts --max-mb 64
    python -m repro.cli check --strict                  # static analysis
    python -m repro.cli check --json --rules lock-discipline,hygiene

``plan`` runs the deployment planner (:mod:`repro.planning`) over a small
heterogeneous demo fleet and emits the scored
:class:`~repro.planning.DeploymentPlan` as JSON.  ``serve`` stands up a
fleet behind the asynchronous serving layer (:mod:`repro.serving`) —
either a demo fleet or, with ``--plan``, a fleet booted from a plan file
with online replanning enabled — drives Poisson traffic at it (optionally
killing a worker mid-run to demonstrate degraded fusion and replan
recovery, or rolling-swapping one with ``--swap-after``), and prints the
telemetry report (``--json`` for machine-readable output).  ``loadgen``
sweeps offered load and prints the latency-vs-offered-load curve, plus an
optional dynamic-batching-on/off throughput comparison.

``--store DIR`` on ``plan``/``serve`` points at a
:class:`repro.store.ArtifactStore`: the first (cold) boot trains and
populates it, every later boot warm-loads the checkpoints instead of
retraining.  ``artifacts ls``/``artifacts gc`` inspect and bound the
store.

Trained experiments (accuracy panels, baselines) are intentionally not
wrapped here — run the benches: ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import argparse
import sys

from .core.experiments import (
    PAPER_BUDGETS_MB,
    communication_rows,
    latency_memory_curve,
    plan_split,
    table1_rows,
    table2_rows,
)
from .core.metrics import format_table
from .models.vit import STANDARD_CONFIGS

_FULL_SIZE_MODELS = ("vit-small", "vit-base", "vit-large")


def _model_config(name: str, in_channels: int = 3):
    if name not in _FULL_SIZE_MODELS:
        raise SystemExit(f"unknown model {name!r}; choose from {_FULL_SIZE_MODELS}")
    return STANDARD_CONFIGS[name](num_classes=10, in_channels=in_channels)


def cmd_profile(_args) -> None:
    print(format_table(table1_rows()))


def cmd_flops(args) -> None:
    print(format_table(table2_rows(schedule_mode=args.mode)))


def cmd_curve(args) -> None:
    budget = args.budget_mb
    if budget is None:
        budget = PAPER_BUDGETS_MB[args.model]
    rows = latency_memory_curve(_model_config(args.model, args.channels),
                                budget_mb=budget,
                                schedule_mode=args.mode)
    print(format_table(rows))


def _artifact_store(args):
    path = getattr(args, "store", None)
    if not path:
        return None
    from .store import ArtifactStore

    return ArtifactStore(path)


def cmd_plan(args) -> None:
    from .planning import plan_demo_system

    throughputs = None
    if args.throughputs:
        throughputs = [float(t) for t in args.throughputs.split(",") if t]
    system = plan_demo_system(num_workers=args.workers,
                              model_kind=args.model_kind,
                              seed=args.seed,
                              throughputs=throughputs,
                              train_fusion=args.train_fusion,
                              fusion_epochs=args.fusion_epochs,
                              codec=args.codec,
                              store=_artifact_store(args),
                              quant=args.quant,
                              memory_headroom=args.memory_headroom)
    plan = system.plan
    if args.store:
        boot = "warm-booted from" if system.warm_booted else "populated"
        print(f"# artifact store {args.store}: {boot} "
              f"{len(plan.artifacts)} artifacts", file=sys.stderr)
    if args.out:
        path = plan.save(args.out)
        rows = [{
            "sub-model": m.model_id,
            "classes": ",".join(str(c) for c in m.classes),
            "device": plan.mapping[m.model_id],
            "quant": m.quant,
            "size_kb": round(m.size_bytes / 1024, 1),
            "mflops": round(m.flops_per_sample / 1e6, 3),
        } for m in plan.submodels]
        print(format_table(rows))
        prediction = plan.prediction
        print(f"codec {plan.codec}: predicted latency "
              f"{prediction.latency_s * 1e3:.3f} ms, "
              f"energy {prediction.energy_j:.3g} J"
              + (f", accuracy {prediction.accuracy:.3f}"
                 if prediction.accuracy is not None else ""))
        print(f"plan written to {path}")
    else:
        print(plan.to_json())


def cmd_communication(_args) -> None:
    print(format_table(communication_rows()))


def cmd_schedule(args) -> None:
    budget = args.budget_mb or PAPER_BUDGETS_MB[args.model]
    point = plan_split(_model_config(args.model, args.channels),
                       args.devices, num_classes=10, budget_mb=budget,
                       schedule_mode=args.mode)
    rows = [{
        "sub-model": f.index,
        "hp": f.hp,
        "kept_heads": f.config.num_heads - f.hp if args.mode == "paper"
        else f.config.num_heads - point.hps[f.index],
        "embed_dim": f.config.embed_dim,
        "size_mb": f.size_bytes / 2 ** 20,
        "gmacs": f.flops_per_sample / 1e9,
    } for f in point.footprints]
    print(format_table(rows))
    print(f"total: {point.total_size_mb:.2f} MB across "
          f"{point.num_devices} devices (budget {budget} MB)")


def _apply_backend(args) -> None:
    """Activate ``--backend`` in-process and for spawned workers."""
    backend = getattr(args, "backend", None)
    if not backend:
        return
    import os

    from . import nn

    try:
        nn.set_backend(backend)
    except ValueError as exc:
        raise SystemExit(str(exc))
    # Worker processes re-import repro.nn fresh; the env var is how the
    # selection crosses the process boundary.
    os.environ["REPRO_BACKEND"] = backend


def _make_server(args):
    from .serving import (BatchingConfig, InferenceServer, ServerConfig,
                          build_demo_system)

    _apply_backend(args)
    config = ServerConfig(
        batching=BatchingConfig(max_batch_samples=args.batch,
                                max_wait_s=args.max_wait_ms / 1e3),
        worker_timeout_s=args.worker_timeout_s)
    store = _artifact_store(args)
    plan_path = getattr(args, "plan", None)
    if plan_path:
        from .planning import DeploymentPlan, PlannedSystem

        # The plan file carries the codec; only the transport (and the
        # artifact store to warm-boot from) is a runtime choice.
        system = PlannedSystem.from_plan(DeploymentPlan.load(plan_path),
                                         time_scale=args.time_scale,
                                         transport=args.transport,
                                         store=store)
        return system, system.make_server(
            config, replan=not getattr(args, "no_replan", False))
    system = build_demo_system(num_workers=args.workers,
                               model_kind=args.model_kind,
                               seed=args.seed, time_scale=args.time_scale,
                               transport=args.transport, codec=args.codec,
                               train_fusion=getattr(args, "train_fusion",
                                                    False),
                               store=store)
    return system, InferenceServer(system.make_cluster(), system.fusion,
                                   config)


def _maybe_enable_tracing(args) -> bool:
    """Turn on span collection when a trace export was requested."""
    if not (getattr(args, "trace", None)
            or getattr(args, "trace_jsonl", None)):
        return False
    from . import obs

    obs.enable_tracing()
    return True


def _export_observability(args) -> None:
    """Write requested trace exports; progress notes go to stderr."""
    trace_path = getattr(args, "trace", None)
    jsonl_path = getattr(args, "trace_jsonl", None)
    if not trace_path and not jsonl_path:
        return
    from . import obs

    spans = obs.get_tracer().spans()
    if trace_path:
        count = obs.write_chrome_trace(spans, trace_path)
        print(f"# wrote {count} spans to {trace_path} "
              f"(open at https://ui.perfetto.dev)", file=sys.stderr)
    if jsonl_path:
        count = obs.write_jsonl(spans, jsonl_path)
        print(f"# wrote {count} JSONL span lines to {jsonl_path}",
              file=sys.stderr)


def cmd_serve(args) -> None:
    import json
    import threading

    from .serving import LoadgenConfig, run_load

    # Validate before _make_server: building (and possibly training) the
    # whole fleet only to exit with a usage error would waste minutes.
    if args.swap_after is not None and not (args.plan and args.store):
        raise SystemExit("--swap-after needs --plan and --store "
                         "(the replacement worker boots from the "
                         "plan's store artifact)")
    _maybe_enable_tracing(args)
    system, server = _make_server(args)
    kill_timer = None
    swap_timer = None
    swap_result: dict = {}
    with server:
        if args.kill_after is not None:
            victim = server.slots[0]
            kill_timer = threading.Timer(args.kill_after,
                                         server.cluster.kill_worker, (victim,))
            kill_timer.start()
            # Progress notes go to stderr so `--json` stdout stays
            # machine-parseable on its own.
            print(f"(will kill worker {victim} after {args.kill_after}s)",
                  file=sys.stderr)
        if args.swap_after is not None:
            slot = server.slots[0]

            def do_swap() -> None:
                try:
                    swap_result["worker"] = system.swap_from_store(
                        server, slot, _artifact_store(args),
                        quant=args.swap_quant)
                except Exception as exc:
                    swap_result["error"] = f"{type(exc).__name__}: {exc}"
            swap_timer = threading.Timer(args.swap_after, do_swap)
            swap_timer.start()
            print(f"(will rolling-swap slot {slot} after "
                  f"{args.swap_after}s)", file=sys.stderr)
        result = run_load(server, system.input_shape,
                          LoadgenConfig(num_requests=args.requests,
                                        mode="open", offered_rps=args.rps,
                                        seed=args.seed))
        report = server.stats(include_metrics=args.json or args.metrics)
        hosting = server.hosting()
        for timer in (kill_timer, swap_timer):
            if timer is not None:
                timer.cancel()         # the run may finish before it fires
        if swap_timer is not None:
            # cancel() does not stop an already-running swap; let it
            # finish before the cluster shuts down underneath it.
            swap_timer.join(timeout=60)
    _export_observability(args)
    if args.json:
        print(json.dumps({"loadgen": result.row(),
                          "report": report.to_dict(),
                          "hosting": hosting,
                          "swap": swap_result or None},
                         indent=2, allow_nan=False))
        return
    print(format_table([result.row()]))
    print(format_table([report.row()]))
    for worker_id, health in report.worker_health.items():
        print(f"  worker {worker_id}: {health}")
    rehosted = {slot: worker for slot, worker in hosting.items()
                if slot != worker}
    for slot, worker in rehosted.items():
        print(f"  slot {slot}: re-hosted on {worker}")
    if swap_result:
        print(f"  rolling swap: {swap_result}")
    if args.metrics:
        from . import obs

        print(obs.get_registry().render_text())


def cmd_check(args) -> None:
    """``repro check``: static invariant analysis over the package.

    Exit codes: 0 clean, 1 new findings (with ``--strict`` also stale
    baseline entries), 2 usage error.  ``--json`` keeps stdout pure JSON
    with notes on stderr, matching the other machine-readable commands.
    """
    import json
    from pathlib import Path

    from . import analysis

    if args.list_rules:
        for name, cls in analysis.rule_classes().items():
            print(f"{name}  [{', '.join(cls.finding_ids)}]")
            print(f"    {cls.description}")
        return

    rule_names = [r for r in args.rules.split(",") if r] if args.rules \
        else None
    root = Path(args.path).resolve() if args.path else analysis.default_root()
    if not root.is_dir():
        print(f"repro check: scan root {root} is not a directory",
              file=sys.stderr)
        raise SystemExit(2)
    baseline_path = Path(args.baseline) if args.baseline \
        else analysis.default_baseline_path(root)
    try:
        findings = analysis.run_check(root=root, rule_names=rule_names)
        previous = analysis.load_baseline(baseline_path)
    except (ValueError, OSError) as exc:
        # Unknown rule, unreadable root, malformed baseline: usage errors.
        print(f"repro check: {exc}", file=sys.stderr)
        raise SystemExit(2)

    if args.update_baseline:
        analysis.save_baseline(baseline_path, findings, previous)
        print(f"# baseline rewritten: {len(findings)} entries -> "
              f"{baseline_path}", file=sys.stderr)
        return

    comparison = analysis.compare(findings, previous)
    failed = bool(comparison.new) \
        or (args.strict and bool(comparison.stale))
    if args.json:
        print(json.dumps({
            "root": str(root),
            "baseline": str(baseline_path),
            "new": [f.to_dict() for f in comparison.new],
            "baselined": [f.to_dict() for f in comparison.baselined],
            "stale": [e.to_dict() for e in comparison.stale],
            "ok": not failed,
        }, indent=2, sort_keys=True, allow_nan=False))
    else:
        for finding in comparison.new:
            print(finding.render(str(root)))
        for entry in comparison.stale:
            print(f"stale baseline entry {entry.fingerprint} "
                  f"({entry.rule_id} {entry.file}): no longer found"
                  + (" [--strict fails on this]" if args.strict else ""))
        print(f"# {len(comparison.new)} new, "
              f"{len(comparison.baselined)} baselined, "
              f"{len(comparison.stale)} stale "
              f"({baseline_path.name})", file=sys.stderr)
    if failed:
        raise SystemExit(1)


def cmd_quantize(args) -> None:
    import dataclasses as _dc

    from .planning import DeploymentPlan, quantize_plan_artifacts
    from .store import ArtifactStore

    plan = DeploymentPlan.load(args.plan)
    store = ArtifactStore(args.store)
    rows = quantize_plan_artifacts(plan, store, scheme=args.scheme)
    print(format_table([{
        "sub-model": row["model_id"],
        "fp32_kb": round(row["fp32_bytes"] / 1024, 1),
        f"{args.scheme}_kb": round(row["quant_bytes"] / 1024, 1),
        "ratio": round(row["fp32_bytes"] / max(1, row["quant_bytes"]), 2),
        "digest": row["quant_digest"][:12],
    } for row in rows]))
    total_fp32 = sum(row["fp32_bytes"] for row in rows)
    total_q = sum(row["quant_bytes"] for row in rows)
    print(f"total: {total_fp32 / 1024:.1f} KiB fp32 -> "
          f"{total_q / 1024:.1f} KiB {args.scheme} "
          f"({total_fp32 / max(1, total_q):.2f}x smaller)")
    if args.out:
        # Retarget the plan to serve the quantized variants; the fusion
        # ref is scheme-independent and stays put.
        sizes = {row["model_id"]: row["quant_bytes"] for row in rows}
        digests = {row["model_id"]: row["quant_digest"] for row in rows}
        plan.submodels = [_dc.replace(sub, quant=args.scheme,
                                      size_bytes=sizes[sub.model_id])
                          for sub in plan.submodels]
        plan.artifacts.update(digests)
        path = plan.save(args.out)
        print(f"{args.scheme} plan written to {path}")


def cmd_artifacts(args) -> None:
    import time as _time

    from .store import ArtifactStore

    store = ArtifactStore(args.store)

    def when(stamp: float) -> str:
        return _time.strftime("%Y-%m-%d %H:%M:%S", _time.localtime(stamp))

    if args.action == "ls":
        rows = [{"digest": info.digest[:12],
                 "kind": info.kind,
                 "model": info.meta.get("model_id", "-"),
                 "quant": info.meta.get("quant", "fp32"),
                 "size_kb": round(info.nbytes / 1024, 1),
                 "created": when(info.created_at),
                 "last_used": when(info.last_used_at)}
                for info in store.ls()]
        if rows:
            print(format_table(rows))
        print(f"{len(store)} artifacts, "
              f"{store.total_bytes / 2 ** 20:.2f} MiB in {store.root}")
    else:                              # gc
        if args.max_mb is None and args.max_artifacts is None:
            raise SystemExit("artifacts gc: pass --max-mb and/or "
                             "--max-artifacts (without a bound there is "
                             "nothing to evict)")
        max_bytes = None if args.max_mb is None \
            else int(args.max_mb * 2 ** 20)
        evicted = store.gc(max_bytes=max_bytes,
                           max_artifacts=args.max_artifacts)
        for digest in evicted:
            print(f"evicted {digest}")
        print(f"{len(evicted)} evicted; {len(store)} artifacts, "
              f"{store.total_bytes / 2 ** 20:.2f} MiB remain")


def cmd_trace(args) -> None:
    """``repro trace``: a traced serve run with the export always on."""
    if not args.trace:
        args.trace = args.out
    cmd_serve(args)


def cmd_loadgen(args) -> None:
    from .serving import LoadgenConfig, run_load

    _maybe_enable_tracing(args)
    system, server = _make_server(args)
    results = []
    with server:
        rates = [float(r) for r in args.rates.split(",") if r]
        for rate in rates:
            # Per-rate progress on stderr: the stdout table stays the
            # only thing machine consumers have to parse.
            print(f"# offered load {rate:g} rps "
                  f"({args.requests} requests)...", file=sys.stderr)
            results.append(run_load(
                server, system.input_shape,
                LoadgenConfig(num_requests=args.requests, mode="open",
                              offered_rps=rate, seed=args.seed)))
    _export_observability(args)
    print(format_table([r.row() for r in results]))
    if args.metrics:
        from . import obs

        print(obs.get_registry().render_text())

    if args.compare_batching:
        rows = []
        for label, batch, wait_ms in (("batch=1", 1, 0.0),
                                      ("dynamic", args.batch,
                                       args.max_wait_ms)):
            compare_args = argparse.Namespace(**vars(args))
            compare_args.batch, compare_args.max_wait_ms = batch, wait_ms
            system, server = _make_server(compare_args)
            with server:
                result = run_load(server, system.input_shape,
                                  LoadgenConfig(num_requests=args.requests,
                                                mode="closed",
                                                concurrency=args.concurrency,
                                                seed=args.seed))
            rows.append({"batching": label, **result.row()})
        print(format_table(rows))


def _capacity_trace(args):
    """Build or load the arrival trace a capacity sweep scores against."""
    from .serving import traffic

    if args.trace_file:
        return traffic.ArrivalTrace.from_jsonl(args.trace_file)
    rps, peak = args.rps, args.peak_rps
    duration, seed = args.duration, args.seed
    if args.traffic == "poisson":
        return traffic.poisson_trace(rps, duration, seed)
    if args.traffic == "burst":
        return traffic.burst_trace(
            base_rps=rps, burst_rps=peak, burst_every_s=args.burst_every,
            burst_duration_s=args.burst_len, duration_s=duration, seed=seed)
    if args.traffic == "diurnal":
        return traffic.diurnal_trace(base_rps=rps, peak_rps=peak,
                                     period_s=duration, duration_s=duration,
                                     seed=seed)
    if args.traffic == "mmpp":
        return traffic.mmpp_trace([rps, peak], mean_dwell_s=duration / 6,
                                  duration_s=duration, seed=seed)
    if args.traffic == "flash":
        return traffic.flash_crowd_trace(
            base_rps=rps, peak_rps=peak, onset_s=duration / 3,
            decay_s=duration / 6, duration_s=duration, seed=seed)
    raise SystemExit(f"unknown traffic shape {args.traffic!r}")


def cmd_capacity(args) -> None:
    """``repro capacity``: trace-driven fleet sizing over the fast DES."""
    import json

    from .planning.capacity import cheapest_within_slo, plan_capacity

    trace = _capacity_trace(args)
    if args.save_trace:
        trace.to_jsonl(args.save_trace)
        print(f"# trace saved to {args.save_trace}", file=sys.stderr)
    report = plan_capacity(
        trace,
        device_classes=[c for c in args.classes.split(",") if c],
        fleet_sizes=[int(n) for n in args.fleet_sizes.split(",") if n],
        group_counts=[int(n) for n in args.groups.split(",") if n],
        codecs=[c for c in args.codecs.split(",") if c],
    )
    slo_s = None if args.slo_p95_ms is None else args.slo_p95_ms / 1e3
    best = None if slo_s is None else cheapest_within_slo(report, slo_s)

    if args.json:
        payload = report.to_json()
        if slo_s is not None:
            payload["slo"] = {"p95_ms": args.slo_p95_ms,
                              "cheapest": best.row() if best else None}
        print(json.dumps(payload, indent=2, allow_nan=False))
        return
    print(f"# trace: {report.trace_requests} requests over "
          f"{report.trace_duration_s:.1f}s "
          f"(mean {report.trace_mean_rps:.1f} rps)", file=sys.stderr)
    rows = [p.row() for p in (report.points if args.all else report.frontier)]
    if rows:
        print(format_table(rows))
    else:
        print("no feasible configuration", file=sys.stderr)
    if slo_s is not None:
        if best is None:
            print(f"no configuration meets p95 <= {args.slo_p95_ms:g} ms")
        else:
            print(f"cheapest within p95 <= {args.slo_p95_ms:g} ms: "
                  f"{best.devices_used}x {best.device_class} "
                  f"({best.replicas} replicas of {best.group_count}+1, "
                  f"codec {best.codec}, {best.quant}) "
                  f"at ${best.cost_usd:,.0f} — p95 {best.p95_s * 1e3:.0f} ms")


def _add_serving_options(parser: argparse.ArgumentParser) -> None:
    from .edge.transport import TRANSPORTS

    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--model-kind", choices=("vit", "vgg", "snn"),
                        default="vit")
    parser.add_argument("--transport", choices=sorted(TRANSPORTS),
                        default="multiprocess",
                        help="worker substrate: OS processes, threads, or "
                             "TCP-connected processes")
    parser.add_argument("--codec", default="raw32",
                        help="feature wire codec (raw32, f16, q8; any base "
                             "+zlib). Ignored with --plan (the plan carries "
                             "its codec)")
    parser.add_argument("--store", default=None,
                        help="artifact-store directory: warm-boot weights "
                             "from it when populated, populate it on a "
                             "cold boot")
    parser.add_argument("--backend", default=None,
                        help="nn array backend for this process and all "
                             "spawned workers (numpy, blocked); default: "
                             "REPRO_BACKEND or numpy")
    parser.add_argument("--train-fusion", action="store_true",
                        help="train the demo fleet (the expensive step an "
                             "artifact store amortizes). Ignored with "
                             "--plan (the plan's build recipe decides)")
    parser.add_argument("--batch", type=int, default=16,
                        help="dynamic batcher max samples per dispatch")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="dynamic batcher flush deadline")
    parser.add_argument("--worker-timeout-s", type=float, default=5.0)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--time-scale", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="enable tracing and write a Chrome trace-"
                             "event/Perfetto JSON timeline here (open at "
                             "https://ui.perfetto.dev)")
    parser.add_argument("--trace-jsonl", default=None, metavar="FILE",
                        help="enable tracing and write the span log as "
                             "JSONL here (one schema-versioned span per "
                             "line)")
    parser.add_argument("--metrics", action="store_true",
                        help="include the metrics-registry snapshot in "
                             "the report (text dump on stdout; always "
                             "embedded in --json output)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ED-ViT reproduction — analytic harness")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("profile", help="Table I model profiles").set_defaults(
        func=cmd_profile)

    p_flops = sub.add_parser("flops", help="Table II sub-model FLOPs")
    p_flops.add_argument("--mode", choices=("paper", "algorithm1"),
                         default="paper")
    p_flops.set_defaults(func=cmd_flops)

    p_curve = sub.add_parser("curve", help="latency/memory curve (Figs. 4-6)")
    p_curve.add_argument("--model", choices=_FULL_SIZE_MODELS,
                         default="vit-base")
    p_curve.add_argument("--budget-mb", type=float, default=None)
    p_curve.add_argument("--channels", type=int, default=3)
    p_curve.add_argument("--mode", choices=("paper", "algorithm1"),
                         default="paper")
    p_curve.set_defaults(func=cmd_curve)

    p_plan = sub.add_parser(
        "plan", help="plan a demo fleet and emit the DeploymentPlan JSON")
    p_plan.add_argument("--workers", type=int, default=2)
    p_plan.add_argument("--model-kind", choices=("vit", "vgg", "snn"),
                        default="vit")
    p_plan.add_argument("--seed", type=int, default=0)
    p_plan.add_argument("--throughputs", default=None,
                        help="comma-separated per-device throughput "
                             "multipliers (heterogeneous fleet)")
    p_plan.add_argument("--train-fusion", action="store_true",
                        help="train the demo system so the plan carries a "
                             "real accuracy prediction")
    p_plan.add_argument("--fusion-epochs", type=int, default=8)
    p_plan.add_argument("--codec", default="raw32",
                        help="feature wire codec recorded in the plan "
                             "(raw32, f16, q8, any base +zlib), or 'auto' "
                             "to DES-score candidates and keep the fastest "
                             "within the accuracy-drop bound")
    p_plan.add_argument("--store", default=None,
                        help="artifact-store directory: warm-boot the "
                             "planned weights when populated, populate it "
                             "cold; refs are recorded in the plan JSON")
    p_plan.add_argument("--quant", choices=("fp32", "int8", "auto"),
                        default="fp32",
                        help="served weight scheme: int8 = per-channel "
                             "post-training quantization (~3-4x smaller "
                             "artifacts); auto falls back to int8 only "
                             "when fp32 overflows the memory budget")
    p_plan.add_argument("--memory-headroom", type=float, default=3.0,
                        help="per-device memory budget in units of the "
                             "largest fp32 sub-model (below ~1.0, "
                             "--quant auto selects int8)")
    p_plan.add_argument("--out", default=None,
                        help="write the plan JSON here (default: stdout)")
    p_plan.set_defaults(func=cmd_plan)

    p_quant = sub.add_parser(
        "quantize", help="derive quantized store artifacts from a plan's "
                         "fp32 artifacts")
    p_quant.add_argument("--plan", required=True,
                         help="DeploymentPlan JSON file")
    p_quant.add_argument("--store", required=True,
                         help="artifact-store directory holding the fp32 "
                              "artifacts; quantized variants are written "
                              "back under their own digests")
    p_quant.add_argument("--scheme", choices=("int8",), default="int8")
    p_quant.add_argument("--out", default=None,
                         help="write a copy of the plan retargeted to the "
                              "quantized artifacts here")
    p_quant.set_defaults(func=cmd_quantize)

    p_check = sub.add_parser(
        "check", help="static invariant analysis (locks, wire protocol, "
                      "backend conformance, naming, hygiene)")
    p_check.add_argument("--path", default=None, metavar="DIR",
                         help="package tree to scan (default: the "
                              "installed repro package)")
    p_check.add_argument("--baseline", default=None, metavar="FILE",
                         help="baseline file of accepted findings "
                              "(default: analysis-baseline.json at the "
                              "repo root)")
    p_check.add_argument("--rules", default=None,
                         help="comma-separated rule names to run "
                              "(default: all; see --list-rules)")
    p_check.add_argument("--strict", action="store_true",
                         help="also fail (exit 1) on stale baseline "
                              "entries, so the baseline can only shrink "
                              "via --update-baseline")
    p_check.add_argument("--update-baseline", action="store_true",
                         help="rewrite the baseline to the current scan, "
                              "keeping existing entries' reasons")
    p_check.add_argument("--list-rules", action="store_true",
                         help="list registered rules and exit")
    p_check.add_argument("--json", action="store_true",
                         help="machine-readable report on stdout "
                              "(notes stay on stderr)")
    p_check.set_defaults(func=cmd_check)

    sub.add_parser("communication",
                   help="Section V-D feature/transfer sizes").set_defaults(
        func=cmd_communication)

    p_sched = sub.add_parser("schedule",
                             help="per-sub-model footprints for one N")
    p_sched.add_argument("--model", choices=_FULL_SIZE_MODELS,
                         default="vit-base")
    p_sched.add_argument("--devices", type=int, default=5)
    p_sched.add_argument("--budget-mb", type=float, default=None)
    p_sched.add_argument("--channels", type=int, default=3)
    p_sched.add_argument("--mode", choices=("paper", "algorithm1"),
                         default="paper")
    p_sched.set_defaults(func=cmd_schedule)

    p_serve = sub.add_parser(
        "serve", help="run the async serving layer under Poisson traffic")
    _add_serving_options(p_serve)
    p_serve.add_argument("--rps", type=float, default=200.0,
                         help="offered arrival rate (Poisson)")
    p_serve.add_argument("--kill-after", type=float, default=None,
                         help="kill one worker after this many seconds to "
                              "demonstrate degraded fusion")
    p_serve.add_argument("--plan", default=None,
                         help="boot the fleet from a DeploymentPlan JSON "
                              "file (enables online replanning)")
    p_serve.add_argument("--no-replan", action="store_true",
                         help="with --plan: disable replanning (zero-fill "
                              "degraded mode only)")
    p_serve.add_argument("--swap-after", type=float, default=None,
                         help="rolling-swap the first fusion slot's worker "
                              "from its store artifact after this many "
                              "seconds (needs --plan and --store); zero "
                              "requests are dropped")
    p_serve.add_argument("--swap-quant", choices=("fp32", "int8"),
                         default=None,
                         help="with --swap-after: retarget the swapped "
                              "slot to this weight scheme (live fp32 -> "
                              "int8 rollout); a missing quantized "
                              "artifact is derived on demand")
    p_serve.add_argument("--json", action="store_true",
                         help="emit the run report as JSON (machine-"
                              "readable; empty-window stats are null)")
    p_serve.set_defaults(func=cmd_serve)

    p_trace = sub.add_parser(
        "trace", help="serve traffic with tracing on and render the run "
                      "as a Perfetto/Chrome trace timeline")
    _add_serving_options(p_trace)
    p_trace.add_argument("--rps", type=float, default=200.0,
                         help="offered arrival rate (Poisson)")
    p_trace.add_argument("--out", default="trace.json", metavar="FILE",
                         help="trace-event JSON output path")
    p_trace.set_defaults(func=cmd_trace, kill_after=None, swap_after=None,
                         plan=None, no_replan=False, swap_quant=None,
                         json=False)

    p_load = sub.add_parser(
        "loadgen", help="latency-vs-offered-load sweep over the serving layer")
    _add_serving_options(p_load)
    p_load.add_argument("--rates", default="50,100,200",
                        help="comma-separated offered rates (requests/s)")
    p_load.add_argument("--concurrency", type=int, default=8,
                        help="closed-loop clients for --compare-batching")
    p_load.add_argument("--compare-batching", action="store_true",
                        help="also run closed-loop batch=1 vs dynamic "
                             "batching")
    p_load.set_defaults(func=cmd_loadgen)

    p_cap = sub.add_parser(
        "capacity",
        help="trace-driven capacity planning: sweep fleet size x device "
             "class x codec through the vectorized simulator and print "
             "the cost/latency frontier")
    p_cap.add_argument("--trace-file", default=None, metavar="FILE",
                       help="replay an arrival trace (repro.arrivals.v1 "
                            "JSONL) instead of generating traffic")
    p_cap.add_argument("--traffic", default="burst",
                       choices=("poisson", "burst", "diurnal", "mmpp",
                                "flash"),
                       help="generated traffic shape (ignored with "
                            "--trace-file)")
    p_cap.add_argument("--rps", type=float, default=20.0,
                       help="base offered rate")
    p_cap.add_argument("--peak-rps", type=float, default=200.0,
                       help="peak rate for bursty/diurnal/mmpp/flash shapes")
    p_cap.add_argument("--duration", type=float, default=30.0,
                       help="trace length in seconds")
    p_cap.add_argument("--burst-every", type=float, default=10.0,
                       help="burst period (traffic=burst)")
    p_cap.add_argument("--burst-len", type=float, default=2.0,
                       help="burst duration (traffic=burst)")
    p_cap.add_argument("--seed", type=int, default=0)
    p_cap.add_argument("--classes", default="pi4b,pi5",
                       help="comma-separated device classes (see "
                            "repro.planning.capacity.DEVICE_CLASSES)")
    p_cap.add_argument("--fleet-sizes", default="12,60,300,1000",
                       help="comma-separated total device budgets")
    p_cap.add_argument("--groups", default="2,3,5",
                       help="comma-separated workers-per-replica counts")
    p_cap.add_argument("--codecs", default="raw32,q8",
                       help="comma-separated feature wire codecs")
    p_cap.add_argument("--slo-p95-ms", type=float, default=None,
                       help="also report the cheapest point meeting this "
                            "p95 target")
    p_cap.add_argument("--all", action="store_true",
                       help="print every scored point, not just the "
                            "frontier")
    p_cap.add_argument("--save-trace", default=None, metavar="FILE",
                       help="write the (generated) trace as JSONL for "
                            "replay against the real server")
    p_cap.add_argument("--json", action="store_true",
                       help="machine-readable report on stdout")
    p_cap.set_defaults(func=cmd_capacity)

    p_art = sub.add_parser(
        "artifacts", help="inspect or garbage-collect a model artifact store")
    art_sub = p_art.add_subparsers(dest="action", required=True)
    p_ls = art_sub.add_parser("ls", help="list artifacts, most recent first")
    p_ls.add_argument("--store", required=True,
                      help="artifact-store directory")
    p_ls.set_defaults(func=cmd_artifacts)
    p_gc = art_sub.add_parser(
        "gc", help="evict least-recently-used artifacts to fit the bounds")
    p_gc.add_argument("--store", required=True,
                      help="artifact-store directory")
    p_gc.add_argument("--max-mb", type=float, default=None,
                      help="keep the store under this many MiB")
    p_gc.add_argument("--max-artifacts", type=int, default=None,
                      help="keep at most this many artifacts")
    p_gc.set_defaults(func=cmd_artifacts)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
