"""Command-line interface to the analytic experiment harness.

Usage::

    python -m repro.cli profile                     # Table I
    python -m repro.cli flops [--mode paper]        # Table II
    python -m repro.cli plan --model vit-base --budget-mb 180   # Fig. 4 b/c
    python -m repro.cli communication               # Section V-D
    python -m repro.cli schedule --model vit-base --devices 5 --budget-mb 180

Trained experiments (accuracy panels, baselines) are intentionally not
wrapped here — run the benches: ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import argparse
import sys

from .core.experiments import (
    PAPER_BUDGETS_MB,
    communication_rows,
    latency_memory_curve,
    plan_split,
    table1_rows,
    table2_rows,
)
from .core.metrics import format_table
from .models.vit import STANDARD_CONFIGS

_FULL_SIZE_MODELS = ("vit-small", "vit-base", "vit-large")


def _model_config(name: str, in_channels: int = 3):
    if name not in _FULL_SIZE_MODELS:
        raise SystemExit(f"unknown model {name!r}; choose from {_FULL_SIZE_MODELS}")
    return STANDARD_CONFIGS[name](num_classes=10, in_channels=in_channels)


def cmd_profile(_args) -> None:
    print(format_table(table1_rows()))


def cmd_flops(args) -> None:
    print(format_table(table2_rows(schedule_mode=args.mode)))


def cmd_plan(args) -> None:
    budget = args.budget_mb
    if budget is None:
        budget = PAPER_BUDGETS_MB[args.model]
    rows = latency_memory_curve(_model_config(args.model, args.channels),
                                budget_mb=budget,
                                schedule_mode=args.mode)
    print(format_table(rows))


def cmd_communication(_args) -> None:
    print(format_table(communication_rows()))


def cmd_schedule(args) -> None:
    budget = args.budget_mb or PAPER_BUDGETS_MB[args.model]
    point = plan_split(_model_config(args.model, args.channels),
                       args.devices, num_classes=10, budget_mb=budget,
                       schedule_mode=args.mode)
    rows = [{
        "sub-model": f.index,
        "hp": f.hp,
        "kept_heads": f.config.num_heads - f.hp if args.mode == "paper"
        else f.config.num_heads - point.hps[f.index],
        "embed_dim": f.config.embed_dim,
        "size_mb": f.size_bytes / 2 ** 20,
        "gmacs": f.flops_per_sample / 1e9,
    } for f in point.footprints]
    print(format_table(rows))
    print(f"total: {point.total_size_mb:.2f} MB across "
          f"{point.num_devices} devices (budget {budget} MB)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ED-ViT reproduction — analytic harness")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("profile", help="Table I model profiles").set_defaults(
        func=cmd_profile)

    p_flops = sub.add_parser("flops", help="Table II sub-model FLOPs")
    p_flops.add_argument("--mode", choices=("paper", "algorithm1"),
                         default="paper")
    p_flops.set_defaults(func=cmd_flops)

    p_plan = sub.add_parser("plan", help="latency/memory curve (Figs. 4-6)")
    p_plan.add_argument("--model", choices=_FULL_SIZE_MODELS,
                        default="vit-base")
    p_plan.add_argument("--budget-mb", type=float, default=None)
    p_plan.add_argument("--channels", type=int, default=3)
    p_plan.add_argument("--mode", choices=("paper", "algorithm1"),
                        default="paper")
    p_plan.set_defaults(func=cmd_plan)

    sub.add_parser("communication",
                   help="Section V-D feature/transfer sizes").set_defaults(
        func=cmd_communication)

    p_sched = sub.add_parser("schedule",
                             help="per-sub-model footprints for one N")
    p_sched.add_argument("--model", choices=_FULL_SIZE_MODELS,
                         default="vit-base")
    p_sched.add_argument("--devices", type=int, default=5)
    p_sched.add_argument("--budget-mb", type=float, default=None)
    p_sched.add_argument("--channels", type=int, default=3)
    p_sched.add_argument("--mode", choices=("paper", "algorithm1"),
                         default="paper")
    p_sched.set_defaults(func=cmd_schedule)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
