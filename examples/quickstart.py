"""Quickstart: split a Vision Transformer across 3 emulated edge devices.

Runs the entire ED-ViT pipeline (Fig. 1 of the paper) at laptop scale:

1. train a small ViT on a synthetic 10-class image dataset;
2. split it into 3 class-specific sub-models, prune each with the
   three-stage KL pruner, and train the fusion MLP;
3. report accuracy / size / FLOPs, and simulate deployment latency on a
   fleet of Raspberry-Pi-class devices.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.edvit import EDViTConfig, build_edvit
from repro.core.metrics import format_table
from repro.core.training import TrainConfig, evaluate, train_classifier
from repro.data import cifar10_like
from repro.edge.device import make_fleet, raspberry_pi_4b
from repro.edge.simulator import simulate_inference
from repro.models.vit import ViTConfig, VisionTransformer
from repro.profiling import module_size_mb, paper_flops
from repro.pruning.pipeline import PruneConfig

MB = 2 ** 20
NUM_DEVICES = 3


def main() -> None:
    print("== 1. Train the original Vision Transformer ==")
    dataset = cifar10_like(image_size=16, train_per_class=48,
                           test_per_class=16, noise_std=0.3)
    config = ViTConfig(image_size=16, patch_size=4, in_channels=3,
                       num_classes=10, depth=2, embed_dim=32, num_heads=4)
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    train_classifier(model, dataset.x_train, dataset.y_train,
                     TrainConfig(epochs=12, lr=3e-3, seed=0))
    original_acc = evaluate(model, dataset.x_test, dataset.y_test)
    print(f"original test accuracy: {original_acc:.3f}, "
          f"size: {module_size_mb(model):.2f} MB")

    print(f"\n== 2. Build ED-ViT across {NUM_DEVICES} devices ==")
    fleet = make_fleet(NUM_DEVICES)
    system = build_edvit(
        model, dataset, [d.to_spec() for d in fleet],
        EDViTConfig(num_devices=NUM_DEVICES,
                    memory_budget_bytes=64 * MB,
                    prune=PruneConfig(probe_size=16, head_adapt_epochs=2,
                                      stage_finetune_epochs=1,
                                      retrain_epochs=3, backend="kl"),
                    fusion_epochs=12, fusion_lr=3e-3, seed=0))

    rows = []
    for i, sm in enumerate(system.submodels):
        rows.append({
            "sub-model": i,
            "classes": ",".join(map(str, sm.classes)),
            "kept heads": config.num_heads - sm.hp,
            "size (MB)": module_size_mb(sm.model),
            "GMACs": paper_flops(sm.model.config) / 1e9,
            "device": system.plan.mapping[f"submodel-{i}"],
        })
    print(format_table(rows))

    print("\n== 3. Evaluate the distributed system ==")
    fused = system.accuracy(dataset)
    averaged = system.softmax_average_accuracy(dataset)
    print(f"fused accuracy:       {fused:.3f}  (original {original_acc:.3f})")
    print(f"softmax-avg accuracy: {averaged:.3f}  (the 'w/o retrain' variant)")
    print(f"total sub-model size: {system.total_size_mb():.2f} MB "
          f"(original {module_size_mb(model):.2f} MB)")

    print("\n== 4. Simulate deployment latency on Raspberry-Pi devices ==")
    deployment = system.deployment(fleet, raspberry_pi_4b("pi-fusion"))
    result = simulate_inference(deployment, num_samples=1)
    original_latency = raspberry_pi_4b("ref").compute_seconds(
        paper_flops(config))
    print(f"simulated per-sample latency: {result.max_latency * 1e3:.2f} ms "
          f"(unsplit original: {original_latency * 1e3:.2f} ms, "
          f"{original_latency / result.max_latency:.1f}x faster)")


if __name__ == "__main__":
    main()
