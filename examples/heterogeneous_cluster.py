"""Assignment on a heterogeneous edge fleet.

The paper's testbed is homogeneous (identical Pi 4Bs), but Algorithm 3 is
designed for devices with differing memory and energy.  This example plans
a full-size ViT-Base split across a mixed fleet — two fast boards, two
Pi-4Bs, one slow legacy board — and compares the greedy plan (Algorithm 3)
against the exact optimum, then simulates both deployments.

Run:  python examples/heterogeneous_cluster.py
"""

from repro.assignment import greedy_assign, optimal_assign
from repro.core.metrics import format_table
from repro.edge.device import DeviceModel, PI4B_MACS_PER_SECOND, raspberry_pi_4b
from repro.edge.simulator import DeploymentSpec, SubModelProfile, simulate_inference
from repro.models.vit import vit_base_config
from repro.splitting.class_assignment import balanced_class_partition
from repro.splitting.schedule import footprint

GB = 2 ** 30


def make_heterogeneous_fleet():
    """Two fast boards, two Pi-4Bs, one slow legacy board."""
    return [
        DeviceModel("jetson-0", macs_per_second=4 * PI4B_MACS_PER_SECOND,
                    memory_bytes=8 * GB, energy_flops=60e9),
        DeviceModel("jetson-1", macs_per_second=4 * PI4B_MACS_PER_SECOND,
                    memory_bytes=8 * GB, energy_flops=60e9),
        DeviceModel("pi4b-0", macs_per_second=PI4B_MACS_PER_SECOND,
                    memory_bytes=4 * GB, energy_flops=20e9),
        DeviceModel("pi4b-1", macs_per_second=PI4B_MACS_PER_SECOND,
                    memory_bytes=4 * GB, energy_flops=20e9),
        DeviceModel("legacy", macs_per_second=0.4 * PI4B_MACS_PER_SECOND,
                    memory_bytes=1 * GB, energy_flops=6e9),
    ]


def main() -> None:
    base = vit_base_config(num_classes=10)
    fleet = make_heterogeneous_fleet()
    groups = balanced_class_partition(10, 6)

    # Six sub-models with a mixed pruning schedule: the first two keep more
    # heads (for the fast boards), the rest are pruned harder.
    hps = [8, 8, 9, 9, 10, 10]
    feet = [footprint(base, i, hp, len(g))
            for i, (hp, g) in enumerate(zip(hps, groups))]
    specs = [f.to_spec(tuple(g)) for f, g in zip(feet, groups)]
    device_specs = [d.to_spec() for d in fleet]

    plans = {
        "greedy (Alg. 3)": greedy_assign(device_specs, specs, num_samples=1),
        "optimal (B&B)": optimal_assign(device_specs, specs, num_samples=1),
    }

    rows = []
    for name, plan in plans.items():
        profiles = {f.to_spec(()).model_id: SubModelProfile(
            model_id=f"submodel-{f.index}",
            flops_per_sample=f.flops_per_sample,
            feature_dim=f.config.embed_dim) for f in feet}
        deployment = DeploymentSpec(
            devices=fleet, placement=dict(plan.mapping), profiles=profiles,
            fusion_device=raspberry_pi_4b("fusion"), fusion_flops=1e6)
        sim = simulate_inference(deployment, num_samples=1)
        rows.append({
            "plan": name,
            "objective (residual GFLOPs)": plan.objective / 1e9,
            "sim latency (s)": sim.max_latency,
            "placement": ", ".join(
                f"{m.split('-')[1]}->{d}" for m, d in sorted(plan.mapping.items())),
        })
    print(format_table(rows))
    print("\nThe greedy plan matches the optimum on this fleet; on tighter "
          "instances the gap benchmark (benchmarks/bench_ablations.py) "
          "quantifies how far Algorithm 3 can fall behind.")


if __name__ == "__main__":
    main()
