"""Audio recognition on edge devices (the paper's GTZAN / Speech Command
experiments, Section V-C).

Spectrogram classification with a single-channel ViT, split across edge
devices.  Audio models transmit the same tiny CLS features as the vision
models, so the communication accounting of Section V-D applies unchanged —
this script reports it alongside accuracy.

Run:  python examples/audio_keyword_spotting.py
"""

import numpy as np

from repro.core.edvit import EDViTConfig, build_edvit
from repro.core.metrics import format_table
from repro.core.training import TrainConfig, evaluate, train_classifier
from repro.data import gtzan_like, speech_command_like
from repro.edge.device import make_fleet
from repro.edge.network import communication_reduction, feature_bytes, tc_capped_link
from repro.models.vit import ViTConfig, VisionTransformer
from repro.pruning.pipeline import PruneConfig

MB = 2 ** 20
NUM_DEVICES = 2


def build_for(dataset, seed=0):
    config = ViTConfig(image_size=16, patch_size=4, in_channels=1,
                       num_classes=dataset.num_classes, depth=2,
                       embed_dim=32, num_heads=4)
    model = VisionTransformer(config, rng=np.random.default_rng(seed))
    train_classifier(model, dataset.x_train, dataset.y_train,
                     TrainConfig(epochs=12, lr=3e-3, seed=seed))
    fleet = [d.to_spec() for d in make_fleet(NUM_DEVICES)]
    system = build_edvit(
        model, dataset, fleet,
        EDViTConfig(num_devices=NUM_DEVICES, memory_budget_bytes=64 * MB,
                    prune=PruneConfig(probe_size=12, head_adapt_epochs=2,
                                      stage_finetune_epochs=1,
                                      retrain_epochs=3, backend="kl"),
                    fusion_epochs=12, fusion_lr=3e-3, seed=seed))
    return model, system


def main() -> None:
    link = tc_capped_link()
    rows = []
    for name, dataset in [
            ("GTZAN~ (music genres)",
             gtzan_like(image_size=16, train_per_class=48, test_per_class=16)),
            ("SpeechCommand~ (keywords)",
             speech_command_like(num_classes=10, image_size=16,
                                 train_per_class=48, test_per_class=16))]:
        model, system = build_for(dataset)
        fdim = system.feature_dims()[0]
        rows.append({
            "dataset": name,
            "original acc": evaluate(model, dataset.x_test, dataset.y_test),
            "fused acc": system.accuracy(dataset),
            "total size (MB)": system.total_size_mb(),
            "feature (B)": feature_bytes(fdim),
            "vs raw image": f"{communication_reduction(feature_bytes(fdim)):.0f}x",
            "transfer (ms)": link.transfer_seconds(feature_bytes(fdim)) * 1e3,
        })
    print(format_table(rows))
    print("\nFeatures replace raw spectrogram frames on the 2 Mbps uplink, "
          "mirroring Section V-D's 294x communication reduction at scale.")


if __name__ == "__main__":
    main()
