"""Graceful degradation when edge devices fail.

ED-ViT's class-partitioned design has a natural robustness property the
paper leaves as future work: if a device crashes, the fusion MLP can
zero-fill the missing feature slot and keep classifying with the surviving
sub-models — accuracy degrades by roughly the crashed sub-model's class
share instead of collapsing to zero.

This script builds a 5-device system, then kills devices one by one and
reports fused accuracy plus the simulated latency of the degraded fleet.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.core.edvit import EDViTConfig, build_edvit
from repro.core.metrics import format_table
from repro.core.training import TrainConfig, train_classifier
from repro.data import cifar10_like
from repro.edge.device import make_fleet, raspberry_pi_4b
from repro.edge.simulator import simulate_inference
from repro.models.vit import ViTConfig, VisionTransformer
from repro.pruning.pipeline import PruneConfig

MB = 2 ** 20
NUM_DEVICES = 5


def main() -> None:
    dataset = cifar10_like(image_size=16, train_per_class=48,
                           test_per_class=16, noise_std=0.3)
    config = ViTConfig(image_size=16, patch_size=4, in_channels=3,
                       num_classes=10, depth=2, embed_dim=32, num_heads=4)
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    train_classifier(model, dataset.x_train, dataset.y_train,
                     TrainConfig(epochs=12, lr=3e-3, seed=0))

    fleet = make_fleet(NUM_DEVICES)
    system = build_edvit(
        model, dataset, [d.to_spec() for d in fleet],
        EDViTConfig(num_devices=NUM_DEVICES, memory_budget_bytes=64 * MB,
                    prune=PruneConfig(probe_size=12, head_adapt_epochs=2,
                                      stage_finetune_epochs=1,
                                      retrain_epochs=3, backend="kl"),
                    fusion_epochs=12, fusion_lr=3e-3, seed=0))
    deployment = system.deployment(fleet, raspberry_pi_4b("fusion"))

    rows = []
    failed: set[int] = set()
    for step in range(NUM_DEVICES):
        failed_devices = {fleet[i].device_id for i in failed}
        sim = simulate_inference(deployment, num_samples=1,
                                 failed_devices=failed_devices)
        lost_classes = sorted(
            c for i in failed for c in system.submodels[i].classes)
        rows.append({
            "failed devices": len(failed),
            "lost classes": ",".join(map(str, lost_classes)) or "-",
            "fused accuracy": system.accuracy_under_failures(
                dataset, failed) if failed else system.accuracy(dataset),
            "sim latency (ms)": sim.max_latency * 1e3,
        })
        failed.add(step)  # kill the next device for the following round

    print(format_table(rows))
    print("\nAccuracy falls roughly in proportion to the crashed devices' "
          "class share; latency never increases, and the fusion barrier "
          "never deadlocks.")


if __name__ == "__main__":
    main()
