"""Full-scale deployment planning for ViT-Base (no training required).

Uses the analytic side of the library — Section III FLOPs/memory, the
Algorithm-1 head schedule, Algorithm-3 assignment, and the calibrated
Raspberry-Pi simulator — to plan the exact deployment the paper evaluates:
ViT-Base (327 MB, 36.94 s/inference on one Pi 4B) split across 1–10
devices under a 180 MB fleet budget.

Run:  python examples/full_scale_planning.py
"""

from repro.core.experiments import (
    communication_rows,
    latency_memory_curve,
    table1_rows,
    table2_rows,
)
from repro.core.metrics import format_table
from repro.models.vit import vit_base_config


def main() -> None:
    print("Standard model profiles (paper Table I):")
    print(format_table(table1_rows()))

    print("\nPer-sub-model FLOPs vs devices (paper Table II):")
    print(format_table(table2_rows()))

    print("\nLatency & memory vs devices under the 180 MB budget "
          "(paper Fig. 4 b/c):")
    rows = latency_memory_curve(vit_base_config(num_classes=10),
                                budget_mb=180)
    print(format_table(rows))

    print("\nCommunication accounting at the 2 Mbps tc cap "
          "(paper Section V-D):")
    print(format_table(communication_rows()))

    ten = next(r for r in rows if r["devices"] == 10)
    print(f"\nHeadline: splitting ViT-Base across 10 Raspberry Pis cuts "
          f"per-sample latency {ten['speedup_vs_original']:.1f}x "
          f"(paper: 28.9x) and shrinks each deployed model to "
          f"{ten['per_model_mb']:.2f} MB (paper: 9.60 MB).")


if __name__ == "__main__":
    main()
