"""Sustained video-analytics-style traffic through the serving layer.

Where ``examples/fault_tolerance.py`` analyses device failure *offline*
(simulated latency, analytic accuracy), this demo exercises the runtime
path: a 3-worker emulated fleet behind :class:`repro.serving.InferenceServer`
serves a Poisson stream of frames while one worker is hard-killed mid-run.
The server detects the death (pipe EOF + liveness), marks the worker down,
zero-fills its feature slot, and keeps answering — so the stream sees
degraded accuracy, not dropped requests.

The fusion MLP is trained on the sub-models' features, so the printed
accuracies are meaningful: healthy-fleet accuracy beats chance, and the
degraded tail loses roughly the dead worker's share.

Run:  python examples/streaming_serving.py
"""

import threading

import numpy as np

from repro.core.metrics import format_table
from repro.data import cifar10_like
from repro.serving import (
    BatchingConfig,
    InferenceServer,
    LoadgenConfig,
    ServerConfig,
    build_demo_system,
    run_load,
)

NUM_WORKERS = 3
OFFERED_RPS = 150.0
KILL_AFTER_S = 0.4


def main() -> None:
    system = build_demo_system(num_workers=NUM_WORKERS, image_size=16,
                               train_fusion=True, fusion_epochs=12, seed=0)
    dataset = cifar10_like(image_size=16, train_per_class=48,
                           test_per_class=16, noise_std=0.3, seed=0)
    x_test = dataset.x_test.astype(np.float32)
    y_test = np.asarray(dataset.y_test)

    server = InferenceServer(
        system.make_cluster(), system.fusion,
        ServerConfig(batching=BatchingConfig(max_batch_samples=16,
                                             max_wait_s=0.002)))
    with server:
        victim = system.specs[0].worker_id
        threading.Timer(KILL_AFTER_S, server.cluster.kill_worker,
                        (victim,)).start()

        # Poisson frame arrivals via the load generator; each request is
        # one labelled test image so the served labels can be scored.
        truth: list[int] = []

        def frame(rng, _count):
            index = int(rng.integers(len(x_test)))
            truth.append(int(y_test[index]))
            return x_test[index][None]

        result = run_load(server, system.input_shape,
                          LoadgenConfig(num_requests=len(x_test) * 3,
                                        mode="open",
                                        offered_rps=OFFERED_RPS),
                          make_input=frame)

        healthy_hits, healthy_n = 0, 0
        degraded_hits, degraded_n = 0, 0
        for future, label in zip(result.futures, truth):
            predicted = future.result(30.0)[0]
            if future.telemetry.degraded:
                degraded_hits += int(predicted == label)
                degraded_n += 1
            else:
                healthy_hits += int(predicted == label)
                healthy_n += 1
        report = server.stats()

    print(format_table([report.row()]))
    rows = [{"phase": "healthy fleet", "requests": healthy_n,
             "accuracy": healthy_hits / max(healthy_n, 1)},
            {"phase": f"degraded ({victim} dead)", "requests": degraded_n,
             "accuracy": degraded_hits / max(degraded_n, 1)}]
    print(format_table(rows))
    for worker_id, health in report.worker_health.items():
        print(f"  worker {worker_id}: {health}")
    print("\nEvery request was answered: the kill degraded accuracy, "
          "not availability.")


if __name__ == "__main__":
    main()
