"""Low-power video analytics — the paper's motivating deployment.

Sweeps the number of edge devices for a CIFAR-like video-frame
classification workload, reproducing the shape of Fig. 4: accuracy stays
roughly flat while latency and per-device memory fall as devices are
added.  Finishes by actually running the N-device system as OS processes
(the paper's Raspberry-Pi testbed, emulated).

Run:  python examples/video_analytics.py
"""

import numpy as np

from repro.core.edvit import EDViTConfig, build_edvit
from repro.core.metrics import format_table
from repro.core.training import TrainConfig, evaluate, train_classifier
from repro.data import cifar10_like
from repro.edge.device import DeviceModel, make_fleet, raspberry_pi_4b
from repro.edge.network import tc_capped_link
from repro.edge.runtime import EdgeCluster, WorkerSpec
from repro.edge.simulator import simulate_inference
from repro.models.vit import ViTConfig, VisionTransformer
from repro.profiling import paper_flops
from repro.pruning.pipeline import PruneConfig

MB = 2 ** 20
DEVICE_COUNTS = (1, 2, 5)


def main() -> None:
    dataset = cifar10_like(image_size=16, train_per_class=48,
                           test_per_class=16, noise_std=0.3)
    config = ViTConfig(image_size=16, patch_size=4, in_channels=3,
                       num_classes=10, depth=2, embed_dim=32, num_heads=4)
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    train_classifier(model, dataset.x_train, dataset.y_train,
                     TrainConfig(epochs=12, lr=3e-3, seed=0))
    print(f"original accuracy: "
          f"{evaluate(model, dataset.x_test, dataset.y_test):.3f}")

    rows = []
    last_system = None
    for n in DEVICE_COUNTS:
        fleet = make_fleet(n)
        system = build_edvit(
            model, dataset, [d.to_spec() for d in fleet],
            EDViTConfig(num_devices=n, memory_budget_bytes=64 * MB,
                        prune=PruneConfig(probe_size=12, head_adapt_epochs=2,
                                          stage_finetune_epochs=1,
                                          retrain_epochs=3, backend="kl"),
                        fusion_epochs=12, fusion_lr=3e-3, seed=0))
        deployment = system.deployment(fleet, raspberry_pi_4b("pi-fusion"))
        sim = simulate_inference(deployment, num_samples=1)
        rows.append({
            "devices": n,
            "accuracy": system.accuracy(dataset),
            "sim latency (ms)": sim.max_latency * 1e3,
            "total size (MB)": system.total_size_mb(),
        })
        last_system = system

    print("\nFig.-4-shaped sweep (reduced scale):")
    print(format_table(rows))

    print(f"\nRunning the {DEVICE_COUNTS[-1]}-device system as real "
          f"processes (tc-capped links emulated)...")
    workers = [
        WorkerSpec.from_vit(
            f"edge-{i}", sm.model,
            flops_per_sample=float(paper_flops(sm.model.config)),
            device=DeviceModel(device_id=f"edge-{i}", macs_per_second=1e12),
            link=tc_capped_link())
        for i, sm in enumerate(last_system.submodels)]
    x = dataset.x_test[:16]
    with EdgeCluster(workers, time_scale=0.0) as cluster:
        predictions, timing = cluster.infer_fused(x, last_system.fusion)
    accuracy = float((predictions == dataset.y_test[:16]).mean())
    print(f"process-emulated accuracy on 16 frames: {accuracy:.3f}")
    print(f"gather wall time: {timing.wall_seconds * 1e3:.1f} ms; "
          f"emulated critical path (Pi-4B scale): "
          f"{timing.emulated_critical_path:.2f} s per batch")


if __name__ == "__main__":
    main()
