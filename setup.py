"""Package metadata.

Metadata lives here rather than in a ``pyproject.toml`` ``[project]`` table
because this offline environment lacks the ``wheel`` package: pip can only
perform legacy (setup.py) editable installs, and those are disabled whenever
a ``[project]`` table is present.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "ED-ViT: Efficient Partitioning Vision Transformer on Edge Devices "
        "for Distributed Inference (reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
