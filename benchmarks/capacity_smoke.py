"""CI smoke test for fleet-scale simulation + capacity planning
(the `capacity-smoke` job).

Three gates, all on a 1000-device fleet within a tight wall-clock budget:

1. **Bit-matching**: the vectorized scorer must reproduce the event-loop
   DES *exactly* — per-sample latencies, makespan, busy totals and busy
   segments compare with ``==``, not a tolerance.
2. **Speedup**: the vectorized engine must be >= 10x faster than the
   event loop on the same 1000-device run (median of repeated timings).
3. **Frontier sanity**: `plan_capacity` over a bursty trace must produce
   a Pareto frontier with strictly increasing cost and strictly
   decreasing p95, and adding devices at a fixed configuration must not
   make p95 worse.

Emits ``BENCH_capacity.json`` (perf-trajectory record) in the CWD.

Run:  PYTHONPATH=src python benchmarks/capacity_smoke.py
"""

import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.edge.device import DeviceModel, make_fleet
from repro.edge.simulator import (
    DeploymentSpec,
    SubModelProfile,
    simulate_inference,
)
from repro.planning.capacity import cheapest_within_slo, plan_capacity
from repro.serving.traffic import ArrivalTrace, burst_trace

FLEET_DEVICES = 1000
NUM_SAMPLES = 64
MIN_SPEEDUP = 10.0
TIMING_REPEATS = 3


def check(name: str, condition: bool, detail: str = "") -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {name}" + (f" ({detail})" if detail else ""))
    if not condition:
        raise SystemExit(f"capacity smoke failed: {name} {detail}")


def build_fleet_spec(n_devices: int) -> DeploymentSpec:
    devices = make_fleet(n_devices)
    fusion = DeviceModel("fusion",
                         macs_per_second=devices[0].macs_per_second * 4)
    rng = np.random.default_rng(7)
    placement, profiles = {}, {}
    for i, dev in enumerate(devices):
        model_id = f"m{i}"
        placement[model_id] = dev.device_id
        profiles[model_id] = SubModelProfile(
            model_id=model_id,
            flops_per_sample=float(rng.uniform(1e8, 5e8)),
            feature_dim=int(rng.integers(64, 256)))
    return DeploymentSpec(devices=devices, placement=placement,
                          profiles=profiles, fusion_device=fusion,
                          fusion_flops=2e8)


def main() -> None:
    print(f"== engine equivalence + speedup at {FLEET_DEVICES} devices ==")
    spec = build_fleet_spec(FLEET_DEVICES)
    kwargs = dict(num_samples=NUM_SAMPLES, arrival_interval=0.001)

    event_times, vector_times = [], []
    event = vector = None
    for _ in range(TIMING_REPEATS):
        t0 = time.perf_counter()
        event = simulate_inference(spec, engine="event", **kwargs)
        event_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        vector = simulate_inference(spec, engine="vector", **kwargs)
        vector_times.append(time.perf_counter() - t0)

    check("vector engine was used", vector.engine == "vector")
    check("latencies bit-identical", event.latencies == vector.latencies)
    check("makespan bit-identical", event.makespan == vector.makespan)
    check("device busy bit-identical", event.device_busy == vector.device_busy)
    check("link busy bit-identical", event.link_busy == vector.link_busy)
    check("busy segments bit-identical",
          event.busy_segments == vector.busy_segments)

    event_s = statistics.median(event_times)
    vector_s = statistics.median(vector_times)
    speedup = event_s / vector_s
    check(f"speedup >= {MIN_SPEEDUP:g}x", speedup >= MIN_SPEEDUP,
          f"event {event_s:.3f}s / vector {vector_s:.4f}s = {speedup:.1f}x")

    print("== bursty-trace capacity sweep ==")
    trace = burst_trace(base_rps=20, burst_rps=200, burst_every_s=10,
                        burst_duration_s=2, duration_s=30, seed=1)
    t0 = time.perf_counter()
    report = plan_capacity(trace)
    sweep_s = time.perf_counter() - t0
    feasible = report.feasible_points()
    check("sweep produced feasible points", len(feasible) > 0,
          f"{len(report.points)} points, {len(feasible)} feasible "
          f"in {sweep_s:.2f}s")
    check("sweep under wall-clock budget", sweep_s < 60.0, f"{sweep_s:.2f}s")
    check("frontier non-empty", len(report.frontier) >= 2)

    costs = [p.cost_usd for p in report.frontier]
    p95s = [p.p95_s for p in report.frontier]
    check("frontier cost strictly increasing",
          all(b > a for a, b in zip(costs, costs[1:])))
    check("frontier p95 strictly decreasing",
          all(b < a for a, b in zip(p95s, p95s[1:])))

    # Fixing (class, groups, codec): a bigger fleet means more replicas,
    # each seeing a thinner slice of the trace — p95 must not get worse.
    configs = {(p.device_class, p.group_count, p.codec)
               for p in feasible}
    monotone_checked = 0
    for key in sorted(configs):
        series = sorted((p for p in feasible
                         if (p.device_class, p.group_count, p.codec) == key
                         and p.replicas >= 1),
                        key=lambda p: p.devices_used)
        for smaller, bigger in zip(series, series[1:]):
            if bigger.replicas > smaller.replicas:
                check(f"p95 monotone for {key} "
                      f"({smaller.devices_used}->{bigger.devices_used} dev)",
                      bigger.p95_s <= smaller.p95_s * 1.0001,
                      f"{smaller.p95_s:.2f}s -> {bigger.p95_s:.2f}s")
                monotone_checked += 1
    check("monotonicity pairs covered", monotone_checked >= 4,
          str(monotone_checked))

    slo = max(p95s)
    best = cheapest_within_slo(report, slo)
    check("cheapest-within-SLO resolves", best is not None
          and best.p95_s <= slo)

    print("== trace JSONL round trip ==")
    out = Path("capacity_trace.jsonl")
    trace.to_jsonl(out)
    check("trace round-trips", ArrivalTrace.from_jsonl(out) == trace)
    out.unlink()

    record = {
        "fleet_devices": FLEET_DEVICES,
        "num_samples": NUM_SAMPLES,
        "event_s": round(event_s, 4),
        "vector_s": round(vector_s, 5),
        "speedup": round(speedup, 1),
        "sweep_points": len(report.points),
        "sweep_s": round(sweep_s, 3),
        "frontier": [p.row() for p in report.frontier],
    }
    Path("BENCH_capacity.json").write_text(
        json.dumps(record, indent=2, allow_nan=False) + "\n",
        encoding="utf-8")
    print(f"wrote BENCH_capacity.json (speedup {speedup:.1f}x, "
          f"{len(report.points)}-point sweep in {sweep_s:.2f}s)")


if __name__ == "__main__":
    main()
