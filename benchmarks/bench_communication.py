"""Section V-D — communication overhead accounting, now codec-aware.

Paper anchors: features shrink from 1536 B (one device) to 512 B (ten
devices) against a 150528 B raw image — a 294x reduction; the maximum
per-device communication time at the 2 Mbps tc cap is 5.86 ms.

On top of the paper's raw32 numbers, the codec sweep crosses every wire
codec with link bandwidths from the tc cap up to gigabit and reports
bytes, per-feature transfer latency, and fused-prediction agreement with
raw32 — the trade-off surface the planner's ``select_codec`` walks.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.core.experiments import communication_rows
from repro.edge.codec import get_codec
from repro.edge.network import LinkModel, RAW_IMAGE_BYTES, TC_CAP_BPS, tc_capped_link
from repro.serving import build_demo_system
from repro.serving.demo import fused_labels

SWEEP_CODECS = ("raw32", "f16", "q8", "q8+zlib")
SWEEP_BANDWIDTHS_BPS = (TC_CAP_BPS, 10_000_000, 1_000_000_000)
FEATURE_DIM = 128                      # the paper's ten-device feature width


def test_communication_accounting(benchmark):
    rows = benchmark(communication_rows)
    print_table("Section V-D: feature sizes and transfer times", rows)
    by_n = {r["devices"]: r for r in rows}
    assert by_n[1]["feature_bytes"] == 1536
    assert by_n[10]["feature_bytes"] == 512
    assert abs(by_n[10]["reduction_x"] - 294.0) < 0.5
    assert all(r["transfer_ms"] < 7.0 for r in rows)


def test_raw_image_transfer_dominates(benchmark):
    """Shipping the raw image instead of features costs ~100x more time."""
    link = tc_capped_link()
    image_time = benchmark(link.transfer_seconds, RAW_IMAGE_BYTES)
    feature_time = link.transfer_seconds(512)
    print(f"\nraw image: {image_time * 1e3:.1f} ms, "
          f"feature: {feature_time * 1e3:.2f} ms")
    assert image_time / feature_time > 100


def _codec_sweep_rows() -> list[dict]:
    rng = np.random.default_rng(0)
    features = rng.normal(size=(64, FEATURE_DIM)).astype(np.float32)
    system = build_demo_system(num_workers=2, seed=0)
    x = rng.normal(size=(64, *system.input_shape)).astype(np.float32)
    reference = fused_labels(system.models, system.fusion, x)

    rows = []
    for name in SWEEP_CODECS:
        codec = get_codec(name)
        encoded = codec.encode(features)
        per_feature = encoded.nbytes / len(features)
        roundtrip = codec.decode(encoded)
        labels = fused_labels(system.models, system.fusion, x, codec=name)
        row = {
            "codec": name,
            "bytes/feature": round(per_feature, 1),
            "vs_raw32_x": round(FEATURE_DIM * 4 / per_feature, 2),
            "max_abs_err": float(np.abs(roundtrip - features).max()),
            "fused_agreement": float((labels == reference).mean()),
        }
        for bps in SWEEP_BANDWIDTHS_BPS:
            link = LinkModel(bandwidth_bps=bps)
            label = f"ms@{bps // 1_000_000}Mbps"
            row[label] = round(
                link.transfer_seconds(int(per_feature)) * 1e3, 3)
        rows.append(row)
    return rows


def test_codec_bandwidth_sweep(benchmark):
    """Codec x bandwidth: bytes, latency, and accuracy-proxy in one table."""
    rows = benchmark(_codec_sweep_rows)
    print_table("Wire codecs x link bandwidth (128-dim features)", rows)
    by_codec = {r["codec"]: r for r in rows}

    # Bytes shrink monotonically raw32 -> f16 -> q8, and transfer time at
    # the tc cap follows the byte count.
    assert by_codec["raw32"]["bytes/feature"] == 512.0
    assert by_codec["f16"]["bytes/feature"] == 256.0
    assert by_codec["q8"]["bytes/feature"] < 256.0
    cap_ms = f"ms@{TC_CAP_BPS // 1_000_000}Mbps"
    assert by_codec["q8"][cap_ms] < by_codec["f16"][cap_ms] \
        < by_codec["raw32"][cap_ms]

    # Lossy codecs stay close: bounded reconstruction error and near-total
    # fused-prediction agreement with raw32.
    assert by_codec["raw32"]["max_abs_err"] == 0.0
    assert by_codec["q8"]["max_abs_err"] < 0.05
    for name in SWEEP_CODECS:
        assert by_codec[name]["fused_agreement"] >= 0.95, by_codec[name]
