"""Section V-D — communication overhead accounting.

Paper anchors: features shrink from 1536 B (one device) to 512 B (ten
devices) against a 150528 B raw image — a 294x reduction; the maximum
per-device communication time at the 2 Mbps tc cap is 5.86 ms.
"""

from benchmarks.conftest import print_table
from repro.core.experiments import communication_rows
from repro.edge.network import RAW_IMAGE_BYTES, tc_capped_link


def test_communication_accounting(benchmark):
    rows = benchmark(communication_rows)
    print_table("Section V-D: feature sizes and transfer times", rows)
    by_n = {r["devices"]: r for r in rows}
    assert by_n[1]["feature_bytes"] == 1536
    assert by_n[10]["feature_bytes"] == 512
    assert abs(by_n[10]["reduction_x"] - 294.0) < 0.5
    assert all(r["transfer_ms"] < 7.0 for r in rows)


def test_raw_image_transfer_dominates(benchmark):
    """Shipping the raw image instead of features costs ~100x more time."""
    link = tc_capped_link()
    image_time = benchmark(link.transfer_seconds, RAW_IMAGE_BYTES)
    feature_time = link.transfer_seconds(512)
    print(f"\nraw image: {image_time * 1e3:.1f} ms, "
          f"feature: {feature_time * 1e3:.2f} ms")
    assert image_time / feature_time > 100
