"""Fig. 4 — Split ViT-Base on the computer-vision datasets.

Three panels: (a) accuracy, (b) latency, (c) total memory, vs the number
of edge devices N in {1, 2, 3, 5, 10} under a 180 MB fleet budget.

Paper anchors: accuracy >85% (CIFAR) / >91% (MNIST) / >90% (Caltech),
held roughly flat in N; latency falls from 9.63 s (N=1) to 1.28 s (N=10)
against the 36.94 s unsplit baseline; memory peaks at N=2 and falls to
~96 MB total at N=10 (9.60 MB per sub-model).

Panels (b)/(c) are regenerated at full scale via the calibrated simulator;
panel (a) at trained reproduction scale (tiny ViT on synthetic analogues,
so absolute accuracies are lower but flat-in-N should hold).
"""

from benchmarks.conftest import IMAGE, TEST_PER_CLASS, TRAIN_PER_CLASS, print_table
from benchmarks.trained_runs import BENCH_DEVICE_COUNTS, build_edvit_system
from repro.core.experiments import latency_memory_curve
from repro.data import caltech_like, mnist_like
from repro.models.vit import vit_base_config


def test_fig4b_fig4c_latency_memory(benchmark):
    rows = benchmark(latency_memory_curve,
                     vit_base_config(num_classes=10), budget_mb=180)
    print_table("Fig. 4(b,c): ViT-Base latency & memory vs N (simulated)",
                rows)
    ten = next(r for r in rows if r["devices"] == 10)
    assert abs(ten["latency_s"] - 1.28) / 1.28 < 0.1
    assert abs(ten["per_model_mb"] - 9.60) / 9.60 < 0.02
    # Memory spike at N=2 (both sub-models keep half the heads).
    mem = {r["devices"]: r["total_memory_mb"] for r in rows}
    assert mem[2] > mem[1] and mem[2] > mem[3]


def test_fig4a_accuracy_cv_datasets(benchmark, trained_vit, bench_dataset):
    """Accuracy vs N for the three CV dataset analogues."""

    def run():
        from repro.core.training import TrainConfig, train_classifier
        from repro.models.vit import ViTConfig, VisionTransformer
        import numpy as np

        datasets = {
            "CIFAR-10~": bench_dataset,
            "MNIST~": mnist_like(image_size=IMAGE,
                                 train_per_class=TRAIN_PER_CLASS,
                                 test_per_class=TEST_PER_CLASS),
            "Caltech~": caltech_like(num_classes=10, image_size=IMAGE,
                                     train_per_class=TRAIN_PER_CLASS,
                                     test_per_class=TEST_PER_CLASS),
        }
        rows = []
        for name, ds in datasets.items():
            if name == "CIFAR-10~":
                base = trained_vit
            else:
                cfg = ViTConfig(image_size=IMAGE, patch_size=4,
                                in_channels=ds.image_shape[0],
                                num_classes=ds.num_classes, depth=2,
                                embed_dim=32, num_heads=4)
                base = VisionTransformer(cfg, rng=np.random.default_rng(0))
                train_classifier(base, ds.x_train, ds.y_train,
                                 TrainConfig(epochs=12, lr=3e-3, seed=0))
            row = {"Dataset": name}
            for n in BENCH_DEVICE_COUNTS:
                system = build_edvit_system(base, ds, n, seed=0)
                row[f"N={n}"] = system.accuracy(ds)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Fig. 4(a): fused accuracy vs N (trained, reduced scale)",
                rows)
    for row in rows:
        accs = [row[f"N={n}"] for n in BENCH_DEVICE_COUNTS]
        assert all(a > 0.15 for a in accs)  # always well above chance
