"""Shared fixtures for the benchmark harness.

Benchmarks regenerate every table and figure of the paper at reproduction
scale: analytic/simulated experiments use the full-size ViT configs, while
trained experiments use scaled-down models on synthetic data (see
DESIGN.md).  Each bench prints the rows/series the paper reports; run with
``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.training import TrainConfig, train_classifier
from repro.data import cifar10_like, gtzan_like
from repro.models.snn import ConvSNN, SNNConfig
from repro.models.vgg import VGG, vgg8_micro_config
from repro.models.vit import ViTConfig, VisionTransformer

IMAGE = 16
TRAIN_PER_CLASS = 48
TEST_PER_CLASS = 16


def print_table(title: str, rows) -> None:
    from repro.core.metrics import format_table

    print(f"\n=== {title} ===")
    print(format_table(rows))


@pytest.fixture(scope="session")
def bench_dataset():
    return cifar10_like(image_size=IMAGE, train_per_class=TRAIN_PER_CLASS,
                        test_per_class=TEST_PER_CLASS, noise_std=0.3)


@pytest.fixture(scope="session")
def bench_audio_dataset():
    return gtzan_like(image_size=IMAGE, train_per_class=TRAIN_PER_CLASS,
                      test_per_class=TEST_PER_CLASS)


def tiny_vit_config(num_classes=10, in_channels=3):
    return ViTConfig(image_size=IMAGE, patch_size=4, in_channels=in_channels,
                     num_classes=num_classes, depth=2, embed_dim=32,
                     num_heads=4, name="vit-bench")


@pytest.fixture(scope="session")
def trained_vit(bench_dataset):
    model = VisionTransformer(tiny_vit_config(), rng=np.random.default_rng(0))
    train_classifier(model, bench_dataset.x_train, bench_dataset.y_train,
                     TrainConfig(epochs=12, lr=3e-3, seed=0))
    return model


@pytest.fixture(scope="session")
def trained_audio_vit(bench_audio_dataset):
    model = VisionTransformer(tiny_vit_config(in_channels=1),
                              rng=np.random.default_rng(0))
    train_classifier(model, bench_audio_dataset.x_train,
                     bench_audio_dataset.y_train,
                     TrainConfig(epochs=12, lr=3e-3, seed=0))
    return model


@pytest.fixture(scope="session")
def trained_vgg(bench_dataset):
    model = VGG(vgg8_micro_config(num_classes=10, image_size=IMAGE,
                                  width_scale=0.25),
                rng=np.random.default_rng(0))
    train_classifier(model, bench_dataset.x_train, bench_dataset.y_train,
                     TrainConfig(epochs=8, lr=2e-3, seed=0))
    return model


@pytest.fixture(scope="session")
def trained_snn(bench_dataset):
    # EC-SNN converts the CNN backbone to spikes, so the SNN's conv widths
    # track the VGG's (16/32/64 at width_scale 0.25); the time-step
    # multiplier then makes it the slowest method, as in the paper's Fig. 7.
    cfg = SNNConfig(image_size=IMAGE, num_classes=10, channels=(16, 32, 64),
                    time_steps=3, classifier_hidden=64)
    model = ConvSNN(cfg, rng=np.random.default_rng(0))
    train_classifier(model, bench_dataset.x_train, bench_dataset.y_train,
                     TrainConfig(epochs=8, lr=2e-3, seed=0))
    return model
