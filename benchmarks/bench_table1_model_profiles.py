"""Table I — standard ViT model profiles on Raspberry Pi 4B.

Paper values (224x224, patch 16):

    Model      Depth Width Heads Params  Flops   Latency   Mem
    ViT-Small  12    384   6     22.1M   4.25G   9628 ms   83 MB
    ViT-Base   12    768   12    86.6M   16.86G  36940 ms  327 MB
    ViT-Large  24    1024  16    304.4M  59.69G  118828 ms 1157 MB
"""

from benchmarks.conftest import print_table
from repro.core.experiments import table1_rows


def test_table1_model_profiles(benchmark):
    rows = benchmark(table1_rows)
    print_table("Table I: standard ViT profiles (Pi-4B model)", rows)
    by_model = {r["Model"]: r for r in rows}
    assert abs(by_model["ViT-Base"]["Latency (ms)"] - 36940) < 20
    assert abs(by_model["ViT-Base"]["Params (M)"] - 86.6) < 0.1


def test_table1_imagenet_vs_task_head(benchmark):
    """Head size barely moves the profile: 10-class vs 1000-class."""
    rows_1000 = table1_rows(num_classes=1000)
    rows_10 = benchmark(table1_rows, num_classes=10)
    for r1000, r10 in zip(rows_1000, rows_10):
        assert abs(r1000["Params (M)"] - r10["Params (M)"]) < 1.1
