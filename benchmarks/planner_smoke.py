"""CI smoke test for the planning layer (the `planner-smoke` job).

End-to-end: plan a small heterogeneous fleet, round-trip the plan through
JSON, boot the serving stack from the rebuilt plan, kill one worker
mid-run, and assert that online replanning restores accuracy strictly
above the zero-fill degraded floor.  Also pins the `greedy_assign`
regression: the previously-infeasible fleet (memory-tight device rejected
for the big sub-model, then needed for the small one) must now place.

Run:  PYTHONPATH=src python benchmarks/planner_smoke.py
"""

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.assignment import DeviceSpec, SubModelSpec, greedy_assign, validate_plan
from repro.planning import DeploymentPlan, PlannedSystem, plan_demo_system


def check(name: str, condition: bool, detail: str = "") -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {name}" + (f" ({detail})" if detail else ""))
    if not condition:
        raise SystemExit(f"planner smoke failed: {name} {detail}")


def main() -> None:
    print("== greedy_assign regression fleet ==")
    devices = [DeviceSpec("d0", memory_bytes=10, energy_flops=1000.0),
               DeviceSpec("d1", memory_bytes=100, energy_flops=50.0)]
    submodels = [SubModelSpec("m0", size_bytes=50, flops_per_sample=40.0),
                 SubModelSpec("m1", size_bytes=10, flops_per_sample=30.0)]
    plan = greedy_assign(devices, submodels, num_samples=1)
    validate_plan(plan, devices, submodels, num_samples=1)
    check("previously-infeasible fleet places",
          plan.mapping == {"m0": "d1", "m1": "d0"}, str(plan.mapping))

    print("== plan a heterogeneous fleet ==")
    t0 = time.perf_counter()
    system = plan_demo_system(num_workers=2, seed=0,
                              throughputs=[1.0, 0.5],
                              train_fusion=True, fusion_epochs=8)
    print(f"  planned+trained in {time.perf_counter() - t0:.1f}s")
    deployment = system.plan
    deployment.validate()
    check("plan carries a DES prediction",
          deployment.prediction is not None
          and deployment.prediction.latency_s > 0)
    check("plan carries a real accuracy",
          deployment.prediction.accuracy is not None
          and deployment.prediction.accuracy > 0.15,
          f"accuracy={deployment.prediction.accuracy}")

    print("== JSON round trip + deterministic rebuild ==")
    with tempfile.TemporaryDirectory() as tmp:
        path = deployment.save(Path(tmp) / "plan.json")
        rebuilt_plan = DeploymentPlan.load(path)
    check("JSON round trip is lossless",
          rebuilt_plan.to_dict() == deployment.to_dict())
    t0 = time.perf_counter()
    rebuilt = PlannedSystem.from_plan(rebuilt_plan)
    print(f"  rebuilt from JSON in {time.perf_counter() - t0:.1f}s")

    dataset = rebuilt.eval_dataset()
    x = dataset.x_test.astype(np.float32)
    y = np.asarray(dataset.y_test)
    healthy = rebuilt.local_accuracy(x, y)
    zero_fill_floor = rebuilt.local_accuracy(x, y, zero_models=(0,))
    check("rebuild reproduces the planned accuracy",
          healthy == deployment.prediction.accuracy,
          f"{healthy} vs {deployment.prediction.accuracy}")
    check("zero-fill floor is strictly degraded",
          zero_fill_floor < healthy,
          f"floor={zero_fill_floor}, healthy={healthy}")

    print("== serve from plan, kill a worker, replan ==")
    victim = rebuilt.plan.model_ids[0]
    with rebuilt.make_server() as server:
        served = float((server.infer(x, timeout=60.0) == y).mean())
        check("served accuracy matches local reference", served == healthy,
              f"{served} vs {healthy}")

        server.cluster.kill_worker(victim)
        server.infer(x[:4], timeout=60.0)      # absorbs the death, replans
        deadline = time.perf_counter() + 30.0
        while server.hosting()[victim] == victim \
                and time.perf_counter() < deadline:
            time.sleep(0.05)
        hosting = server.hosting()
        check("victim slot re-hosted", hosting[victim] != victim,
              str(hosting))

        recovered = float((server.infer(x, timeout=60.0) == y).mean())
        report = server.stats()
    check("replan restores accuracy above the zero-fill floor",
          recovered > zero_fill_floor,
          f"recovered={recovered}, floor={zero_fill_floor}")
    check("replan restores the healthy accuracy", recovered == healthy,
          f"{recovered} vs {healthy}")
    check("no request failed", report.failed == 0, str(report.failed))
    check("replan event recorded",
          rebuilt.plan.history
          and rebuilt.plan.history[-1]["kind"] == "replan")
    print("planner smoke: all checks passed")


if __name__ == "__main__":
    main()
