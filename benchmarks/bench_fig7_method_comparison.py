"""Fig. 7 — Split-CNN vs Split-SNN vs ED-ViT at 10 edge devices.

Paper shape (CIFAR-10, N=10):

* accuracy: ED-ViT best (85.59% vs 85.31% CNN / 82.29% SNN);
* latency: ED-ViT lowest — 2.70x below CNN, 4.36x below SNN (the SNN
  re-runs its conv stack every simulation time step);
* memory: ED-ViT far below CNN and comparable to SNN.

Reproduced with the three trained systems; latency comes from the
calibrated simulator fed with each sub-model's analytic op count.
"""

import numpy as np

from benchmarks.conftest import print_table
from benchmarks.trained_runs import (
    build_cnn_system,
    build_edvit_system,
    build_snn_system,
)
from repro.edge.device import make_fleet, raspberry_pi_4b
from repro.edge.simulator import DeploymentSpec, SubModelProfile, simulate_inference
from repro.profiling import paper_flops, size_mb, snn_flops, vgg_flops

N_DEVICES = 10


def _simulate(flops_list, feature_dims, fusion_flops=1e6):
    fleet = make_fleet(N_DEVICES)
    profiles = {}
    placement = {}
    for i, (flops, dim) in enumerate(zip(flops_list, feature_dims)):
        mid = f"m{i}"
        profiles[mid] = SubModelProfile(mid, float(flops), int(dim))
        placement[mid] = fleet[i % N_DEVICES].device_id
    spec = DeploymentSpec(devices=fleet, placement=placement,
                          profiles=profiles,
                          fusion_device=raspberry_pi_4b("fusion"),
                          fusion_flops=fusion_flops)
    return simulate_inference(spec, num_samples=1).max_latency


def _row(name, system, flops_list):
    sizes = [size_mb(sm.model.num_parameters()) for sm in system.submodels]
    dims = [sm.model.feature_dim() for sm in system.submodels]
    return {
        "Method": name,
        "latency_s": _simulate(flops_list, dims),
        "total_memory_mb": float(np.sum(sizes)),
    }, dims


def test_fig7_three_method_comparison(benchmark, trained_vit, trained_vgg,
                                      trained_snn, bench_dataset):
    def run():
        edvit = build_edvit_system(trained_vit, bench_dataset, N_DEVICES,
                                   seed=0)
        cnn = build_cnn_system(trained_vgg, bench_dataset, N_DEVICES, seed=0)
        snn = build_snn_system(trained_snn, bench_dataset, N_DEVICES, seed=0)

        rows = []
        row, _ = _row("Split-CNN", cnn,
                      [vgg_flops(sm.model.config) for sm in cnn.submodels])
        row["accuracy"] = cnn.accuracy(bench_dataset)
        rows.append(row)
        row, _ = _row("Split-SNN", snn,
                      [snn_flops(sm.model.config) for sm in snn.submodels])
        row["accuracy"] = snn.accuracy(bench_dataset)
        rows.append(row)
        row, _ = _row("ED-ViT", edvit,
                      [paper_flops(sm.model.config) for sm in edvit.submodels])
        row["accuracy"] = edvit.accuracy(bench_dataset)
        rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Fig. 7: method comparison at N=10 (trained + simulated)",
                rows)
    by = {r["Method"]: r for r in rows}
    # SNN pays a time-step multiplier: slowest of the conv-based methods.
    assert by["Split-SNN"]["latency_s"] > by["Split-CNN"]["latency_s"]
    # All methods produce working classifiers.
    assert all(r["accuracy"] > 0.1 for r in rows)
    # ED-ViT's pruned transformer sub-models stay small.
    assert by["ED-ViT"]["total_memory_mb"] < 5 * by["Split-CNN"]["total_memory_mb"]
