"""Fig. 5 — Split ViT-Base on the audio-recognition datasets.

Paper anchors: GTZAN accuracy >84%, Speech Command >90%; latency falls
from 9.55 s to 1.28 s (25.13x vs the 32.16 s original); sub-model size
reaches 9.35 MB at N=10 under the 180 MB budget.
"""

from benchmarks.conftest import (
    IMAGE,
    TEST_PER_CLASS,
    TRAIN_PER_CLASS,
    print_table,
)
from benchmarks.trained_runs import BENCH_DEVICE_COUNTS, build_edvit_system
from repro.core.experiments import latency_memory_curve
from repro.data import speech_command_like
from repro.models.vit import vit_base_config


def test_fig5b_fig5c_latency_memory(benchmark):
    rows = benchmark(latency_memory_curve,
                     vit_base_config(num_classes=10, in_channels=1),
                     budget_mb=180)
    print_table("Fig. 5(b,c): audio ViT-Base latency & memory vs N", rows)
    ten = next(r for r in rows if r["devices"] == 10)
    assert abs(ten["per_model_mb"] - 9.35) / 9.35 < 0.03
    latencies = [r["latency_s"] for r in rows]
    assert latencies[-1] < latencies[0]


def test_fig5a_accuracy_audio_datasets(benchmark, trained_audio_vit,
                                       bench_audio_dataset):
    def run():
        import numpy as np

        from repro.core.training import TrainConfig, train_classifier
        from repro.models.vit import ViTConfig, VisionTransformer

        speech = speech_command_like(num_classes=10, image_size=IMAGE,
                                     train_per_class=TRAIN_PER_CLASS,
                                     test_per_class=TEST_PER_CLASS)
        cfg = ViTConfig(image_size=IMAGE, patch_size=4, in_channels=1,
                        num_classes=10, depth=2, embed_dim=32, num_heads=4)
        speech_vit = VisionTransformer(cfg, rng=np.random.default_rng(0))
        train_classifier(speech_vit, speech.x_train, speech.y_train,
                         TrainConfig(epochs=12, lr=3e-3, seed=0))

        rows = []
        for name, ds, base in [("GTZAN~", bench_audio_dataset,
                                trained_audio_vit),
                               ("SpeechCommand~", speech, speech_vit)]:
            row = {"Dataset": name}
            for n in BENCH_DEVICE_COUNTS:
                system = build_edvit_system(base, ds, n, seed=0)
                row[f"N={n}"] = system.accuracy(ds)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Fig. 5(a): audio fused accuracy vs N (trained)", rows)
    for row in rows:
        assert all(row[f"N={n}"] > 0.15 for n in BENCH_DEVICE_COUNTS)
