"""Fig. 6 — Split ViT-Small and ViT-Large on CIFAR-10 / Caltech.

Paper anchors: budgets 50 MB (Small) / 600 MB (Large); at N=10 the
per-sub-model size is 2.58 MB (Small, 32.06x) and 18.73 MB (Large,
61.77x); accuracy ordering Small < Base < Large; latency ordering
Small < Base < Large at every N.
"""

from benchmarks.conftest import print_table
from repro.core.experiments import PAPER_BUDGETS_MB, latency_memory_curve
from repro.models.vit import vit_base_config, vit_large_config, vit_small_config


def test_fig6_vit_small_curves(benchmark):
    rows = benchmark(latency_memory_curve, vit_small_config(num_classes=10),
                     budget_mb=PAPER_BUDGETS_MB["vit-small"])
    print_table("Fig. 6: ViT-Small latency & memory vs N", rows)
    ten = next(r for r in rows if r["devices"] == 10)
    assert abs(ten["per_model_mb"] - 2.58) / 2.58 < 0.12
    assert all(r["total_memory_mb"] <= 50 * 1.01 for r in rows)


def test_fig6_vit_large_curves(benchmark):
    rows = benchmark(latency_memory_curve, vit_large_config(num_classes=10),
                     budget_mb=PAPER_BUDGETS_MB["vit-large"])
    print_table("Fig. 6: ViT-Large latency & memory vs N", rows)
    ten = next(r for r in rows if r["devices"] == 10)
    assert abs(ten["per_model_mb"] - 18.73) / 18.73 < 0.12
    assert all(r["total_memory_mb"] <= 600 * 1.01 for r in rows)


def test_fig6_size_ordering_across_families(benchmark):
    def run():
        out = {}
        for name, cfg, budget in [
                ("small", vit_small_config(num_classes=10), 50),
                ("base", vit_base_config(num_classes=10), 180),
                ("large", vit_large_config(num_classes=10), 600)]:
            rows = latency_memory_curve(cfg, budget_mb=budget,
                                        device_counts=(5,))
            out[name] = rows[0]
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Fig. 6 cross-family comparison at N=5",
                [{"family": k} | v for k, v in out.items()])
    assert (out["small"]["latency_s"] < out["base"]["latency_s"]
            < out["large"]["latency_s"])
    assert (out["small"]["total_memory_mb"] < out["base"]["total_memory_mb"]
            < out["large"]["total_memory_mb"])
