"""Table III — Split-CNN vs Split-SNN vs ED-ViT accuracy on CIFAR-10.

Paper values (ViT-Base vs VGG-16 backbones, %):

    Method     N=1    N=2    N=3    N=5    N=10
    Split-CNN  85.05  85.11  85.17  85.33  85.31
    Split-SNN  83.56  82.45  83.01  83.06  82.29
    ED-ViT     89.11  86.18  86.97  86.94  85.59

At reproduction scale the absolute accuracies are lower (tiny models,
synthetic data), but the ordering — ED-ViT >= Split-CNN > Split-SNN on
average — should hold.
"""

import functools

from benchmarks.conftest import print_table
from benchmarks.trained_runs import (
    BENCH_DEVICE_COUNTS,
    BENCH_TRIALS,
    accuracy_over_trials,
    build_cnn_system,
    build_edvit_system,
    build_snn_system,
)
from repro.core.metrics import format_mean_std, mean_std


def _table(trained_vit, trained_vgg, trained_snn, dataset):
    builders = {
        "Split-CNN": functools.partial(build_cnn_system, trained_vgg, dataset),
        "Split-SNN": functools.partial(build_snn_system, trained_snn, dataset),
        "ED-ViT": functools.partial(build_edvit_system, trained_vit, dataset),
    }
    rows = []
    means = {}
    for method, builder in builders.items():
        row = {"Method": method}
        collected = []
        for n in BENCH_DEVICE_COUNTS:
            accs = accuracy_over_trials(builder, dataset, n, BENCH_TRIALS)
            row[f"N={n}"] = format_mean_std(accs)
            collected.extend(accs)
        means[method] = mean_std(collected)[0]
        rows.append(row)
    return rows, means


def test_table3_baseline_accuracy(benchmark, trained_vit, trained_vgg,
                                  trained_snn, bench_dataset):
    rows, means = benchmark.pedantic(
        _table, args=(trained_vit, trained_vgg, trained_snn, bench_dataset),
        rounds=1, iterations=1)
    print_table("Table III: splitting-method accuracy (mean±std %)", rows)
    print(f"method means: { {k: round(v, 3) for k, v in means.items()} }")
    # All three systems classify far above the 10% chance level.  The
    # paper's ED-ViT-first ordering relies on ImageNet-pretrained ViT
    # features, which are unavailable offline: un-pretrained tiny ViTs are
    # less sample-efficient than conv nets, so the conv baselines can lead
    # at this scale (see EXPERIMENTS.md).
    assert all(v > 0.2 for v in means.values())
    assert means["ED-ViT"] > 0.3  # ED-ViT still 3x above chance
