"""Observability CI smoke: span trees, Perfetto export, tracing overhead.

Run directly (CI does)::

    PYTHONPATH=src python benchmarks/obs_smoke.py

Against a 2-worker emulated fleet it checks that:

* 300 open-loop requests served **with tracing enabled** each yield a
  complete span tree on every transport (``multiprocess``,
  ``inprocess``, ``tcp``): a ``request`` root, its batch's
  ``batch.serve``/``batch.gather``/``batch.fusion`` spans, and
  worker-process ``worker.request``/``worker.forward``/``codec.encode``
  spans joined to the server-side batch span by the trace context
  propagated over the wire;
* the Chrome trace-event (Perfetto) export is valid JSON whose events
  are well-formed complete events; and
* enabled-tracing p95 latency stays within 5% of tracing-off p95 on an
  emulation-dominated fleet (interleaved off/on runs, median-of-medians
  so scheduler noise doesn't flip the gate).

Exits non-zero on any violation, so CI fails loudly.
"""

import json
import os
import statistics
import tempfile

from repro.core.metrics import format_table
from repro.edge.network import LinkModel
from repro.obs import (
    chrome_trace,
    disable_tracing,
    enable_tracing,
    get_tracer,
    write_chrome_trace,
)
from repro.serving import (
    BatchingConfig,
    InferenceServer,
    LoadgenConfig,
    ServerConfig,
    build_demo_system,
    run_load,
)

TRANSPORTS = ("multiprocess", "inprocess", "tcp")
TRACED_REQUESTS = 300
OVERHEAD_REQUESTS = 120
OVERHEAD_PAIRS = 3
OVERHEAD_CEILING = 1.05
WORKER_SPAN_NAMES = {"worker.request", "worker.forward", "codec.encode",
                     "worker.emulate"}


def make_server(transport: str, time_scale: float = 0.0,
                link: LinkModel | None = None):
    system = build_demo_system(num_workers=2, time_scale=time_scale,
                               transport=transport, link=link)
    server = InferenceServer(
        system.make_cluster(), system.fusion,
        ServerConfig(batching=BatchingConfig(max_batch_samples=16,
                                             max_wait_s=0.002)))
    return system, server


def check_span_trees(transport: str) -> dict:
    """Serve traced traffic and assert every request's tree is complete."""
    enable_tracing()
    system, server = make_server(transport)
    with server:
        result = run_load(server, system.input_shape,
                          LoadgenConfig(num_requests=TRACED_REQUESTS,
                                        mode="open", offered_rps=300.0))
    spans = get_tracer().spans()
    assert get_tracer().dropped == 0, "ring buffer dropped spans"
    assert result.completed == TRACED_REQUESTS and result.errors == 0, result

    by_name: dict[str, list] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)

    roots = by_name.get("request", [])
    assert len(roots) == TRACED_REQUESTS, \
        f"{transport}: {len(roots)} request roots, want {TRACED_REQUESTS}"

    batch_spans = {s.trace_id: s for s in by_name.get("batch.serve", [])}
    batch_children: dict[str, set] = {}
    worker_spans = 0
    for name in ("batch.gather", "batch.fusion"):
        for span in by_name.get(name, []):
            batch_children.setdefault(span.trace_id, set()).add(name)
    for span in spans:
        if span.name in WORKER_SPAN_NAMES:
            assert span.process != "server", \
                f"{span.name} must be emitted in the worker process"
            worker_spans += 1
    for span in by_name.get("worker.request", []):
        batch = batch_spans.get(span.trace_id)
        assert batch is not None, \
            f"worker.request trace {span.trace_id} has no batch.serve"
        assert span.parent_id == batch.span_id, \
            "worker.request must parent onto the propagated batch span"
        batch_children.setdefault(span.trace_id, set()).add("worker.request")
    for span in by_name.get("codec.decode", []):
        assert span.process == "server", \
            "codec.decode runs on the gather side"
        batch_children.setdefault(span.trace_id, set()).add("codec.decode")

    need = {"batch.gather", "batch.fusion", "worker.request", "codec.decode"}
    for root in roots:
        batch_id = root.attrs.get("batch_id")
        assert batch_id in batch_spans, \
            f"request {root.trace_id}: batch {batch_id} has no batch.serve"
        missing = need - batch_children.get(batch_id, set())
        assert not missing, \
            f"request {root.trace_id}: batch {batch_id} missing {missing}"
        queue = [s for s in by_name.get("request.queue", [])
                 if s.trace_id == root.trace_id]
        assert queue and queue[0].parent_id == root.span_id, \
            f"request {root.trace_id} lacks a queue child span"

    trace = chrome_trace(spans)
    disable_tracing()
    return {"transport": transport, "requests": result.completed,
            "spans": len(spans), "worker_spans": worker_spans,
            "events": len(trace["traceEvents"]),
            "p95_ms": round((result.p95_s or 0.0) * 1e3, 1)}


def check_perfetto_export() -> int:
    """Round-trip the export through disk and validate the JSON shape."""
    enable_tracing()
    system, server = make_server("inprocess")
    with server:
        run_load(server, system.input_shape,
                 LoadgenConfig(num_requests=50, mode="open",
                               offered_rps=300.0))
    spans = get_tracer().spans()
    disable_tracing()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.json")
        count = write_chrome_trace(spans, path)
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
    events = trace["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert count == len(spans) and len(complete) == count, \
        f"export wrote {len(complete)} complete events for {count} spans"
    assert trace["otherData"]["span_count"] == count
    for event in complete:
        assert event["ts"] >= 0 and event["dur"] >= 0, event
        assert {"name", "pid", "tid", "args"} <= set(event), event
    names = {e["args"]["name"] for e in events if e["ph"] == "M"
             and e["name"] == "process_name"}
    assert "server" in names and len(names) >= 3, \
        f"expected server + worker process tracks, got {names}"
    return count


def measure_p95(traced: bool) -> float:
    """One open-loop run on an emulation-dominated in-process fleet."""
    if traced:
        enable_tracing()
    else:
        disable_tracing()
    system, server = make_server(
        "inprocess", time_scale=1.0,
        link=LinkModel(bandwidth_bps=1e9, overhead_seconds=0.005))
    with server:
        result = run_load(server, system.input_shape,
                          LoadgenConfig(num_requests=OVERHEAD_REQUESTS,
                                        mode="open", offered_rps=300.0))
    disable_tracing()
    assert result.errors == 0 and result.dropped == 0, result
    return result.p95_s


def main() -> None:
    rows = [check_span_trees(transport) for transport in TRANSPORTS]
    print(format_table(rows))

    exported = check_perfetto_export()
    print(f"\nperfetto export: {exported} spans round-trip as valid "
          "trace-event JSON")

    # Interleaved off/on pairs; medians tame scheduler noise in CI.
    off, on = [], []
    for _ in range(OVERHEAD_PAIRS):
        off.append(measure_p95(traced=False))
        on.append(measure_p95(traced=True))
    p95_off = statistics.median(off)
    p95_on = statistics.median(on)
    ratio = p95_on / p95_off
    print(f"tracing overhead: p95 off {p95_off * 1e3:.1f}ms, "
          f"on {p95_on * 1e3:.1f}ms ({ratio:.3f}x)")
    assert ratio <= OVERHEAD_CEILING, \
        f"tracing-on p95 is {ratio:.3f}x tracing-off (limit " \
        f"{OVERHEAD_CEILING}x)"
    print("obs smoke OK")


if __name__ == "__main__":
    main()
