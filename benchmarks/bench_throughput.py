"""Streaming throughput (extension experiment).

The paper evaluates single-sample latency; a deployed video pipeline cares
about sustained throughput.  The FIFO resources in the discrete-event
simulator pipeline naturally: while the fusion device handles frame k, the
workers already compute frame k+1.  This bench sweeps device counts and
reports frames/second for a 50-frame burst, plus per-device utilization
and energy.
"""

from benchmarks.conftest import print_table
from repro.core.experiments import (
    PAPER_BUDGETS_MB,
    deployment_for_point,
    plan_split,
)
from repro.edge.simulator import energy_report, simulate_inference, utilization_report
from repro.models.vit import vit_base_config

FRAMES = 50


def test_throughput_vs_devices(benchmark):
    base = vit_base_config(num_classes=10)

    def run():
        rows = []
        for n in (1, 2, 3, 5, 10):
            point = plan_split(base, n, 10, PAPER_BUDGETS_MB["vit-base"],
                               "paper")
            spec = deployment_for_point(point, num_classes=10)
            result = simulate_inference(spec, num_samples=FRAMES)
            util = utilization_report(result)
            energy = energy_report(spec, result)
            worker_util = [u for d, u in util.items() if d.startswith("pi-")
                           and d != "pi-fusion"]
            worker_energy = [e for d, e in energy.items()
                             if d != "pi-fusion"]
            rows.append({
                "devices": n,
                "throughput_fps": result.throughput,
                "p50_latency_s": sorted(result.latencies)[FRAMES // 2],
                "mean_worker_util": sum(worker_util) / len(worker_util),
                "per_device_energy_j": max(worker_energy),
                "fleet_energy_j": sum(energy.values()),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Streaming throughput over {FRAMES} frames (simulated)",
                rows)
    fps = [r["throughput_fps"] for r in rows]
    # More devices -> more frames/sec (N=1 and N=2 tie: identical hp=6
    # sub-models bound each device, and only the fusion width differs).
    assert all(b >= a * 0.999 for a, b in zip(fps, fps[1:]))
    # The paper's energy claim is per *device*: each device's sub-model
    # shrinks with N, so its energy bill falls (the fleet total grows,
    # since every device processes every frame).
    per_device = [r["per_device_energy_j"] for r in rows]
    assert per_device[-1] < per_device[0] / 5


def test_open_stream_stability(benchmark):
    """An arrival rate below capacity keeps latency flat (no queue growth)."""
    base = vit_base_config(num_classes=10)
    point = plan_split(base, 5, 10, 180, "paper")
    spec = deployment_for_point(point, num_classes=10)

    def run():
        probe = simulate_inference(spec, num_samples=1)
        interval = probe.max_latency * 1.2
        return simulate_inference(spec, num_samples=20,
                                  arrival_interval=interval)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nopen stream: first={result.latencies[0]:.3f}s "
          f"last={result.latencies[-1]:.3f}s")
    assert result.latencies[-1] < result.latencies[0] * 1.05
