"""Streaming throughput (extension experiment).

The paper evaluates single-sample latency; a deployed video pipeline cares
about sustained throughput.  Two complementary measurements:

* the discrete-event simulator's pipelined FIFO model (device-count
  sweeps, utilization, energy) — analytic, full-size configs; and
* the *real* serving layer (:mod:`repro.serving`): Poisson traffic from
  the load generator against an emulated process fleet, reporting the
  latency-vs-offered-load curve and the dynamic-batching-on/off
  throughput comparison.
"""

from benchmarks.conftest import print_table
from repro.serving import (
    BatchingConfig,
    InferenceServer,
    LoadgenConfig,
    ServerConfig,
    build_demo_system,
    run_load,
    sweep_offered_load,
)
from repro.core.experiments import (
    PAPER_BUDGETS_MB,
    deployment_for_point,
    plan_split,
)
from repro.edge.simulator import energy_report, simulate_inference, utilization_report
from repro.models.vit import vit_base_config

FRAMES = 50


def test_throughput_vs_devices(benchmark):
    base = vit_base_config(num_classes=10)

    def run():
        rows = []
        for n in (1, 2, 3, 5, 10):
            point = plan_split(base, n, 10, PAPER_BUDGETS_MB["vit-base"],
                               "paper")
            spec = deployment_for_point(point, num_classes=10)
            result = simulate_inference(spec, num_samples=FRAMES)
            util = utilization_report(result)
            energy = energy_report(spec, result)
            worker_util = [u for d, u in util.items() if d.startswith("pi-")
                           and d != "pi-fusion"]
            worker_energy = [e for d, e in energy.items()
                             if d != "pi-fusion"]
            rows.append({
                "devices": n,
                "throughput_fps": result.throughput,
                "p50_latency_s": sorted(result.latencies)[FRAMES // 2],
                "mean_worker_util": sum(worker_util) / len(worker_util),
                "per_device_energy_j": max(worker_energy),
                "fleet_energy_j": sum(energy.values()),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Streaming throughput over {FRAMES} frames (simulated)",
                rows)
    fps = [r["throughput_fps"] for r in rows]
    # More devices -> more frames/sec (N=1 and N=2 tie: identical hp=6
    # sub-models bound each device, and only the fusion width differs).
    assert all(b >= a * 0.999 for a, b in zip(fps, fps[1:]))
    # The paper's energy claim is per *device*: each device's sub-model
    # shrinks with N, so its energy bill falls (the fleet total grows,
    # since every device processes every frame).
    per_device = [r["per_device_energy_j"] for r in rows]
    assert per_device[-1] < per_device[0] / 5


def test_open_stream_stability(benchmark):
    """An arrival rate below capacity keeps latency flat (no queue growth)."""
    base = vit_base_config(num_classes=10)
    point = plan_split(base, 5, 10, 180, "paper")
    spec = deployment_for_point(point, num_classes=10)

    def run():
        probe = simulate_inference(spec, num_samples=1)
        interval = probe.max_latency * 1.2
        return simulate_inference(spec, num_samples=20,
                                  arrival_interval=interval)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nopen stream: first={result.latencies[0]:.3f}s "
          f"last={result.latencies[-1]:.3f}s")
    assert result.latencies[-1] < result.latencies[0] * 1.05


def _demo_server(max_batch_samples: int, max_wait_s: float) -> tuple:
    system = build_demo_system(num_workers=2)
    server = InferenceServer(
        system.make_cluster(), system.fusion,
        ServerConfig(batching=BatchingConfig(
            max_batch_samples=max_batch_samples, max_wait_s=max_wait_s)))
    return system, server


def test_served_latency_vs_offered_load(benchmark):
    """Open-loop Poisson sweep against the real process fleet."""
    rates = [50.0, 100.0, 200.0, 400.0, 800.0]

    def run():
        system, server = _demo_server(max_batch_samples=16, max_wait_s=0.002)
        with server:
            return sweep_offered_load(server, system.input_shape, rates,
                                      num_requests=120)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Latency vs offered load (2 emulated workers, served)",
                [r.row() for r in results])
    for result in results:
        assert result.errors == 0 and result.dropped == 0
        # Below saturation the generator must keep up with the offered rate.
        assert result.achieved_rps > result.offered_rps * 0.5


def test_served_batching_throughput(benchmark):
    """Dynamic batching must beat one-request-at-a-time dispatch."""

    def run():
        rows = []
        for label, max_batch, max_wait in (("batch=1", 1, 0.0),
                                           ("dynamic", 16, 0.005)):
            system, server = _demo_server(max_batch, max_wait)
            with server:
                result = run_load(server, system.input_shape,
                                  LoadgenConfig(num_requests=200,
                                                mode="closed",
                                                concurrency=8))
            rows.append({"batching": label, **result.row()})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Closed-loop throughput: dynamic batching vs batch=1", rows)
    single, dynamic = rows[0], rows[1]
    assert dynamic["errors"] == 0 and single["errors"] == 0
    assert dynamic["achieved_rps"] > single["achieved_rps"]


def test_served_degraded_after_worker_kill(benchmark):
    """Killing a worker mid-run degrades service instead of dropping it."""

    def run():
        import threading

        system, server = _demo_server(max_batch_samples=16, max_wait_s=0.002)
        with server:
            victim = system.specs[0].worker_id
            threading.Timer(0.15, server.cluster.kill_worker,
                            (victim,)).start()
            result = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=150, mode="open",
                                            offered_rps=300.0))
            return result, server.stats()

    result, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Serving through a mid-run worker kill",
                [{**result.row(), "degraded": report.degraded_requests}])
    assert result.errors == 0 and result.dropped == 0
    assert report.degraded_requests > 0           # the kill landed mid-run
    assert sum(1 for s in report.worker_health.values() if s == "up") == 1
