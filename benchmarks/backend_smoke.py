"""Backend + quantization CI smoke: the `blocked` backend must earn its keep.

Run directly (CI does)::

    PYTHONPATH=src python benchmarks/backend_smoke.py

Four gates, exit 1 on any failure:

* **Serving kernels (hard)** — the kernels where the blocked backend
  actually innovates, at ViT-Base batch-8 @224 shapes.  ``softmax`` on
  the (8, 12, 197, 197) attention scores must be >= 1.5x faster
  (clip-instead-of-max-shift + GEMV normalizer + cache-blocked row
  sweeps; observed 1.7x+ across hosts).  ``layer_norm`` on the
  (1576, 768) token matrix must not regress (its GEMV-reduction win is
  host-dependent: 1.1-1.3x depending on how the VM's BLAS handles
  short-row reductions).  Both must agree numerically (rtol 2e-4).
  The GEMMs themselves already run at the BLAS roofline under the
  reference backend, so they are covered by the E2E gates instead.
  All speedups are gated on the **median** of interleaved A/B timing
  pairs: sustained serving latency is what the fleet feels, and the
  median of paired ratios is far more stable than min-of-N on shared
  virtualized CPUs whose performance floor wanders.
* **End-to-end regression guards** — a long-sequence tiny-ViT forward
  (image 32, patch 2: 257 tokens, the attention-heavy regime) must not
  lose to the reference (typical win 1.1-1.2x), and the demo-scale and
  ViT-Base-geometry forwards must stay within noise of parity.  E2E
  wins are bounded by Amdahl — most of a fp32 forward is roofline GEMM
  either way — and whole-model latency on a shared single-core VM
  carries ~10% run-to-run drift, so the E2E rows guard against the
  blocked backend *hurting* a fleet while the kernel rows above carry
  the quantitative speedup claims.
* **Int8 artifacts** — the quantized store variant of every planned
  sub-model must be >= 2x smaller than its fp32 twin, and the fused
  demo-system accuracy must stay within one point of fp32.  Int8 here
  is a *footprint* knob, not a speed knob: the gate enforces size and
  accuracy, never latency.
* **Planner auto-selection** — ``plan_demo_system(quant="auto")`` under
  a memory budget too tight for fp32 must fall back to int8, populate
  the store with the int8 artifacts, and warm-boot from them on the
  second invocation.
"""

import sys
import tempfile
import time

import numpy as np

from repro import nn
from repro.core.metrics import format_table
from repro.models.vit import (
    ViTConfig,
    VisionTransformer,
    vit_base_config,
)
from repro.nn.backend import NumpyBackend, use_backend
from repro.nn.blocked import BlockedBackend
from repro.planning import plan_demo_system
from repro.store import ArtifactStore

SOFTMAX_MIN_SPEEDUP = 1.5      # hard gate: attention softmax median
NO_REGRESSION = 0.95           # kernels: do no harm
LONGSEQ_MIN_SPEEDUP = 1.0      # attention-heavy E2E must not lose
E2E_NO_REGRESSION = 0.85       # whole-model latency noise allowance
INT8_MIN_RATIO = 2.0           # artifact bytes fp32 / int8
INT8_MAX_ACC_DROP = 0.01       # fused accuracy, absolute


def _sample(fn, inner: int) -> float:
    t0 = time.perf_counter()
    for _ in range(inner):
        fn()
    return (time.perf_counter() - t0) / inner


def speedup_of(baseline, candidate, pairs: int = 9,
               min_sample_s: float = 0.02) -> float:
    """Median of interleaved baseline/candidate timing ratios.

    Two robustness measures, both earned the hard way on shared
    virtualized CPUs: (1) samples are taken in A/B *pairs* so slow
    drift in host performance hits both sides equally instead of
    whichever happened to be measured second; (2) the gate statistic is
    the median ratio — sustained serving latency — because min-of-N
    never converges when the floor itself wanders.  Sub-millisecond
    workloads are looped until one sample spans ``min_sample_s``.
    """
    baseline()                             # warm caches and pack weights
    candidate()
    once = max(_sample(baseline, 1), 1e-9)
    inner = max(1, int(min_sample_s / once))
    ratios = []
    for _ in range(pairs):
        t_base = _sample(baseline, inner)
        t_cand = _sample(candidate, inner)
        ratios.append(t_base / t_cand)
    return float(np.median(ratios))


# ----------------------------------------------------------------------
# Gate 1: serving kernels (hard: softmax >= 1.5x, layer_norm no worse)
# ----------------------------------------------------------------------
def gate_serving_kernels(rows: list[dict]) -> bool:
    rng = np.random.default_rng(0)
    tokens = rng.normal(size=(1576, 768)).astype(np.float32)    # 8*197 rows
    w = rng.normal(size=768).astype(np.float32)
    b = rng.normal(size=768).astype(np.float32)
    scores = (rng.normal(size=(8, 12, 197, 197)) * 3).astype(np.float32)

    reference, blocked = NumpyBackend(), BlockedBackend()
    cases = [
        ("softmax (hard)",
         lambda be: be.softmax(scores, axis=-1), SOFTMAX_MIN_SPEEDUP),
        ("layer_norm",
         lambda be: be.layer_norm(tokens, w, b, 1e-5), NO_REGRESSION),
    ]
    ok = True
    for name, kernel, bar in cases:
        np.testing.assert_allclose(kernel(blocked), kernel(reference),
                                   rtol=2e-4, atol=2e-5)
        speedup = speedup_of(lambda: kernel(reference),
                             lambda: kernel(blocked), pairs=15)
        t_ref = _sample(lambda: kernel(reference), 3)
        t_blk = _sample(lambda: kernel(blocked), 3)
        case_ok = speedup >= bar
        ok = ok and case_ok
        rows.append({"gate": f"kernel {name}",
                     "numpy_ms": f"{t_ref * 1e3:.2f}",
                     "blocked_ms": f"{t_blk * 1e3:.2f}",
                     "speedup": f"{speedup:.2f}x (median)",
                     "bar": f">= {bar}x",
                     "ok": case_ok})
    return ok


# ----------------------------------------------------------------------
# Gate 2: end-to-end forwards (win long-seq, regress nowhere)
# ----------------------------------------------------------------------
def _e2e_speedup(config: ViTConfig, batch: int) -> float:
    model = VisionTransformer(config, rng=np.random.default_rng(1))
    model.eval()
    x = nn.Tensor(np.random.default_rng(2).normal(
        size=(batch, 3, config.image_size, config.image_size))
        .astype(np.float32))

    def forward():
        with nn.inference_mode():
            return model(x)

    def forward_numpy():
        with use_backend("numpy"):
            return forward()

    def forward_blocked():
        with use_backend("blocked"):
            return forward()

    ref = forward_numpy().data.copy()
    np.testing.assert_allclose(forward_blocked().data, ref,
                               rtol=2e-3, atol=2e-4)
    return speedup_of(forward_numpy, forward_blocked)


def gate_end_to_end(rows: list[dict]) -> bool:
    cases = [
        ("long-seq ViT (257 tok)",
         ViTConfig(image_size=32, patch_size=2, num_classes=10, depth=4,
                   embed_dim=64, num_heads=4),
         8, LONGSEQ_MIN_SPEEDUP),
        ("demo-scale ViT",
         ViTConfig(image_size=16, patch_size=4, num_classes=10, depth=2,
                   embed_dim=32, num_heads=4),
         8, E2E_NO_REGRESSION),
        ("ViT-Base geometry @32",
         vit_base_config(num_classes=10, image_size=32),
         8, E2E_NO_REGRESSION),
    ]
    ok = True
    for name, config, batch, bar in cases:
        speedup = _e2e_speedup(config, batch)
        case_ok = speedup >= bar
        ok = ok and case_ok
        rows.append({"gate": f"e2e {name}", "numpy_ms": "-",
                     "blocked_ms": "-", "speedup": f"{speedup:.2f}x",
                     "bar": f">= {bar}x", "ok": case_ok})
    return ok


# ----------------------------------------------------------------------
# Gates 3 + 4: int8 artifacts and planner auto-selection
# ----------------------------------------------------------------------
def gate_quantization(rows: list[dict]) -> bool:
    ok = True
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)
        fp32 = plan_demo_system(num_workers=2, train_fusion=True,
                                fusion_epochs=2, store=store,
                                transport="inprocess")
        int8 = plan_demo_system(num_workers=2, train_fusion=True,
                                fusion_epochs=2, store=store,
                                transport="inprocess", quant="auto",
                                memory_headroom=0.5)

        # Gate 3a: every int8 artifact at least 2x smaller than fp32.
        worst = float("inf")
        for sub_fp32, sub_int8 in zip(fp32.plan.submodels,
                                      int8.plan.submodels):
            worst = min(worst, sub_fp32.size_bytes / sub_int8.size_bytes)
        size_ok = worst >= INT8_MIN_RATIO
        ok = ok and size_ok
        rows.append({"gate": "int8 artifact size", "numpy_ms": "-",
                     "blocked_ms": "-", "speedup": f"{worst:.2f}x smaller",
                     "bar": f">= {INT8_MIN_RATIO}x", "ok": size_ok})

        # Gate 3b: fused accuracy within a point of fp32.
        drop = abs(fp32.plan.prediction.accuracy
                   - int8.plan.prediction.accuracy)
        acc_ok = drop <= INT8_MAX_ACC_DROP + 1e-9
        ok = ok and acc_ok
        rows.append({"gate": "int8 fused accuracy", "numpy_ms": "-",
                     "blocked_ms": "-", "speedup": f"{drop * 100:.2f}pt drop",
                     "bar": f"<= {INT8_MAX_ACC_DROP * 100:.0f}pt",
                     "ok": acc_ok})

        # Gate 4: auto selected int8 under pressure, and the artifacts it
        # populated warm-boot the next deployment of the same plan.
        selected = [m.quant for m in int8.plan.submodels]
        again = plan_demo_system(num_workers=2, train_fusion=True,
                                 fusion_epochs=2, store=store,
                                 transport="inprocess", quant="auto",
                                 memory_headroom=0.5)
        auto_ok = (all(q == "int8" for q in selected)
                   and again.warm_booted
                   and all(nn.is_quantized(m) for m in again.models))
        ok = ok and auto_ok
        rows.append({"gate": "auto plan + warm boot", "numpy_ms": "-",
                     "blocked_ms": "-",
                     "speedup": f"{selected} warm={again.warm_booted}",
                     "bar": "int8 + warm", "ok": auto_ok})
    return ok


def main() -> int:
    rows: list[dict] = []
    ok = gate_serving_kernels(rows)
    ok = gate_end_to_end(rows) and ok
    ok = gate_quantization(rows) and ok
    print(format_table(rows))
    if not ok:
        print("backend smoke FAILED", file=sys.stderr)
        return 1
    print("backend smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
