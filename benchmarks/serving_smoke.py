"""Serving-layer CI smoke: sustained load, batching win, degraded fusion.

Run directly (CI does, once per transport)::

    PYTHONPATH=src python benchmarks/serving_smoke.py [--transport inprocess]

Against a 2-worker emulated fleet at ``time_scale=0`` it checks that:

* a few hundred open-loop Poisson requests complete with **zero drops and
  zero errors** and a sane p99 (bounded well below a second at this toy
  scale);
* closed-loop throughput with dynamic batching is **strictly higher**
  than with batch size 1 (the serving layer's reason to exist); and
* hard-killing a worker mid-run yields **degraded answers, not failures**
  (every request still served, the dead worker marked down).

The ``--transport`` flag reruns the whole gauntlet on a different worker
substrate (``multiprocess``, ``inprocess``, ``tcp``) — CI runs a matrix
over it, so every transport keeps passing the same end-to-end bar.

Exits non-zero on any violation, so CI fails loudly.
"""

import argparse
import threading

from repro.core.metrics import format_table
from repro.edge.transport import TRANSPORTS
from repro.serving import (
    BatchingConfig,
    InferenceServer,
    LoadgenConfig,
    ServerConfig,
    build_demo_system,
    run_load,
)

P99_CEILING_S = 0.5
OPEN_REQUESTS = 300
CLOSED_REQUESTS = 200
TRANSPORT = "multiprocess"


def make_server(max_batch_samples: int, max_wait_s: float):
    system = build_demo_system(num_workers=2, time_scale=0.0,
                               transport=TRANSPORT)
    server = InferenceServer(
        system.make_cluster(), system.fusion,
        ServerConfig(batching=BatchingConfig(
            max_batch_samples=max_batch_samples, max_wait_s=max_wait_s)))
    return system, server


def main() -> None:
    global TRANSPORT
    parser = argparse.ArgumentParser()
    parser.add_argument("--transport", choices=sorted(TRANSPORTS),
                        default="multiprocess")
    TRANSPORT = parser.parse_args().transport
    print(f"transport: {TRANSPORT}")
    rows = []

    # 1. Sustained open-loop traffic: zero drops, sane p99.
    system, server = make_server(16, 0.002)
    with server:
        open_result = run_load(server, system.input_shape,
                               LoadgenConfig(num_requests=OPEN_REQUESTS,
                                             mode="open", offered_rps=300.0))
    rows.append({"scenario": "open loop", **open_result.row()})
    assert open_result.completed == OPEN_REQUESTS, open_result
    assert open_result.dropped == 0 and open_result.errors == 0, open_result
    assert open_result.p99_s < P99_CEILING_S, \
        f"p99 {open_result.p99_s:.3f}s exceeds {P99_CEILING_S}s"

    # 2. Dynamic batching strictly beats batch=1 dispatch.
    throughput = {}
    for label, max_batch, max_wait in (("batch=1", 1, 0.0),
                                       ("dynamic", 16, 0.005)):
        system, server = make_server(max_batch, max_wait)
        with server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=CLOSED_REQUESTS,
                                            mode="closed", concurrency=8))
        rows.append({"scenario": f"closed {label}", **result.row()})
        assert result.errors == 0 and result.dropped == 0, result
        throughput[label] = result.achieved_rps
    assert throughput["dynamic"] > throughput["batch=1"], \
        f"dynamic batching must win: {throughput}"

    # 3. Mid-run worker kill: degraded, never dropped.
    system, server = make_server(16, 0.002)
    with server:
        threading.Timer(0.15, server.cluster.kill_worker,
                        (system.specs[0].worker_id,)).start()
        kill_result = run_load(server, system.input_shape,
                               LoadgenConfig(num_requests=OPEN_REQUESTS,
                                             mode="open", offered_rps=300.0))
        report = server.stats()
    rows.append({"scenario": "worker kill", **kill_result.row()})
    assert kill_result.completed == OPEN_REQUESTS, kill_result
    assert kill_result.dropped == 0 and kill_result.errors == 0, kill_result
    assert report.degraded_requests > 0, "kill landed after the run ended"
    assert sum(1 for s in report.worker_health.values() if s != "up") == 1

    print(format_table(rows))
    speedup = throughput["dynamic"] / throughput["batch=1"]
    print(f"\nbatching speedup: {speedup:.2f}x | "
          f"degraded requests through kill: {report.degraded_requests} "
          f"(0 failed)\nserving smoke OK")


if __name__ == "__main__":
    main()
