"""CI smoke test for the artifact store (the `store-smoke` job).

End-to-end model lifecycle: a cold boot of a trained plan populates the
store; a warm boot of the same plan checkpoint-loads instead of
retraining — asserted to perform *no training*, to reproduce the cold
fused accuracy exactly, and to be strictly faster than the cold rebuild.
A corrupted artifact is rejected on load (digest mismatch), and a rolling
`swap_worker` deployment under Poisson load completes with zero dropped
requests.  Finally the LRU gc bounds the store.

Run:  PYTHONPATH=src python benchmarks/store_smoke.py
"""

import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.planning import DeploymentPlan, PlannedSystem, plan_demo_system
from repro.serving import LoadgenConfig, run_load
from repro.store import ArtifactCorrupt, ArtifactStore


def check(name: str, condition: bool, detail: str = "") -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {name}" + (f" ({detail})" if detail else ""))
    if not condition:
        raise SystemExit(f"store smoke failed: {name} {detail}")


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="store-smoke-"))
    store = ArtifactStore(tmp / "artifacts")

    print("== cold boot populates the store ==")
    t0 = time.perf_counter()
    cold = plan_demo_system(num_workers=2, seed=0, train_fusion=True,
                            fusion_epochs=8, store=store)
    print(f"  planned+trained in {time.perf_counter() - t0:.2f}s")
    check("cold boot is cold", not cold.warm_booted)
    check("store holds one artifact per module",
          len(store) == len(cold.plan.submodels) + 1, f"{len(store)}")
    check("plan records artifact refs",
          set(cold.plan.artifacts) >= set(cold.plan.model_ids),
          str(cold.plan.artifacts))

    plan_path = cold.plan.save(tmp / "plan.json")
    plan = DeploymentPlan.load(plan_path)
    dataset = cold.eval_dataset()
    x = dataset.x_test.astype(np.float32)
    y = np.asarray(dataset.y_test)
    healthy = cold.local_accuracy(x, y)

    print("== warm boot: no training, exact accuracy, strictly faster ==")
    t0 = time.perf_counter()
    rebuilt_cold = PlannedSystem.from_plan(
        DeploymentPlan.load(plan_path),
        store=ArtifactStore(tmp / "artifacts-cold"))
    t_cold = time.perf_counter() - t0

    # Any training attempt during the warm boot must explode.
    import repro.planning.execute as execute_mod

    def forbidden(*args, **kwargs):
        raise AssertionError("warm boot invoked training")

    original = execute_mod.train_demo_system
    execute_mod.train_demo_system = forbidden
    try:
        t0 = time.perf_counter()
        warm = PlannedSystem.from_plan(plan, store=store)
        t_warm = time.perf_counter() - t0
    finally:
        execute_mod.train_demo_system = original
    print(f"  cold rebuild {t_cold:.2f}s vs warm boot {t_warm:.3f}s "
          f"({t_cold / max(t_warm, 1e-9):.0f}x)")
    check("warm boot flagged", warm.warm_booted)
    check("cold rebuild is cold", not rebuilt_cold.warm_booted)
    check("warm boot strictly faster than cold rebuild", t_warm < t_cold,
          f"warm={t_warm:.3f}s cold={t_cold:.3f}s")
    check("warm accuracy matches cold exactly",
          warm.local_accuracy(x, y) == healthy,
          f"{warm.local_accuracy(x, y)} vs {healthy}")
    check("cold rebuild matches too",
          rebuilt_cold.local_accuracy(x, y) == healthy)

    print("== corrupted artifact is rejected ==")
    victim = store.object_path(plan.artifacts[plan.model_ids[0]])
    raw = bytearray(victim.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    victim.write_bytes(bytes(raw))
    try:
        PlannedSystem.from_plan(DeploymentPlan.load(plan_path), store=store)
        corrupted_rejected = False
    except ArtifactCorrupt:
        corrupted_rejected = True
    check("digest mismatch raises ArtifactCorrupt", corrupted_rejected)
    # Operator workflow: drop the corrupt artifact; the next (cold) boot
    # repopulates it from the deterministic rebuild.
    store.remove(plan.artifacts[plan.model_ids[0]])
    healed = PlannedSystem.from_plan(DeploymentPlan.load(plan_path),
                                     store=store)
    check("corrupt artifact healed by cold rebuild",
          not healed.warm_booted and store.verify(
              plan.artifacts[plan.model_ids[0]]) is not None)

    print("== rolling swap under load: zero drops ==")
    system = PlannedSystem.from_plan(DeploymentPlan.load(plan_path),
                                     store=store)
    check("swap system warm boots", system.warm_booted)
    victim_id = system.plan.model_ids[0]
    swap_result: dict = {}
    with system.make_server() as server:
        def do_swap() -> None:
            try:
                swap_result["worker"] = system.swap_from_store(
                    server, victim_id, store)
            except Exception as exc:   # pragma: no cover - failure path
                swap_result["error"] = f"{type(exc).__name__}: {exc}"

        timer = threading.Timer(0.1, do_swap)
        timer.start()
        result = run_load(server, system.input_shape,
                          LoadgenConfig(num_requests=300, mode="open",
                                        offered_rps=400.0, seed=0))
        timer.cancel()
        timer.join(timeout=60)
        recovered = float((server.infer(x, timeout=60.0) == y).mean())
        report = server.stats()
        hosting = server.hosting()
    check("swap completed", swap_result.get("worker") ==
          f"{victim_id}@swap1", str(swap_result))
    check("slot re-hosted on the replacement",
          hosting[victim_id] == f"{victim_id}@swap1", str(hosting))
    check("zero failed requests", report.failed == 0, str(report.failed))
    check("zero dropped requests",
          result.dropped == 0 and result.errors == 0,
          f"dropped={result.dropped} errors={result.errors}")
    check("old worker retired",
          server.worker_health().get(victim_id) == "retired by rolling swap")
    check("post-swap accuracy is healthy", recovered == healthy,
          f"{recovered} vs {healthy}")

    print("== LRU gc bounds the store ==")
    before = len(store)
    evicted = store.gc(max_artifacts=2)
    check("gc evicts down to the bound",
          len(store) == 2 and len(evicted) == before - 2,
          f"{before} -> {len(store)}")
    print("store smoke: all checks passed")


if __name__ == "__main__":
    main()
