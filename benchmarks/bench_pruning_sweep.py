"""Pruning-ratio sweeps (supporting analysis for Fig. 2 / Section IV-C).

1. Head-count sweep: size/FLOPs of a ViT-Base sub-model as ``hp`` grows —
   the quadratic size collapse that drives the paper's 34x reduction.
2. Accuracy-vs-hp on a trained model: how hard each pruning level hits
   subset accuracy before/after retraining.
3. Token pruning (the orthogonal extension): accuracy and FLOPs at
   inference-time token keep ratios, composed with structural pruning.
"""

from benchmarks.conftest import print_table
from repro import nn
from repro.core.training import evaluate
from repro.models.vit import vit_base_config
from repro.profiling import paper_flops, size_mb, token_pruned_flops, vit_param_count
from repro.pruning.pipeline import PruneConfig, prune_submodel
from repro.splitting.schedule import submodel_config


def test_head_sweep_analytic(benchmark):
    base = vit_base_config(num_classes=10)

    def run():
        rows = []
        for hp in range(0, 12, 2):
            cfg = submodel_config(base, hp, 10)
            rows.append({
                "hp": hp,
                "kept_heads": 12 - hp,
                "embed_dim": cfg.embed_dim,
                "size_mb": size_mb(vit_param_count(cfg)),
                "gmacs": paper_flops(cfg) / 1e9,
            })
        return rows

    rows = benchmark(run)
    print_table("Head-pruning sweep: ViT-Base sub-model footprint", rows)
    sizes = [r["size_mb"] for r in rows]
    assert sizes == sorted(sizes, reverse=True)
    # Quadratic collapse: hp=10 leaves < 4% of the original size.
    assert rows[-1]["size_mb"] / rows[0]["size_mb"] < 0.04


def test_accuracy_vs_pruning_level(benchmark, trained_vit, bench_dataset):
    def run():
        rows = []
        classes = list(range(5))
        subset = bench_dataset.subset_of_classes(classes)
        for hp in (0, 1, 2, 3):
            cfg = PruneConfig(probe_size=12, head_adapt_epochs=2,
                              stage_finetune_epochs=0, retrain_epochs=3,
                              backend="magnitude", seed=0)
            sub = prune_submodel(trained_vit, bench_dataset, classes, hp,
                                 config=cfg)
            rows.append({
                "hp": hp,
                "params": sub.model.num_parameters(),
                "subset_acc": evaluate(sub.model, subset.x_test,
                                       subset.y_test),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Accuracy vs pruning level (trained, classes 0-4)", rows)
    params = [r["params"] for r in rows]
    assert params == sorted(params, reverse=True)
    assert all(r["subset_acc"] > 0.2 for r in rows)


def test_token_pruning_tradeoff(benchmark, trained_vit, bench_dataset):
    """Inference-time token pruning composes with structural pruning."""

    def run():
        rows = []
        x = bench_dataset.x_test
        for ratio in (1.0, 0.5, 0.25):
            with nn.no_grad():
                logits = trained_vit(nn.Tensor(x), token_keep_ratio=ratio)
            acc = float((logits.data.argmax(-1) == bench_dataset.y_test).mean())
            rows.append({
                "keep_ratio": ratio,
                "accuracy": acc,
                "gmacs_vit_base_equiv": token_pruned_flops(
                    vit_base_config(num_classes=10), ratio) / 1e9,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Token-pruning tradeoff (trained tiny ViT + ViT-Base FLOPs)",
                rows)
    flops = [r["gmacs_vit_base_equiv"] for r in rows]
    assert flops == sorted(flops, reverse=True)
    # Full-token accuracy should be best or tied.
    assert rows[0]["accuracy"] >= max(r["accuracy"] for r in rows) - 0.05
