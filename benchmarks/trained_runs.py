"""Shared builders for the trained benchmarks (Tables III/IV, Figs. 4/5/7).

All three systems (ED-ViT, Split-CNN, Split-SNN) are built under identical
protocols: same class partitions, same fusion machinery, sub-models pruned
to comparable keep ratios.  Paper scale is 5 trials over N in {1,2,3,5,10};
reproduction scale defaults to fewer trials and a subset of N to keep the
bench wall-clock reasonable — pass wider lists to go deeper.
"""

from __future__ import annotations

from repro.baselines import (
    SplitCNNConfig,
    SplitSNNConfig,
    build_split_cnn,
    build_split_snn,
)
from repro.core.edvit import EDViTConfig, build_edvit
from repro.edge.device import make_fleet
from repro.pruning.pipeline import PruneConfig

MB = 2 ** 20

BENCH_DEVICE_COUNTS = (1, 2, 5)
BENCH_TRIALS = 2


def edvit_prune_config(seed: int) -> PruneConfig:
    return PruneConfig(probe_size=12, head_adapt_epochs=2,
                       stage_finetune_epochs=1, retrain_epochs=3,
                       backend="kl", seed=seed)


def build_edvit_system(trained_vit, dataset, n: int, seed: int = 0,
                       budget_mb: float = 64.0):
    fleet = [d.to_spec() for d in make_fleet(n)]
    return build_edvit(
        trained_vit, dataset, fleet,
        EDViTConfig(num_devices=n, memory_budget_bytes=int(budget_mb * MB),
                    prune=edvit_prune_config(seed), fusion_epochs=12,
                    fusion_lr=3e-3, seed=seed))


def build_cnn_system(trained_vgg, dataset, n: int, seed: int = 0,
                     keep_ratio: float = 0.5):
    return build_split_cnn(
        trained_vgg, dataset,
        SplitCNNConfig(num_devices=n, keep_ratio=keep_ratio, adapt_epochs=2,
                       finetune_epochs=3, fusion_epochs=12, seed=seed))


def build_snn_system(trained_snn, dataset, n: int, seed: int = 0,
                     keep_ratio: float = 0.5):
    return build_split_snn(
        trained_snn, dataset,
        SplitSNNConfig(num_devices=n, keep_ratio=keep_ratio, adapt_epochs=2,
                       finetune_epochs=3, fusion_epochs=12, seed=seed))


def accuracy_over_trials(builder, dataset, n: int, trials: int) -> list[float]:
    return [builder(n=n, seed=trial).accuracy(dataset)
            for trial in range(trials)]
