"""Table II — per-sub-model FLOPs vs number of edge devices (ViT-Base).

Paper values (GMACs):

    Dataset   Original  N=2   N=3   N=5    N=10
    CIFAR-10  16.86     4.25  1.90  1.08   0.48
    GTZAN     16.79     4.20  1.88  1.059  0.46
"""

from benchmarks.conftest import print_table
from repro.core.experiments import table2_rows


def test_table2_paper_schedule(benchmark):
    rows = benchmark(table2_rows, schedule_mode="paper")
    print_table("Table II: sub-model FLOPs (paper head schedule)", rows)
    cifar = next(r for r in rows if r["Dataset"] == "CIFAR-10")
    gtzan = next(r for r in rows if r["Dataset"] == "GTZAN")
    # Monotone decrease and the exact N=2 == ViT-Small anchor.
    assert cifar["N=2 (G)"] > cifar["N=3 (G)"] > cifar["N=5 (G)"] > cifar["N=10 (G)"]
    assert abs(cifar["N=2 (G)"] - 4.25) < 0.05
    # GTZAN only differs in the patch embedding.
    assert gtzan["Original (G)"] < cifar["Original (G)"]


def test_table2_algorithm1_schedule(benchmark):
    """The same table under our faithful Algorithm-1 loop (the paper's own
    loop converges to slightly milder pruning at N=3/5; see EXPERIMENTS.md)."""
    rows = benchmark(table2_rows, schedule_mode="algorithm1")
    print_table("Table II variant: Algorithm-1 head schedule", rows)
    cifar = next(r for r in rows if r["Dataset"] == "CIFAR-10")
    assert cifar["N=2 (G)"] >= cifar["N=3 (G)"] >= cifar["N=10 (G)"]
