"""Table IV — the retraining ablation for ED-ViT on CIFAR-10.

Paper values (%):

    Variant              N=1    N=2    N=3    N=5    N=10
    ED-ViT (fusion MLP)  89.11  86.18  86.97  86.94  85.59
    (w/o) retrain        88.25  86.00  86.08  85.33  84.20
    (w/) entire retrain  89.11  92.33  91.14  89.97  90.26

Expected shape: fusion MLP >= softmax averaging; joint end-to-end retrain
recovers additional accuracy for N >= 2.
"""

from benchmarks.conftest import print_table
from benchmarks.trained_runs import BENCH_DEVICE_COUNTS, build_edvit_system
from repro.splitting.fusion import entire_retrain, fused_accuracy


def _table(trained_vit, dataset):
    rows = {"ED-ViT": {"Variant": "ED-ViT (fusion MLP)"},
            "wo": {"Variant": "(w/o) retrain"},
            "entire": {"Variant": "(w/) entire retrain"}}
    for n in BENCH_DEVICE_COUNTS:
        system = build_edvit_system(trained_vit, dataset, n, seed=0)
        col = f"N={n}"
        rows["ED-ViT"][col] = system.accuracy(dataset)
        rows["wo"][col] = system.softmax_average_accuracy(dataset)
        entire_retrain(system.submodels, system.fusion, dataset, epochs=2,
                       batch_size=32)
        rows["entire"][col] = fused_accuracy(system.submodels, system.fusion,
                                             dataset)
    return list(rows.values())


def test_table4_retraining_ablation(benchmark, trained_vit, bench_dataset):
    rows = benchmark.pedantic(_table, args=(trained_vit, bench_dataset),
                              rounds=1, iterations=1)
    print_table("Table IV: retraining ablation (accuracy)", rows)
    edvit, wo, entire = rows
    multi_device_cols = [f"N={n}" for n in BENCH_DEVICE_COUNTS if n > 1]
    # Entire retrain should match or beat the frozen pipeline on average.
    avg_entire = sum(entire[c] for c in multi_device_cols) / len(multi_device_cols)
    avg_edvit = sum(edvit[c] for c in multi_device_cols) / len(multi_device_cols)
    assert avg_entire >= avg_edvit - 0.05
