"""Ablations of the design choices DESIGN.md calls out.

1. KL-divergence vs magnitude importance for structured pruning;
2. greedy (Algorithm 3) vs optimal assignment — optimality gap;
3. balanced vs skewed class partitions;
4. fusion MLP shrink factor (lambda) sweep.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.assignment import (
    DeviceSpec,
    SubModelSpec,
    greedy_assign,
    optimal_assign,
)
from repro.core.edvit import EDViTConfig, build_edvit
from repro.core.training import evaluate
from repro.edge.device import make_fleet
from repro.pruning.pipeline import PruneConfig, prune_submodel
from repro.splitting.class_assignment import (
    balanced_class_partition,
    unbalanced_class_partition,
)

MB = 2 ** 20


def test_ablation_kl_vs_magnitude(benchmark, trained_vit, bench_dataset):
    """KL-guided pruning should match or beat magnitude pruning."""

    def run():
        rows = []
        for backend in ("kl", "magnitude"):
            cfg = PruneConfig(probe_size=16, head_adapt_epochs=2,
                              stage_finetune_epochs=1, retrain_epochs=3,
                              backend=backend, seed=0)
            sub = prune_submodel(trained_vit, bench_dataset,
                                 list(range(5)), hp=2, config=cfg)
            subset = bench_dataset.subset_of_classes(list(range(5)))
            rows.append({"backend": backend,
                         "subset_accuracy": evaluate(sub.model, subset.x_test,
                                                     subset.y_test)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: pruning importance backend", rows)
    assert all(r["subset_accuracy"] > 0.2 for r in rows)


def test_ablation_greedy_vs_optimal_gap(benchmark):
    """Quantify Algorithm 3's optimality gap on heterogeneous fleets."""

    def run():
        rng = np.random.default_rng(42)
        gaps = []
        for _ in range(20):
            devices = [DeviceSpec(f"d{i}", memory_bytes=200,
                                  energy_flops=float(rng.integers(80, 200)))
                       for i in range(4)]
            models = [SubModelSpec(f"m{j}", size_bytes=20,
                                   flops_per_sample=float(rng.integers(10, 60)))
                      for j in range(5)]
            try:
                greedy = greedy_assign(devices, models, 1).objective
                optimal = optimal_assign(devices, models, 1).objective
            except Exception:
                continue
            gaps.append((optimal - greedy) / max(optimal, 1e-9))
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ngreedy-vs-optimal objective gap: mean={np.mean(gaps):.3f} "
          f"max={np.max(gaps):.3f} over {len(gaps)} instances")
    assert np.mean(gaps) < 0.3


def test_ablation_balanced_vs_skewed_partition(benchmark, trained_vit,
                                               bench_dataset):
    """The |Ca|-|Cb|<=1 constraint: balanced partitions should not lose to
    heavily skewed ones (and usually win, since no sub-model is starved)."""

    def run():
        fleet = [d.to_spec() for d in make_fleet(3)]
        results = {}
        for name, groups in [
                ("balanced", balanced_class_partition(
                    10, 3, np.random.default_rng(0))),
                ("skewed", unbalanced_class_partition(
                    10, 3, skew=3.0, rng=np.random.default_rng(0)))]:
            # Rebuild ED-ViT but with an injected partition.
            from repro.splitting.schedule import plan_head_schedule
            from repro.pruning.pipeline import prune_submodel
            from repro.splitting.fusion import fused_accuracy, train_fusion_mlp

            schedule = plan_head_schedule(trained_vit.config, groups, fleet,
                                          memory_budget_bytes=64 * MB,
                                          num_samples=1)
            cfg = PruneConfig(probe_size=12, head_adapt_epochs=2,
                              stage_finetune_epochs=0, retrain_epochs=3,
                              backend="magnitude", seed=0)
            subs = [prune_submodel(trained_vit, bench_dataset, classes, hp,
                                   config=cfg)
                    for classes, hp in zip(groups, schedule.hps)]
            fusion = train_fusion_mlp(subs, bench_dataset, epochs=12, lr=3e-3,
                                      seed=0)
            results[name] = fused_accuracy(subs, fusion, bench_dataset)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\npartition ablation: {results}")
    assert results["balanced"] > results["skewed"] - 0.15


def test_ablation_fusion_shrink_sweep(benchmark, trained_vit, bench_dataset):
    """Sweep the tower-MLP shrink factor lambda around the paper's 0.5."""

    def run():
        rows = []
        for shrink in (0.25, 0.5, 1.0):
            fleet = [d.to_spec() for d in make_fleet(2)]
            system = build_edvit(
                trained_vit, bench_dataset, fleet,
                EDViTConfig(num_devices=2, memory_budget_bytes=64 * MB,
                            prune=PruneConfig(probe_size=12,
                                              head_adapt_epochs=2,
                                              stage_finetune_epochs=0,
                                              retrain_epochs=3,
                                              backend="magnitude", seed=0),
                            fusion_epochs=12, fusion_lr=3e-3,
                            fusion_shrink=shrink, seed=0))
            rows.append({"lambda": shrink,
                         "accuracy": system.accuracy(bench_dataset),
                         "fusion_hidden": system.fusion.config.hidden_dim})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: fusion MLP shrink factor", rows)
    assert all(r["accuracy"] > 0.15 for r in rows)
