"""Transport + wire-codec CI smoke.

Run directly (CI does)::

    PYTHONPATH=src python benchmarks/transport_smoke.py

Pins the PR-4 acceptance bar end to end:

1. **TCP loopback** — a fleet whose workers dial back over real TCP
   sockets serves a closed-loop run with zero errors and byte-exact
   feature parity with the in-process reference models;
2. **q8 beats raw32 on the paper's 2 Mbps link** — on a tc-capped fleet
   with real (``time_scale=1``) emulated sleeps, the ``q8`` codec must
   report strictly fewer wire bytes *and* a strictly lower served p95
   than ``raw32``: fewer encoded bytes are directly less transfer time;
3. **accuracy holds** — on a trained demo system, fused accuracy under
   ``q8`` (and ``f16``) stays within 0.01 of ``raw32``;
4. **plans carry codecs** — a ``DeploymentPlan`` JSON round trip
   preserves the codec and boots a serving stack with that codec active.

Exits non-zero on any violation, so CI fails loudly.
"""

import numpy as np

from repro.core.metrics import format_table
from repro.edge.device import DeviceModel
from repro.edge.network import tc_capped_link
from repro.edge.runtime import EdgeCluster, WorkerSpec
from repro.models.fusion import build_fusion_for
from repro.models.vit import ViTConfig, VisionTransformer
from repro.serving import (
    BatchingConfig,
    InferenceServer,
    LoadgenConfig,
    ServerConfig,
    build_demo_system,
    run_load,
)
from repro.serving.demo import fused_labels

ACCURACY_DROP_BOUND = 0.01
CLOSED_REQUESTS = 120


def tcp_loopback_end_to_end() -> dict:
    system = build_demo_system(num_workers=2, transport="tcp")
    x = np.random.default_rng(0).normal(
        size=(4, *system.input_shape)).astype(np.float32)
    with system.make_cluster() as cluster:
        features, _ = cluster.infer_features(x)
        from repro.core.inference import extract_features
        for spec, model in zip(system.specs, system.models):
            np.testing.assert_allclose(features[spec.worker_id],
                                       extract_features(model, x), atol=1e-5)
    server = InferenceServer(system.make_cluster(), system.fusion)
    with server:
        result = run_load(server, system.input_shape,
                          LoadgenConfig(num_requests=CLOSED_REQUESTS,
                                        mode="closed", concurrency=8))
    assert result.errors == 0 and result.dropped == 0, result
    assert result.completed == CLOSED_REQUESTS, result
    return {"scenario": "tcp loopback", **result.row()}


def _wide_fleet(codec: str):
    """2 workers with 64-wide features behind the paper's 2 Mbps cap.

    ``time_scale=1`` makes the emulated transfer sleeps real, so codec
    byte savings must show up as measured latency.
    """
    models = [VisionTransformer(
        ViTConfig(image_size=8, patch_size=4, num_classes=10, depth=1,
                  embed_dim=64, num_heads=2),
        rng=np.random.default_rng(seed))
        for seed in range(2)]
    specs = [WorkerSpec.from_model(
        f"w{i}", model, "vit", flops_per_sample=1e6,
        device=DeviceModel(device_id=f"w{i}", macs_per_second=1e12),
        link=tc_capped_link(), codec=codec)
        for i, model in enumerate(models)]
    fusion = build_fusion_for([m.feature_dim() for m in models],
                              num_classes=10,
                              rng=np.random.default_rng(1000))
    return specs, fusion


def codec_latency_on_capped_link() -> tuple[list[dict], dict, dict]:
    results = {}
    rows = []
    for codec in ("raw32", "q8"):
        specs, fusion = _wide_fleet(codec)
        cluster = EdgeCluster(specs, time_scale=1.0, transport="inprocess")
        server = InferenceServer(
            cluster, fusion,
            ServerConfig(batching=BatchingConfig(max_batch_samples=16,
                                                 max_wait_s=0.002)))
        with server:
            result = run_load(server, (3, 8, 8),
                              LoadgenConfig(num_requests=CLOSED_REQUESTS,
                                            mode="closed", concurrency=8))
            report = server.stats()
        assert result.errors == 0 and result.dropped == 0, (codec, result)
        results[codec] = {"p95_s": result.p95_s,
                          "wire_in": report.wire_bytes_in}
        rows.append({"scenario": f"2 Mbps {codec}", **result.row()})
    return rows, results["raw32"], results["q8"]


def trained_accuracy_within_bound() -> dict:
    system = build_demo_system(num_workers=2, train_fusion=True)
    from repro.data import cifar10_like
    dataset = cifar10_like(image_size=8, train_per_class=48,
                           test_per_class=16, noise_std=0.3, seed=0)
    accuracy = {}
    for codec in ("raw32", "f16", "q8"):
        labels = fused_labels(system.models, system.fusion, dataset.x_test,
                              codec=codec)
        accuracy[codec] = float((labels == dataset.y_test).mean())
    for codec in ("f16", "q8"):
        drop = accuracy["raw32"] - accuracy[codec]
        assert drop <= ACCURACY_DROP_BOUND, \
            f"{codec} fused-accuracy drop {drop:.4f} exceeds " \
            f"{ACCURACY_DROP_BOUND} (accuracies: {accuracy})"
    return accuracy


def plan_codec_round_trip() -> dict:
    from repro.planning import DeploymentPlan, PlannedSystem, plan_demo_system

    planned = plan_demo_system(num_workers=2, codec="q8")
    rebuilt_plan = DeploymentPlan.from_json(planned.plan.to_json())
    assert rebuilt_plan.codec == "q8"
    assert rebuilt_plan.to_dict() == planned.plan.to_dict()
    system = PlannedSystem.from_plan(rebuilt_plan, transport="inprocess")
    server = system.make_server()
    x = np.random.default_rng(1).normal(
        size=(8, *system.input_shape)).astype(np.float32)
    with server:
        labels = server.infer(x)
        report = server.stats()
    assert all(s.codec == "q8" for s in system.make_cluster().specs)
    assert (labels == system.local_fused_labels(x)).all()
    # 8 samples x 8 features x (1 B + 8 B/row header) x 2 workers.
    assert report.wire_bytes_in == 2 * 8 * (8 + 8), report.wire_bytes_in
    return {"scenario": "plan q8 boot", "wire_in_b": report.wire_bytes_in}


def main() -> None:
    rows = [tcp_loopback_end_to_end()]

    capped_rows, raw32, q8 = codec_latency_on_capped_link()
    rows.extend(capped_rows)
    assert q8["wire_in"] < raw32["wire_in"], \
        f"q8 must ship fewer bytes than raw32: {q8} vs {raw32}"
    assert q8["p95_s"] < raw32["p95_s"], \
        f"q8 must serve faster than raw32 on a 2 Mbps link: {q8} vs {raw32}"

    accuracy = trained_accuracy_within_bound()
    plan_row = plan_codec_round_trip()

    print(format_table(rows))
    print(f"\nwire bytes raw32 {raw32['wire_in']} -> q8 {q8['wire_in']} "
          f"({raw32['wire_in'] / q8['wire_in']:.2f}x smaller), "
          f"p95 {raw32['p95_s'] * 1e3:.1f} ms -> {q8['p95_s'] * 1e3:.1f} ms")
    print("fused accuracy:",
          {k: round(v, 4) for k, v in accuracy.items()},
          f"| {plan_row}")
    print("transport/codec smoke OK")


if __name__ == "__main__":
    main()
