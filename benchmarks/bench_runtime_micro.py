"""Micro-benchmarks of the substrate itself: autograd throughput, pruning
surgery cost, simulator event rate, and process-emulation round trips.

These are engineering benchmarks (no paper counterpart): they track the
reproduction's own performance so regressions in the numpy framework or
the DES kernel are visible.
"""

import numpy as np

from repro import nn
from repro.edge.device import DeviceModel
from repro.edge.network import LinkModel
from repro.edge.runtime import EdgeCluster, WorkerSpec
from repro.edge.simulator import DeploymentSpec, SubModelProfile, simulate_inference
from repro.models.vit import ViTConfig, VisionTransformer
from repro.pruning.surgery import prune_residual_channels


def small_vit():
    cfg = ViTConfig(image_size=16, patch_size=4, num_classes=10, depth=2,
                    embed_dim=32, num_heads=4)
    return VisionTransformer(cfg, rng=np.random.default_rng(0))


def test_vit_forward_throughput(benchmark):
    model = small_vit()
    model.eval()
    x = nn.Tensor(np.random.default_rng(0).normal(
        size=(8, 3, 16, 16)).astype(np.float32))

    def forward():
        with nn.no_grad():
            return model(x)

    out = benchmark(forward)
    assert out.shape == (8, 10)


def test_vit_train_step_throughput(benchmark):
    model = small_vit()
    opt = nn.Adam(model.parameters(), lr=1e-3)
    x = nn.Tensor(np.random.default_rng(0).normal(
        size=(8, 3, 16, 16)).astype(np.float32))
    y = np.arange(8) % 10

    def step():
        loss = nn.cross_entropy(model(x), y)
        opt.zero_grad()
        loss.backward()
        opt.step()
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss.item())


def test_pruning_surgery_cost(benchmark):
    model = small_vit()
    keep = np.arange(16)
    pruned = benchmark(prune_residual_channels, model, keep)
    assert pruned.config.embed_dim == 16


def test_simulator_event_rate(benchmark):
    devices = [DeviceModel(f"d{i}", macs_per_second=1e9) for i in range(10)]
    profiles = {f"m{i}": SubModelProfile(f"m{i}", 1e8, 64) for i in range(10)}
    placement = {f"m{i}": f"d{i}" for i in range(10)}
    spec = DeploymentSpec(devices=devices, placement=placement,
                          profiles=profiles,
                          fusion_device=DeviceModel("f", macs_per_second=1e9),
                          fusion_flops=1e5)
    result = benchmark(simulate_inference, spec, 20)
    assert len(result.latencies) == 20


def test_edge_cluster_roundtrip(benchmark):
    cfg = ViTConfig(image_size=8, patch_size=4, num_classes=3, depth=1,
                    embed_dim=8, num_heads=2)
    model = VisionTransformer(cfg, rng=np.random.default_rng(0))
    spec = WorkerSpec.from_vit(
        "w0", model, flops_per_sample=1e6,
        device=DeviceModel("w0", macs_per_second=1e12),
        link=LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0))
    x = np.zeros((1, 3, 8, 8), dtype=np.float32)
    with EdgeCluster([spec], time_scale=0.0) as cluster:
        features, _ = benchmark(cluster.infer_features, x)
    assert "w0" in features
