"""Micro-benchmarks of the substrate itself: autograd throughput, the
graph-free inference engine, pruning surgery cost, simulator event rate,
and process-emulation round trips.

These are engineering benchmarks (no paper counterpart): they track the
reproduction's own performance so regressions in the numpy framework or
the DES kernel are visible.

Run as a script for the CI perf-smoke job::

    PYTHONPATH=src python benchmarks/bench_runtime_micro.py --smoke

which prints the seed-style graph-building ViT-Base forward latency next
to the current ``no_grad``/``inference_mode`` fast-path latency and fails
(exit 1) if the fast path drops below the 2x acceptance bar or diverges
numerically from the autograd path.
"""

import numpy as np
import pytest

from repro import nn
from repro.edge.device import DeviceModel
from repro.edge.network import LinkModel
from repro.edge.runtime import EdgeCluster, WorkerSpec
from repro.edge.simulator import DeploymentSpec, SubModelProfile, simulate_inference
from repro.models.vit import ViTConfig, VisionTransformer, vit_base_config
from repro.nn.backend import available_backends, use_backend
from repro.pruning.surgery import prune_residual_channels


def small_vit():
    cfg = ViTConfig(image_size=16, patch_size=4, num_classes=10, depth=2,
                    embed_dim=32, num_heads=4)
    return VisionTransformer(cfg, rng=np.random.default_rng(0))


@pytest.mark.parametrize("backend", available_backends())
def test_vit_forward_throughput(benchmark, backend):
    model = small_vit()
    model.eval()
    x = nn.Tensor(np.random.default_rng(0).normal(
        size=(8, 3, 16, 16)).astype(np.float32))

    def forward():
        with use_backend(backend), nn.no_grad():
            return model(x)

    out = benchmark(forward)
    assert out.shape == (8, 10)


@pytest.mark.parametrize("backend", available_backends())
def test_vit_inference_mode_throughput(benchmark, backend):
    """The workspace-cached fast path (the serving configuration), timed
    once per registered compute backend."""
    model = small_vit()
    model.eval()
    x = nn.Tensor(np.random.default_rng(0).normal(
        size=(8, 3, 16, 16)).astype(np.float32))

    def forward():
        with use_backend(backend), nn.inference_mode():
            return model(x)

    out = benchmark(forward)
    assert out.shape == (8, 10)


def test_vit_graph_forward_throughput(benchmark):
    """The graph-building forward the fast path is measured against."""
    model = small_vit()
    model.eval()
    x = nn.Tensor(np.random.default_rng(0).normal(
        size=(8, 3, 16, 16)).astype(np.float32))
    out = benchmark(lambda: model(x))
    assert out.shape == (8, 10)


def test_vit_train_step_throughput(benchmark):
    model = small_vit()
    opt = nn.Adam(model.parameters(), lr=1e-3)
    x = nn.Tensor(np.random.default_rng(0).normal(
        size=(8, 3, 16, 16)).astype(np.float32))
    y = np.arange(8) % 10

    def step():
        loss = nn.cross_entropy(model(x), y)
        opt.zero_grad()
        loss.backward()
        opt.step()
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss.item())


def test_pruning_surgery_cost(benchmark):
    model = small_vit()
    keep = np.arange(16)
    pruned = benchmark(prune_residual_channels, model, keep)
    assert pruned.config.embed_dim == 16


def test_simulator_event_rate(benchmark):
    devices = [DeviceModel(f"d{i}", macs_per_second=1e9) for i in range(10)]
    profiles = {f"m{i}": SubModelProfile(f"m{i}", 1e8, 64) for i in range(10)}
    placement = {f"m{i}": f"d{i}" for i in range(10)}
    spec = DeploymentSpec(devices=devices, placement=placement,
                          profiles=profiles,
                          fusion_device=DeviceModel("f", macs_per_second=1e9),
                          fusion_flops=1e5)
    result = benchmark(simulate_inference, spec, 20)
    assert len(result.latencies) == 20


def test_edge_cluster_roundtrip(benchmark):
    cfg = ViTConfig(image_size=8, patch_size=4, num_classes=3, depth=1,
                    embed_dim=8, num_heads=2)
    model = VisionTransformer(cfg, rng=np.random.default_rng(0))
    spec = WorkerSpec.from_vit(
        "w0", model, flops_per_sample=1e6,
        device=DeviceModel("w0", macs_per_second=1e12),
        link=LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0))
    x = np.zeros((1, 3, 8, 8), dtype=np.float32)
    with EdgeCluster([spec], time_scale=0.0) as cluster:
        features, _ = benchmark(cluster.infer_features, x)
    assert "w0" in features


# ----------------------------------------------------------------------
# CI perf smoke (script mode)
# ----------------------------------------------------------------------
def _seed_gelu(x, workspace=None):
    """The seed repo's GELU, verbatim: graph-building, with the ``x ** 3``
    float-pow hot spot the backend kernel replaced.  Replayed here so the
    smoke job measures the *seed* graph forward on today's hardware instead
    of trusting a stale recorded number."""
    import math

    from repro.nn.tensor import Tensor

    data = x.data
    inner = math.sqrt(2.0 / math.pi) * (data + 0.044715 * data ** 3)
    tanh_inner = np.tanh(inner)
    out_data = 0.5 * data * (1.0 + tanh_inner)

    def backward(grad):
        sech2 = 1.0 - tanh_inner ** 2
        d_inner = math.sqrt(2.0 / math.pi) * (1.0 + 3 * 0.044715 * data ** 2)
        local = 0.5 * (1.0 + tanh_inner) + 0.5 * data * sech2 * d_inner
        return [(x, grad * local)]

    return Tensor._make(out_data, (x,), backward)


def run_smoke(repeats: int = 5, min_speedup: float = 2.0,
              backend: str = "numpy") -> int:
    """Print seed-vs-current ViT-Base forward latency; 0 iff healthy.

    The baseline is the seed's graph-building forward (its op set replayed
    exactly — see ``_seed_gelu``); the acceptance bar is ``inference_mode``
    being ``min_speedup`` times faster than it with matching outputs.
    Each mode is timed as the **minimum over ``repeats`` single-shot
    passes** — the standard noise-robust microbenchmark estimator, so one
    slow repeat on a shared CI runner cannot flip the verdict.

    ``backend`` installs a registered compute backend for the whole
    comparison, so CI can assert the fast-path bar holds under every
    backend a fleet might select — not just the numpy reference.
    """
    nn.set_backend(backend)
    print(f"compute backend: {backend}")
    from unittest import mock

    from repro.core.inference import benchmark_forward
    from repro.nn import ops

    config = vit_base_config(num_classes=10)
    model = VisionTransformer(config, rng=np.random.default_rng(0))
    model.eval()
    x = np.random.default_rng(0).normal(size=(1, 3, 224, 224)).astype(np.float32)

    ref = model(nn.Tensor(x)).data.copy()        # graph-building forward
    with nn.inference_mode():
        fast = model(nn.Tensor(x)).data.copy()
    close = np.allclose(fast, ref, rtol=1e-5, atol=1e-5)

    def best_of(mode):
        return min(benchmark_forward(model, x, repeats=1, mode=mode)
                   for _ in range(repeats))

    with mock.patch.object(ops, "gelu", _seed_gelu):
        seed_s = best_of("graph")
    rows = {"seed graph": seed_s}
    for mode in ("graph", "no_grad", "inference"):
        rows[mode] = best_of(mode)

    print(f"ViT-Base 224x224 single-sample forward ({repeats} reps)")
    for mode, seconds in rows.items():
        print(f"  {mode:<11} {seconds * 1e3:8.1f} ms   "
              f"{seed_s / seconds:5.2f}x vs seed graph")
    print(f"  allclose(rtol=1e-5): {close}")

    speedup = seed_s / rows["inference"]
    if not close:
        print("FAIL: fast-path outputs diverged from the autograd forward")
        return 1
    if speedup < min_speedup:
        print(f"FAIL: inference_mode speedup {speedup:.2f}x < {min_speedup}x")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI perf-smoke comparison and exit")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--backend", default="numpy",
                        choices=available_backends(),
                        help="compute backend to run the smoke under")
    args = parser.parse_args()
    if not args.smoke:
        parser.error("run with --smoke (or via pytest for the full benches)")
    sys.exit(run_smoke(repeats=args.repeats, min_speedup=args.min_speedup,
                       backend=args.backend))
