"""Class-partition tests (Algorithm 1 lines 3–6)."""

import numpy as np
import pytest

from repro.splitting.class_assignment import (
    balanced_class_partition,
    unbalanced_class_partition,
    validate_partition,
)


class TestBalancedPartition:
    def test_covers_all_classes(self):
        groups = balanced_class_partition(10, 3, np.random.default_rng(0))
        assert sorted(c for g in groups for c in g) == list(range(10))

    def test_balance_invariant(self):
        for n in (1, 2, 3, 5, 10):
            groups = balanced_class_partition(10, n, np.random.default_rng(1))
            sizes = [len(g) for g in groups]
            assert max(sizes) - min(sizes) <= 1

    def test_single_group(self):
        groups = balanced_class_partition(10, 1)
        assert groups == [list(range(10))]

    def test_one_class_per_group(self):
        groups = balanced_class_partition(5, 5)
        assert all(len(g) == 1 for g in groups)

    def test_more_groups_than_classes_raises(self):
        with pytest.raises(ValueError):
            balanced_class_partition(3, 5)

    def test_zero_groups_raises(self):
        with pytest.raises(ValueError):
            balanced_class_partition(3, 0)

    def test_randomized_by_rng(self):
        a = balanced_class_partition(10, 2, np.random.default_rng(0))
        b = balanced_class_partition(10, 2, np.random.default_rng(99))
        assert a != b

    def test_deterministic_given_rng(self):
        a = balanced_class_partition(10, 2, np.random.default_rng(5))
        b = balanced_class_partition(10, 2, np.random.default_rng(5))
        assert a == b


class TestUnbalancedPartition:
    def test_covers_all_classes(self):
        groups = unbalanced_class_partition(12, 3, skew=2.0,
                                            rng=np.random.default_rng(0))
        assert sorted(c for g in groups for c in g) == list(range(12))

    def test_actually_skewed(self):
        groups = unbalanced_class_partition(16, 3, skew=3.0,
                                            rng=np.random.default_rng(0))
        sizes = sorted(len(g) for g in groups)
        assert sizes[-1] - sizes[0] >= 2

    def test_no_empty_groups(self):
        groups = unbalanced_class_partition(5, 4, skew=5.0,
                                            rng=np.random.default_rng(0))
        assert all(groups)

    def test_more_groups_than_classes_raises(self):
        with pytest.raises(ValueError):
            unbalanced_class_partition(3, 4)


class TestValidatePartition:
    def test_accepts_valid(self):
        validate_partition([[0, 1], [2]], 3)

    def test_rejects_missing_class(self):
        with pytest.raises(ValueError):
            validate_partition([[0], [1]], 3)

    def test_rejects_duplicate_class(self):
        with pytest.raises(ValueError):
            validate_partition([[0, 1], [1, 2]], 3)

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            validate_partition([[0, 1, 2], []], 3)
