"""Fusion-strategy tests: MLP fusion, softmax averaging, entire retrain."""

import numpy as np
import pytest

from repro.pruning.pipeline import PruneConfig, prune_submodel
from repro.splitting.fusion import (
    collect_features,
    entire_retrain,
    fused_accuracy,
    fused_predict,
    softmax_average_accuracy,
    softmax_average_predict,
    train_fusion_mlp,
)

FAST = PruneConfig(probe_size=8, head_adapt_epochs=1, stage_finetune_epochs=0,
                   retrain_epochs=1, backend="magnitude")


@pytest.fixture(scope="module")
def split_system(trained_tiny_vit, tiny_dataset):
    """Two sub-models covering classes 0-4 and 5-9, plus a fusion MLP."""
    subs = [
        prune_submodel(trained_tiny_vit, tiny_dataset, list(range(0, 5)),
                       hp=1, config=FAST),
        prune_submodel(trained_tiny_vit, tiny_dataset, list(range(5, 10)),
                       hp=1, config=FAST),
    ]
    fusion = train_fusion_mlp(subs, tiny_dataset, epochs=4, seed=0)
    return subs, fusion


class TestCollectFeatures:
    def test_concatenated_width(self, split_system, tiny_dataset):
        subs, _ = split_system
        feats = collect_features(subs, tiny_dataset.x_test)
        expected = sum(sm.model.feature_dim() for sm in subs)
        assert feats.shape == (len(tiny_dataset.x_test), expected)

    def test_deterministic(self, split_system, tiny_dataset):
        subs, _ = split_system
        a = collect_features(subs, tiny_dataset.x_test[:4])
        b = collect_features(subs, tiny_dataset.x_test[:4])
        np.testing.assert_array_equal(a, b)


class TestFusedPrediction:
    def test_prediction_shape_and_range(self, split_system, tiny_dataset):
        subs, fusion = split_system
        pred = fused_predict(subs, fusion, tiny_dataset.x_test)
        assert pred.shape == (len(tiny_dataset.x_test),)
        assert set(np.unique(pred)).issubset(set(range(10)))

    def test_beats_chance(self, split_system, tiny_dataset):
        subs, fusion = split_system
        assert fused_accuracy(subs, fusion, tiny_dataset) > 0.1

    def test_fusion_input_dim_matches(self, split_system):
        subs, fusion = split_system
        assert fusion.config.input_dim == sum(sm.model.feature_dim()
                                              for sm in subs)


class TestSoftmaxAveraging:
    def test_prediction_covers_full_classes(self, split_system, tiny_dataset):
        subs, _ = split_system
        pred = softmax_average_predict(subs, 10, tiny_dataset.x_test)
        assert pred.shape == (len(tiny_dataset.x_test),)
        assert pred.max() < 10

    def test_every_class_reachable(self, split_system, tiny_dataset):
        subs, _ = split_system
        # scores are filled for every global class exactly once
        scores = np.zeros((1, 10))
        covered = sorted(c for sm in subs for c in sm.classes)
        assert covered == list(range(10))

    def test_accuracy_beats_chance(self, split_system, tiny_dataset):
        subs, _ = split_system
        assert softmax_average_accuracy(subs, tiny_dataset) > 0.1


class TestEntireRetrain:
    def test_updates_submodels_and_fusion(self, trained_tiny_vit, tiny_dataset):
        subs = [prune_submodel(trained_tiny_vit, tiny_dataset, [0, 1],
                               hp=1, config=FAST),
                prune_submodel(trained_tiny_vit, tiny_dataset,
                               list(range(2, 10)), hp=1, config=FAST)]
        fusion = train_fusion_mlp(subs, tiny_dataset, epochs=2, seed=0)
        before_fusion = fusion.fc1.weight.data.copy()
        before_sub = subs[0].model.patch_embed.proj.weight.data.copy()
        entire_retrain(subs, fusion, tiny_dataset, epochs=1, batch_size=16)
        assert not np.allclose(before_fusion, fusion.fc1.weight.data)
        # Sub-model backbone parameters also move under joint training
        # (the classification head is not on the fused path, so we check
        # the patch embedding instead).
        assert not np.allclose(before_sub,
                               subs[0].model.patch_embed.proj.weight.data)

    def test_does_not_degrade_catastrophically(self, trained_tiny_vit,
                                               tiny_dataset):
        subs = [prune_submodel(trained_tiny_vit, tiny_dataset,
                               list(range(0, 5)), hp=1, config=FAST),
                prune_submodel(trained_tiny_vit, tiny_dataset,
                               list(range(5, 10)), hp=1, config=FAST)]
        fusion = train_fusion_mlp(subs, tiny_dataset, epochs=3, seed=0)
        entire_retrain(subs, fusion, tiny_dataset, epochs=1, batch_size=16)
        assert fused_accuracy(subs, fusion, tiny_dataset) > 0.1
