"""Head-schedule loop tests (Algorithm 1 lines 7–20)."""

import numpy as np
import pytest

from repro.assignment import DeviceSpec
from repro.models.vit import vit_base_config, ViTConfig
from repro.profiling import size_mb, vit_param_count
from repro.splitting.class_assignment import balanced_class_partition
from repro.splitting.schedule import (
    ScheduleInfeasible,
    footprint,
    plan_head_schedule,
    submodel_config,
)

MB = 2 ** 20


def pi_fleet(n, memory_gb=4.0, energy=1e12):
    return [DeviceSpec(device_id=f"pi-{i}",
                       memory_bytes=int(memory_gb * 2 ** 30),
                       energy_flops=energy) for i in range(n)]


class TestSubmodelConfig:
    def test_half_pruned_base_is_small_shaped(self):
        cfg = submodel_config(vit_base_config(num_classes=10), hp=6,
                              num_classes=5)
        assert cfg.embed_dim == 384
        assert cfg.resolved_mlp_hidden == 1536
        assert cfg.num_classes == 5

    def test_footprint_consistent_with_analytics(self):
        foot = footprint(vit_base_config(num_classes=10), 0, hp=10,
                         num_classes=1)
        assert foot.size_bytes == vit_param_count(foot.config) * 4
        assert foot.flops_per_sample > 0


class TestScheduleLoop:
    def base(self):
        return vit_base_config(num_classes=10)

    def groups(self, n):
        return balanced_class_partition(10, n, np.random.default_rng(0))

    def test_generous_budget_keeps_initial_hp(self):
        schedule = plan_head_schedule(self.base(), self.groups(2), pi_fleet(2),
                                      memory_budget_bytes=1000 * MB,
                                      num_samples=1)
        assert schedule.hps == [6, 6]  # default initial hp = h/2
        assert schedule.iterations == 1

    def test_paper_budget_n2(self):
        # 180 MB fits two half-pruned sub-models (2 x ~82 MB).
        schedule = plan_head_schedule(self.base(), self.groups(2), pi_fleet(2),
                                      memory_budget_bytes=180 * MB,
                                      num_samples=1)
        assert schedule.hps == [6, 6]
        assert schedule.total_size_bytes <= 180 * MB

    def test_paper_budget_n3_prunes_more(self):
        schedule = plan_head_schedule(self.base(), self.groups(3), pi_fleet(3),
                                      memory_budget_bytes=180 * MB,
                                      num_samples=1)
        assert all(hp > 6 for hp in schedule.hps)
        assert schedule.total_size_bytes <= 180 * MB

    def test_tight_budget_forces_aggressive_pruning(self):
        schedule = plan_head_schedule(self.base(), self.groups(10),
                                      pi_fleet(10),
                                      memory_budget_bytes=100 * MB,
                                      num_samples=1)
        assert schedule.total_size_bytes <= 100 * MB
        assert len(schedule.hps) == 10

    def test_impossible_budget_raises(self):
        with pytest.raises(ScheduleInfeasible):
            plan_head_schedule(self.base(), self.groups(10), pi_fleet(10),
                               memory_budget_bytes=1 * MB, num_samples=1)

    def test_device_memory_constraint_respected(self):
        # Devices with only 20 MB RAM force sub-models below 20 MB even
        # though the fleet budget is loose.
        schedule = plan_head_schedule(self.base(), self.groups(5),
                                      pi_fleet(5, memory_gb=20 / 1024),
                                      memory_budget_bytes=1000 * MB,
                                      num_samples=1)
        assert all(f.size_bytes <= 20 * MB for f in schedule.footprints)

    def test_energy_constraint_respected(self):
        # Per-device energy of 3 GFLOPs rules out the 4.25 G half-pruned
        # sub-models at N=2.
        schedule = plan_head_schedule(self.base(), self.groups(2),
                                      pi_fleet(2, energy=3e9),
                                      memory_budget_bytes=1000 * MB,
                                      num_samples=1)
        assert all(f.flops_per_sample <= 3e9 for f in schedule.footprints)

    def test_explicit_initial_hp_list(self):
        schedule = plan_head_schedule(self.base(), self.groups(2), pi_fleet(2),
                                      memory_budget_bytes=1000 * MB,
                                      num_samples=1, initial_hp=[8, 9])
        assert schedule.hps == [8, 9]

    def test_initial_hp_scalar(self):
        schedule = plan_head_schedule(self.base(), self.groups(3), pi_fleet(3),
                                      memory_budget_bytes=1000 * MB,
                                      num_samples=1, initial_hp=9)
        assert schedule.hps == [9, 9, 9]

    def test_wrong_initial_hp_length_raises(self):
        with pytest.raises(ValueError):
            plan_head_schedule(self.base(), self.groups(3), pi_fleet(3),
                               memory_budget_bytes=1000 * MB, num_samples=1,
                               initial_hp=[6, 6])

    def test_invalid_initial_hp_raises(self):
        with pytest.raises(ValueError):
            plan_head_schedule(self.base(), self.groups(2), pi_fleet(2),
                               memory_budget_bytes=1000 * MB, num_samples=1,
                               initial_hp=12)

    def test_plan_assigns_every_submodel(self):
        schedule = plan_head_schedule(self.base(), self.groups(5), pi_fleet(5),
                                      memory_budget_bytes=180 * MB,
                                      num_samples=1)
        assert len(schedule.plan.mapping) == 5

    def test_paper_n10_submodel_size(self):
        # At the paper's 180 MB budget and N=10, sub-models land near the
        # reported 9.60 MB (we allow the loop to stop one notch earlier).
        schedule = plan_head_schedule(self.base(), self.groups(10),
                                      pi_fleet(10),
                                      memory_budget_bytes=180 * MB,
                                      num_samples=1)
        sizes_mb = [f.size_bytes / MB for f in schedule.footprints]
        assert max(sizes_mb) < 25


class TestInfeasibleMessages:
    """The two terminal failures must be distinguishable (bugfix)."""

    def test_budget_unreachable_names_the_budget(self):
        with pytest.raises(ScheduleInfeasible, match="budget .* unreachable"):
            plan_head_schedule(vit_base_config(num_classes=10),
                               balanced_class_partition(10, 10),
                               pi_fleet(10),
                               memory_budget_bytes=1 * MB, num_samples=1)

    def test_assignment_failure_names_the_placement(self):
        # Fleet budget is huge (the total trivially fits) but each
        # device has almost no energy, so greedy assignment can never
        # place anything: the message must blame placement, not budget.
        devices = [DeviceSpec(device_id=f"pi-{i}",
                              memory_bytes=4 * 2 ** 30,
                              energy_flops=1.0)
                   for i in range(3)]
        with pytest.raises(ScheduleInfeasible,
                           match="assignment failed at maximum pruning"):
            plan_head_schedule(vit_base_config(num_classes=10),
                               balanced_class_partition(10, 3),
                               devices,
                               memory_budget_bytes=100_000 * MB,
                               num_samples=1)
