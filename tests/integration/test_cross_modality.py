"""Cross-modality integration: the audio path (1-channel spectrogram ViTs)
exercised end-to-end, mirroring Section V-C at reproduction scale."""

import numpy as np
import pytest

from repro.core.edvit import EDViTConfig, build_edvit
from repro.core.training import TrainConfig, evaluate, train_classifier
from repro.edge.device import make_fleet
from repro.edge.network import feature_bytes
from repro.models.vit import ViTConfig, VisionTransformer
from repro.pruning.pipeline import PruneConfig

MB = 2 ** 20


@pytest.fixture(scope="module")
def trained_audio_vit(tiny_audio_dataset):
    cfg = ViTConfig(image_size=16, patch_size=4, in_channels=1,
                    num_classes=10, depth=2, embed_dim=32, num_heads=4)
    model = VisionTransformer(cfg, rng=np.random.default_rng(0))
    train_classifier(model, tiny_audio_dataset.x_train,
                     tiny_audio_dataset.y_train,
                     TrainConfig(epochs=10, lr=3e-3, seed=0))
    return model


class TestAudioPipeline:
    def test_audio_vit_learns_spectrograms(self, trained_audio_vit,
                                           tiny_audio_dataset):
        acc = evaluate(trained_audio_vit, tiny_audio_dataset.x_test,
                       tiny_audio_dataset.y_test)
        assert acc > 0.3  # chance is 0.1

    def test_audio_split_system(self, trained_audio_vit, tiny_audio_dataset):
        fleet = [d.to_spec() for d in make_fleet(2)]
        system = build_edvit(
            trained_audio_vit, tiny_audio_dataset, fleet,
            EDViTConfig(num_devices=2, memory_budget_bytes=64 * MB,
                        prune=PruneConfig(probe_size=10, head_adapt_epochs=2,
                                          stage_finetune_epochs=0,
                                          retrain_epochs=3,
                                          backend="magnitude"),
                        fusion_epochs=10, fusion_lr=3e-3, seed=0))
        assert system.accuracy(tiny_audio_dataset) > 0.15
        # Audio sub-models transmit the same tiny CLS features.
        for dim in system.feature_dims():
            assert feature_bytes(dim) < 200

    def test_single_channel_patch_embedding_cheaper(self):
        """The Table II CIFAR-vs-GTZAN delta comes only from channels."""
        from repro.profiling import paper_flops

        rgb = ViTConfig(image_size=16, patch_size=4, in_channels=3,
                        num_classes=10, depth=2, embed_dim=32, num_heads=4)
        mono = ViTConfig(image_size=16, patch_size=4, in_channels=1,
                         num_classes=10, depth=2, embed_dim=32, num_heads=4)
        delta = paper_flops(rgb) - paper_flops(mono)
        assert delta == rgb.num_patches * 2 * 16 * 32  # 2 channels x 4x4 x d
