"""End-to-end integration: the full ED-ViT lifecycle across subsystems.

Covers train -> split -> prune -> assign -> fuse -> simulate -> emulate,
i.e. every arrow in Fig. 1 plus the deployment substrates.
"""

import numpy as np
import pytest

from repro.core.edvit import EDViTConfig, build_edvit
from repro.core.training import evaluate
from repro.edge.device import DeviceModel, make_fleet, raspberry_pi_4b
from repro.edge.network import LinkModel
from repro.edge.runtime import EdgeCluster, WorkerSpec
from repro.edge.simulator import simulate_inference
from repro.profiling import paper_flops
from repro.pruning.pipeline import PruneConfig

MB = 2 ** 20

PRUNE = PruneConfig(probe_size=12, head_adapt_epochs=2,
                    stage_finetune_epochs=1, retrain_epochs=3, backend="kl")


@pytest.fixture(scope="module")
def system_n2(trained_tiny_vit, tiny_dataset):
    fleet = [d.to_spec() for d in make_fleet(2)]
    return build_edvit(
        trained_tiny_vit, tiny_dataset, fleet,
        EDViTConfig(num_devices=2, memory_budget_bytes=64 * MB, prune=PRUNE,
                    fusion_epochs=12, fusion_lr=3e-3, seed=0))


class TestAccuracyStory:
    """The paper's core accuracy claims, at reproduction scale."""

    def test_fused_accuracy_close_to_original(self, system_n2, tiny_dataset,
                                              trained_tiny_vit):
        original = evaluate(trained_tiny_vit, tiny_dataset.x_test,
                            tiny_dataset.y_test)
        fused = system_n2.accuracy(tiny_dataset)
        # ED-ViT claims comparable accuracy after split+prune; at this tiny
        # scale we accept a bounded drop from the unsplit original.
        assert fused > original - 0.25

    def test_fusion_mlp_beats_softmax_averaging(self, system_n2, tiny_dataset):
        # Table IV: the fusion MLP outperforms plain softmax averaging.
        assert (system_n2.accuracy(tiny_dataset)
                >= system_n2.softmax_average_accuracy(tiny_dataset) - 0.05)

    def test_submodels_competent_on_their_subsets(self, system_n2,
                                                  tiny_dataset):
        for sm in system_n2.submodels:
            subset = tiny_dataset.subset_of_classes(sm.classes)
            acc = evaluate(sm.model, subset.x_test, subset.y_test)
            assert acc > 1.5 / len(sm.classes)


class TestResourceStory:
    def test_total_memory_below_original(self, system_n2, trained_tiny_vit):
        from repro.profiling import module_size_mb

        assert (system_n2.total_size_mb()
                < 2 * module_size_mb(trained_tiny_vit))

    def test_submodel_flops_below_original(self, system_n2, trained_tiny_vit):
        original = paper_flops(trained_tiny_vit.config)
        assert all(f < original for f in system_n2.submodel_flops())

    def test_simulated_latency_beats_original(self, system_n2,
                                              trained_tiny_vit):
        fleet = make_fleet(2)
        spec = system_n2.deployment(fleet, raspberry_pi_4b("fusion"))
        result = simulate_inference(spec, num_samples=1)
        original = raspberry_pi_4b("ref").compute_seconds(
            paper_flops(trained_tiny_vit.config))
        assert result.max_latency < original


class TestProcessEmulation:
    def test_emulated_cluster_matches_local_predictions(self, system_n2,
                                                        tiny_dataset):
        """Ship the built sub-models into worker processes and verify the
        distributed prediction equals the local fused prediction."""
        workers = []
        for i, sm in enumerate(system_n2.submodels):
            workers.append(WorkerSpec.from_vit(
                f"w{i}", sm.model,
                flops_per_sample=float(paper_flops(sm.model.config)),
                device=DeviceModel(device_id=f"w{i}", macs_per_second=1e12),
                link=LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0)))
        x = tiny_dataset.x_test[:8]
        local = system_n2.predict(x)
        with EdgeCluster(workers, time_scale=0.0) as cluster:
            remote, timing = cluster.infer_fused(x, system_n2.fusion)
        np.testing.assert_array_equal(local, remote)
        assert timing.wall_seconds > 0


class TestDeviceCountSweep:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_system_builds_and_beats_chance(self, trained_tiny_vit,
                                            tiny_dataset, n):
        fleet = [d.to_spec() for d in make_fleet(n)]
        fast = PruneConfig(probe_size=8, head_adapt_epochs=1,
                           stage_finetune_epochs=0, retrain_epochs=2,
                           backend="magnitude")
        system = build_edvit(
            trained_tiny_vit, tiny_dataset, fleet,
            EDViTConfig(num_devices=n, memory_budget_bytes=64 * MB,
                        prune=fast, fusion_epochs=8, fusion_lr=3e-3, seed=0))
        assert len(system.submodels) == n
        assert system.accuracy(tiny_dataset) > 0.15
