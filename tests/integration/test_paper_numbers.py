"""Paper-anchor regression tests: every headline number the reproduction
should land near, in one place.  See EXPERIMENTS.md for the full ledger."""

import pytest

from repro.core.experiments import (
    communication_rows,
    latency_memory_curve,
    table1_rows,
    table2_rows,
)
from repro.models.vit import vit_base_config, vit_large_config, vit_small_config


@pytest.fixture(scope="module")
def fig4_rows():
    return latency_memory_curve(vit_base_config(num_classes=10), budget_mb=180)


class TestTable1Anchors:
    def test_all_rows(self):
        rows = {r["Model"]: r for r in table1_rows()}
        # (params M, mem MB) from Table I; latency anchored on ViT-Base.
        assert rows["ViT-Small"]["Params (M)"] == pytest.approx(22.1, abs=0.1)
        assert rows["ViT-Base"]["Params (M)"] == pytest.approx(86.6, abs=0.1)
        assert rows["ViT-Large"]["Params (M)"] == pytest.approx(304.4, abs=0.2)
        assert rows["ViT-Small"]["Mem Size (MB)"] == pytest.approx(83, abs=1)
        assert rows["ViT-Base"]["Mem Size (MB)"] == pytest.approx(327, abs=1)
        assert rows["ViT-Large"]["Mem Size (MB)"] == pytest.approx(1157, abs=2)


class TestTable2Anchors:
    def test_cifar_series_shape(self):
        row = next(r for r in table2_rows() if r["Dataset"] == "CIFAR-10")
        # Paper: 16.86 / 4.25 / 1.90 / 1.08 / 0.48 — we match within ~20%
        # at every point and exactly at N=2.
        assert row["N=2 (G)"] == pytest.approx(4.25, rel=0.02)
        assert row["N=3 (G)"] == pytest.approx(1.90, rel=0.2)
        assert row["N=5 (G)"] == pytest.approx(1.08, rel=0.2)
        assert row["N=10 (G)"] == pytest.approx(0.48, rel=0.25)


class TestFig4LatencyAnchors:
    def test_original_latency(self, fig4_rows):
        assert fig4_rows[0]["original_latency_s"] == pytest.approx(36.94,
                                                                   abs=0.01)

    def test_single_device_pruned_latency(self, fig4_rows):
        # Paper: 9.63 s for the pruned single-device deployment.
        assert fig4_rows[0]["latency_s"] == pytest.approx(9.63, rel=0.05)

    def test_ten_device_latency(self, fig4_rows):
        # Paper: 1.28 s (28.9x reduction).
        ten = next(r for r in fig4_rows if r["devices"] == 10)
        assert ten["latency_s"] == pytest.approx(1.28, rel=0.1)

    def test_speedup_ratios(self, fig4_rows):
        ten = next(r for r in fig4_rows if r["devices"] == 10)
        one = fig4_rows[0]
        assert ten["speedup_vs_original"] == pytest.approx(28.9, rel=0.1)
        assert one["speedup_vs_original"] == pytest.approx(3.84, rel=0.05)


class TestFig4MemoryAnchors:
    def test_ten_device_per_model_size(self, fig4_rows):
        ten = next(r for r in fig4_rows if r["devices"] == 10)
        assert ten["per_model_mb"] == pytest.approx(9.60, rel=0.02)

    def test_size_reduction_factor(self, fig4_rows):
        # Paper: up to 34.1x model-size reduction at N=10.
        ten = next(r for r in fig4_rows if r["devices"] == 10)
        assert 327.38 / ten["per_model_mb"] == pytest.approx(34.1, rel=0.03)

    def test_all_within_budget(self, fig4_rows):
        assert all(r["total_memory_mb"] <= 180 for r in fig4_rows)


class TestFig5AudioAnchors:
    def test_gtzan_latency_shape(self):
        rows = latency_memory_curve(
            vit_base_config(num_classes=10, in_channels=1), budget_mb=180)
        # Paper: original 32.16 s... but GTZAN uses the same ViT-Base (the
        # paper's 32.16 includes their audio pipeline); we check the
        # reduction *ratios* instead: max/min latencies scale ~3.37x/25.13x.
        ten = next(r for r in rows if r["devices"] == 10)
        one = rows[0]
        assert one["latency_s"] / ten["latency_s"] == pytest.approx(
            25.13 / 3.37, rel=0.15)

    def test_gtzan_n10_model_size(self):
        rows = latency_memory_curve(
            vit_base_config(num_classes=10, in_channels=1), budget_mb=180,
            device_counts=(10,))
        # Paper: 9.35 MB per sub-model.
        assert rows[0]["per_model_mb"] == pytest.approx(9.35, rel=0.03)


class TestFig6ModelSizeAnchors:
    def test_vit_small_n10(self):
        rows = latency_memory_curve(vit_small_config(num_classes=10),
                                    budget_mb=50, device_counts=(10,))
        # Paper: 2.58 MB (32.06x reduction).
        assert rows[0]["per_model_mb"] == pytest.approx(2.58, rel=0.12)

    def test_vit_large_n10(self):
        rows = latency_memory_curve(vit_large_config(num_classes=10),
                                    budget_mb=600, device_counts=(10,))
        # Paper: 18.73 MB (61.77x reduction).
        assert rows[0]["per_model_mb"] == pytest.approx(18.73, rel=0.12)

    def test_vit_large_reduction_factor(self):
        rows = latency_memory_curve(vit_large_config(num_classes=10),
                                    budget_mb=600, device_counts=(10,))
        assert 1157 / rows[0]["per_model_mb"] == pytest.approx(61.77, rel=0.12)


class TestCommunicationAnchors:
    def test_section_vd_numbers(self):
        rows = {r["devices"]: r for r in communication_rows()}
        assert rows[1]["feature_bytes"] == 1536    # paper: 1536 B
        assert rows[10]["feature_bytes"] == 512    # paper: 512 B
        assert rows[10]["reduction_x"] == pytest.approx(294.0, abs=0.5)
        assert rows[1]["transfer_ms"] < 7          # paper: max 5.86 ms
