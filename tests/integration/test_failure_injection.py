"""Failure-injection tests: crashed devices degrade, never deadlock."""

import numpy as np
import pytest

from repro.core.edvit import EDViTConfig, build_edvit
from repro.edge.device import DeviceModel, make_fleet, raspberry_pi_4b
from repro.edge.simulator import DeploymentSpec, SubModelProfile, simulate_inference
from repro.pruning.pipeline import PruneConfig

MB = 2 ** 20


def make_spec(num_devices=3):
    devices = make_fleet(num_devices)
    profiles = {f"m{i}": SubModelProfile(f"m{i}", 1e9, 64)
                for i in range(num_devices)}
    placement = {f"m{i}": devices[i].device_id for i in range(num_devices)}
    return DeploymentSpec(devices=devices, placement=placement,
                          profiles=profiles,
                          fusion_device=raspberry_pi_4b("fusion"),
                          fusion_flops=1e6)


class TestSimulatorFailures:
    def test_no_failures_is_default(self):
        spec = make_spec()
        a = simulate_inference(spec, 1)
        b = simulate_inference(spec, 1, failed_devices=set())
        assert a.latencies == b.latencies

    def test_failed_device_does_not_stall(self):
        spec = make_spec()
        result = simulate_inference(spec, 2, failed_devices={"pi-1"})
        assert len(result.latencies) == 2
        assert all(np.isfinite(result.latencies))

    def test_failed_device_does_no_work(self):
        spec = make_spec()
        result = simulate_inference(spec, 1, failed_devices={"pi-0"})
        assert result.device_busy["pi-0"] == 0.0
        assert result.device_busy["pi-1"] > 0.0

    def test_all_devices_failed_still_completes(self):
        spec = make_spec(2)
        result = simulate_inference(spec, 1,
                                    failed_devices={"pi-0", "pi-1"})
        # Only the fusion compute remains on the critical path.
        assert result.latencies[0] == pytest.approx(
            raspberry_pi_4b("fusion").compute_seconds(1e6), rel=1e-6)

    def test_unknown_failed_device_raises(self):
        with pytest.raises(KeyError):
            simulate_inference(make_spec(), 1, failed_devices={"ghost"})

    def test_failure_can_shorten_critical_path(self):
        spec = make_spec(2)
        spec.profiles["m1"] = SubModelProfile("m1", 50e9, 64)  # the slow one
        healthy = simulate_inference(spec, 1).latencies[0]
        degraded = simulate_inference(spec, 1,
                                      failed_devices={"pi-1"}).latencies[0]
        assert degraded < healthy


class TestFusionZeroFill:
    @pytest.fixture(scope="class")
    def system(self, trained_tiny_vit, tiny_dataset):
        fleet = [d.to_spec() for d in make_fleet(2)]
        return build_edvit(
            trained_tiny_vit, tiny_dataset, fleet,
            EDViTConfig(num_devices=2, memory_budget_bytes=64 * MB,
                        prune=PruneConfig(probe_size=8, head_adapt_epochs=1,
                                          stage_finetune_epochs=0,
                                          retrain_epochs=2,
                                          backend="magnitude"),
                        fusion_epochs=8, fusion_lr=3e-3, seed=0))

    def test_prediction_shape_under_failure(self, system, tiny_dataset):
        pred = system.predict(tiny_dataset.x_test[:6], failed={0})
        assert pred.shape == (6,)

    def test_accuracy_degrades_not_collapses(self, system, tiny_dataset):
        healthy = system.accuracy(tiny_dataset)
        degraded = system.accuracy_under_failures(tiny_dataset, failed={0})
        assert degraded <= healthy + 0.05
        # Losing one of two sub-models should still leave signal from the
        # surviving half of the class space.
        assert degraded > 0.05

    def test_all_failed_is_prior_prediction(self, system, tiny_dataset):
        pred = system.predict(tiny_dataset.x_test[:6], failed={0, 1})
        # Zero features -> a constant fusion output -> one constant class.
        assert len(set(pred.tolist())) == 1

    def test_out_of_range_failed_index_raises(self, system, tiny_dataset):
        with pytest.raises(IndexError):
            system.predict(tiny_dataset.x_test[:2], failed={7})
