"""Shared fixtures: tiny datasets and models kept small enough that the
whole suite runs on CPU in minutes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.training import TrainConfig, train_classifier
from repro.data import cifar10_like, gtzan_like
from repro.models.vit import ViTConfig, VisionTransformer


TINY_IMAGE = 16


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small, learnable 10-class RGB dataset (session-scoped, read-only)."""
    return cifar10_like(image_size=TINY_IMAGE, train_per_class=48,
                        test_per_class=16, noise_std=0.3)


@pytest.fixture(scope="session")
def tiny_audio_dataset():
    return gtzan_like(image_size=TINY_IMAGE, train_per_class=32,
                      test_per_class=12)


def make_tiny_vit(num_classes: int = 10, depth: int = 2, embed_dim: int = 32,
                  num_heads: int = 4, image_size: int = TINY_IMAGE,
                  in_channels: int = 3, seed: int = 0) -> VisionTransformer:
    cfg = ViTConfig(image_size=image_size, patch_size=4,
                    in_channels=in_channels, num_classes=num_classes,
                    depth=depth, embed_dim=embed_dim, num_heads=num_heads,
                    name="vit-test")
    return VisionTransformer(cfg, rng=np.random.default_rng(seed))


@pytest.fixture(scope="session")
def trained_tiny_vit(tiny_dataset):
    """A tiny ViT trained for a few epochs (session-scoped, treat read-only)."""
    model = make_tiny_vit()
    train_classifier(model, tiny_dataset.x_train, tiny_dataset.y_train,
                     TrainConfig(epochs=12, lr=3e-3, seed=0))
    return model
