"""Property tests of class partitioning and the scheduling loop."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.splitting.class_assignment import (
    balanced_class_partition,
    unbalanced_class_partition,
    validate_partition,
)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=64), st.data())
def test_balanced_partition_invariants(num_classes, data):
    num_groups = data.draw(st.integers(min_value=1, max_value=num_classes))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    groups = balanced_class_partition(num_classes, num_groups,
                                      np.random.default_rng(seed))
    # Exactly-once coverage (the paper's sum_i x_ie = 1 constraint).
    validate_partition(groups, num_classes)
    # Balance: |C_a| - |C_b| <= 1 (Algorithm 1 acceptance condition).
    sizes = [len(g) for g in groups]
    assert max(sizes) - min(sizes) <= 1
    assert len(groups) == num_groups


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=2, max_value=40), st.data())
def test_unbalanced_partition_invariants(num_classes, data):
    num_groups = data.draw(st.integers(min_value=1, max_value=num_classes))
    skew = data.draw(st.floats(min_value=1.0, max_value=4.0))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    groups = unbalanced_class_partition(num_classes, num_groups, skew,
                                        np.random.default_rng(seed))
    validate_partition(groups, num_classes)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=11),
       st.integers(min_value=0, max_value=11))
def test_pruned_dims_monotone_in_hp(hp_small, extra):
    """More pruned heads never yields a *larger* sub-model."""
    from repro.models.vit import vit_base_config
    from repro.pruning.structured import pruned_dims
    from repro.profiling import vit_param_count
    from repro.splitting.schedule import submodel_config

    hp_large = min(11, hp_small + extra)
    base = vit_base_config(num_classes=10)
    small = vit_param_count(submodel_config(base, hp_large, 10))
    large = vit_param_count(submodel_config(base, hp_small, 10))
    assert small <= large


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=11))
def test_pruned_dims_bounds(hp):
    from repro.models.vit import vit_base_config
    from repro.pruning.structured import pruned_dims

    dims = pruned_dims(vit_base_config(), hp)
    assert 1 <= dims["embed_dim"] <= 768
    assert dims["attn_dim"] % dims["num_heads"] == 0
    assert dims["mlp_hidden"] >= 1
