"""Property tests of the assignment algorithms: any returned plan is
feasible, and the branch-and-bound optimum dominates greedy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment.greedy import try_greedy_assign
from repro.assignment.optimal import optimal_assign
from repro.assignment.problem import (
    DeviceSpec,
    InfeasibleAssignment,
    SubModelSpec,
    validate_plan,
)


@st.composite
def instances(draw):
    num_devices = draw(st.integers(min_value=1, max_value=4))
    num_models = draw(st.integers(min_value=1, max_value=5))
    devices = [
        DeviceSpec(device_id=f"d{i}",
                   memory_bytes=draw(st.integers(min_value=10, max_value=200)),
                   energy_flops=float(draw(st.integers(min_value=10,
                                                       max_value=300))))
        for i in range(num_devices)]
    models = [
        SubModelSpec(model_id=f"m{j}",
                     size_bytes=draw(st.integers(min_value=1, max_value=80)),
                     flops_per_sample=float(draw(st.integers(min_value=1,
                                                             max_value=100))))
        for j in range(num_models)]
    return devices, models


@settings(max_examples=80, deadline=None)
@given(instances())
def test_greedy_plans_are_always_feasible(instance):
    devices, models = instance
    plan = try_greedy_assign(devices, models, num_samples=1)
    if plan is not None:
        validate_plan(plan, devices, models, num_samples=1)


@settings(max_examples=50, deadline=None)
@given(instances())
def test_optimal_dominates_greedy(instance):
    devices, models = instance
    greedy = try_greedy_assign(devices, models, num_samples=1)
    if greedy is None:
        return
    optimal = optimal_assign(devices, models, num_samples=1)
    validate_plan(optimal, devices, models, num_samples=1)
    assert optimal.objective >= greedy.objective - 1e-9


@settings(max_examples=50, deadline=None)
@given(instances())
def test_greedy_finds_plan_when_optimal_does(instance):
    """Greedy may be suboptimal but on these generous instances it should
    not claim infeasibility while a trivially-valid plan exists: if every
    model fits alone on some device with full resources, greedy places it."""
    devices, models = instance
    total_flops = sum(m.flops_per_sample for m in models)
    total_size = sum(m.size_bytes for m in models)
    fits_everywhere = all(
        d.memory_bytes >= total_size and d.energy_flops >= total_flops
        for d in devices)
    if fits_everywhere:
        assert try_greedy_assign(devices, models, num_samples=1) is not None


@settings(max_examples=50, deadline=None)
@given(instances(), st.integers(min_value=1, max_value=5))
def test_feasibility_antitone_in_workload(instance, num_samples):
    """If a plan exists for L samples, one exists for fewer samples."""
    devices, models = instance
    plan_large = try_greedy_assign(devices, models, num_samples=num_samples)
    if plan_large is not None:
        assert try_greedy_assign(devices, models, num_samples=1) is not None
