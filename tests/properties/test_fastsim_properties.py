"""Property tests: the vectorized scorer agrees with the event-loop DES
on randomized fleets and arrival traces."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.device import DeviceModel
from repro.edge.simulator import (
    DeploymentSpec,
    SubModelProfile,
    simulate_inference,
)

REL = 1e-12


def build_spec(flops_list, feature_dims, speeds, input_bytes=0):
    devices = [DeviceModel(f"d{i}", macs_per_second=speed * 1e9)
               for i, speed in enumerate(speeds)]
    profiles = {}
    placement = {}
    for i, (flops, dim) in enumerate(zip(flops_list, feature_dims)):
        profiles[f"m{i}"] = SubModelProfile(f"m{i}", flops, dim)
        # Wrap-around placement: some devices host 2 sub-models when there
        # are more models than devices, exercising multi-slot lanes.
        placement[f"m{i}"] = f"d{i % len(devices)}"
    return DeploymentSpec(devices=devices, placement=placement,
                          profiles=profiles,
                          fusion_device=DeviceModel("fusion",
                                                    macs_per_second=2e9),
                          fusion_flops=5e6, input_bytes=input_bytes)


fleet_strategy = st.integers(min_value=1, max_value=5).flatmap(
    lambda n_dev: st.tuples(
        st.lists(st.floats(min_value=1e5, max_value=5e8),
                 min_size=n_dev, max_size=2 * n_dev),
        st.lists(st.integers(min_value=8, max_value=512),
                 min_size=2 * n_dev, max_size=2 * n_dev),
        st.lists(st.floats(min_value=0.2, max_value=4.0),
                 min_size=n_dev, max_size=n_dev)))


def assert_engines_agree(spec, **kwargs):
    event = simulate_inference(spec, engine="event", **kwargs)
    vector = simulate_inference(spec, engine="vector", **kwargs)
    assert vector.engine == "vector"
    np.testing.assert_allclose(vector.latencies, event.latencies, rtol=REL)
    assert vector.mean_latency == event.mean_latency
    assert vector.max_latency == event.max_latency
    assert vector.throughput == event.throughput
    assert vector.makespan == event.makespan
    horizon = event.makespan * 0.7 + 1e-9
    for resource in event.busy_segments:
        assert vector.busy_within(resource, horizon) == \
            event.busy_within(resource, horizon), resource
    return event, vector


@settings(max_examples=40, deadline=None)
@given(fleet_strategy,
       st.integers(min_value=1, max_value=8),
       st.floats(min_value=0.0, max_value=0.05))
def test_vector_matches_event_on_uniform_streams(fleet, samples, interval):
    flops, dims, speeds = fleet
    spec = build_spec(flops, dims, speeds)
    assert_engines_agree(spec, num_samples=samples,
                         arrival_interval=interval)


@settings(max_examples=40, deadline=None)
@given(fleet_strategy,
       st.lists(st.floats(min_value=0.0, max_value=2.0), min_size=1,
                max_size=12))
def test_vector_matches_event_on_random_traces(fleet, raw_times):
    flops, dims, speeds = fleet
    spec = build_spec(flops, dims, speeds)
    assert_engines_agree(spec, arrival_times=sorted(raw_times))


@settings(max_examples=25, deadline=None)
@given(fleet_strategy, st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=10 ** 5))
def test_vector_matches_event_with_batch_input_shipping(fleet, samples,
                                                        input_bytes):
    flops, dims, speeds = fleet
    spec = build_spec(flops, dims, speeds, input_bytes=input_bytes)
    assert_engines_agree(spec, num_samples=samples)


@settings(max_examples=25, deadline=None)
@given(fleet_strategy, st.data())
def test_vector_matches_event_with_failures(fleet, data):
    flops, dims, speeds = fleet
    spec = build_spec(flops, dims, speeds)
    ids = [d.device_id for d in spec.devices]
    failed = set(data.draw(st.lists(st.sampled_from(ids), unique=True)))
    assert_engines_agree(spec, num_samples=3, arrival_interval=0.001,
                         failed_devices=failed)
