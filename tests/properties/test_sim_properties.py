"""Property tests of the edge substrate: simulator and network invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.device import DeviceModel
from repro.edge.network import LinkModel, feature_bytes
from repro.edge.simulator import (
    DeploymentSpec,
    SubModelProfile,
    simulate_inference,
)


def build_spec(flops_list, feature_dim=64, fusion_flops=1e5):
    devices = [DeviceModel(device_id=f"d{i}", macs_per_second=1e9)
               for i in range(len(flops_list))]
    profiles = {f"m{i}": SubModelProfile(f"m{i}", f, feature_dim)
                for i, f in enumerate(flops_list)}
    placement = {f"m{i}": f"d{i}" for i in range(len(flops_list))}
    return DeploymentSpec(devices=devices, placement=placement,
                          profiles=profiles,
                          fusion_device=DeviceModel("fusion",
                                                    macs_per_second=1e9),
                          fusion_flops=fusion_flops)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=1e6, max_value=1e10), min_size=1,
                max_size=6))
def test_latency_at_least_slowest_compute(flops_list):
    spec = build_spec(flops_list)
    result = simulate_inference(spec, num_samples=1)
    slowest = max(flops_list) / 1e9
    assert result.latencies[0] >= slowest


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=1e6, max_value=1e9), min_size=1,
                max_size=4),
       st.integers(min_value=1, max_value=5))
def test_latencies_nonnegative_and_complete(flops_list, samples):
    result = simulate_inference(build_spec(flops_list), num_samples=samples)
    assert len(result.latencies) == samples
    assert all(lat > 0 for lat in result.latencies)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=1e6, max_value=1e9), min_size=1,
                max_size=4))
def test_adding_a_device_never_helps_single_sample(flops_list):
    """With one sub-model per device, per-sample latency is set by the
    slowest chain; removing the fastest device cannot reduce latency."""
    full = simulate_inference(build_spec(flops_list), 1).latencies[0]
    dominant = simulate_inference(build_spec([max(flops_list)]), 1).latencies[0]
    assert full >= dominant - 1e-12


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10**7),
       st.integers(min_value=0, max_value=10**7))
def test_transfer_time_monotone_in_bytes(a, b):
    link = LinkModel(bandwidth_bps=2e6)
    small, large = sorted((a, b))
    assert link.transfer_seconds(small) <= link.transfer_seconds(large)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=4096))
def test_feature_bytes_is_4x_dim(dim):
    assert feature_bytes(dim) == 4 * dim


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=1e5, max_value=1e12),
       st.floats(min_value=1.1, max_value=10.0))
def test_faster_device_strictly_faster(flops, speedup):
    slow = DeviceModel("slow", macs_per_second=1e9)
    fast = DeviceModel("fast", macs_per_second=1e9 * speedup)
    assert fast.compute_seconds(flops) < slow.compute_seconds(flops)
