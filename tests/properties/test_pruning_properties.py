"""Property tests of pruning surgery: any valid keep-set yields a
consistent, runnable model whose parameter count matches the analytics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.models.vit import ViTConfig, VisionTransformer
from repro.profiling import vit_param_count
from repro.pruning.surgery import (
    prune_attention_dims,
    prune_ffn_hidden,
    prune_residual_channels,
)


def base_model():
    cfg = ViTConfig(image_size=8, patch_size=4, num_classes=3, depth=2,
                    embed_dim=12, num_heads=2)
    return VisionTransformer(cfg, rng=np.random.default_rng(0))


@st.composite
def keep_subset(draw, universe, min_size=1):
    size = draw(st.integers(min_value=min_size, max_value=universe))
    idx = draw(st.permutations(range(universe)))
    return np.sort(np.array(idx[:size]))


@settings(max_examples=25, deadline=None)
@given(keep_subset(universe=12))
def test_residual_prune_consistency(keep):
    model = base_model()
    pruned = prune_residual_channels(model, keep)
    assert pruned.config.embed_dim == len(keep)
    assert pruned.num_parameters() == vit_param_count(pruned.config)
    x = nn.Tensor(np.random.default_rng(1).normal(
        size=(2, 3, 8, 8)).astype(np.float32))
    out = pruned(x)
    assert out.shape == (2, 3)
    assert np.isfinite(out.data).all()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.data())
def test_attention_prune_consistency(kept_dims, data):
    model = base_model()
    keep = []
    for _ in range(2):  # depth
        block_keep = []
        for _ in range(2):  # heads
            idx = data.draw(st.permutations(range(6)))
            block_keep.append(np.sort(np.array(idx[:kept_dims])))
        keep.append(block_keep)
    pruned = prune_attention_dims(model, keep)
    assert pruned.config.resolved_attn_dim == kept_dims * 2
    assert pruned.num_parameters() == vit_param_count(pruned.config)
    x = nn.Tensor(np.random.default_rng(1).normal(
        size=(1, 3, 8, 8)).astype(np.float32))
    assert np.isfinite(pruned(x).data).all()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=48), st.data())
def test_ffn_prune_consistency(kept, data):
    model = base_model()
    keep = []
    for _ in range(2):
        idx = data.draw(st.permutations(range(48)))
        keep.append(np.sort(np.array(idx[:kept])))
    pruned = prune_ffn_hidden(model, keep)
    assert pruned.config.resolved_mlp_hidden == kept
    assert pruned.num_parameters() == vit_param_count(pruned.config)
    x = nn.Tensor(np.random.default_rng(1).normal(
        size=(1, 3, 8, 8)).astype(np.float32))
    assert np.isfinite(pruned(x).data).all()


@settings(max_examples=20, deadline=None)
@given(keep_subset(universe=12, min_size=2))
def test_pruning_never_grows_model(keep):
    model = base_model()
    pruned = prune_residual_channels(model, keep)
    assert pruned.num_parameters() <= model.num_parameters()
