"""Property-based tests of the autograd core (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import ops
from repro.nn.tensor import Tensor, concat

FLOATS = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                   width=32)


def finite_arrays(max_dims=3, max_side=5):
    return arrays(dtype=np.float32,
                  shape=array_shapes(min_dims=1, max_dims=max_dims,
                                     min_side=1, max_side=max_side),
                  elements=FLOATS)


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_add_commutative(x):
    a, b = Tensor(x), Tensor(x * 0.5 + 1.0)
    np.testing.assert_allclose((a + b).data, (b + a).data, rtol=1e-5)


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_sum_of_grad_of_sum_is_count(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    assert t.grad.sum() == x.size


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_reshape_preserves_sum(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.reshape(-1).sum().item(),
                               t.sum().item(), rtol=1e-4)


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_softmax_is_distribution(x):
    out = ops.softmax(Tensor(x), axis=-1).data
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-4)
    assert (out >= 0).all()
    assert (out <= 1.0 + 1e-6).all()


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_softmax_shift_invariant(x):
    a = ops.softmax(Tensor(x), axis=-1).data
    b = ops.softmax(Tensor(x + 100.0), axis=-1).data
    np.testing.assert_allclose(a, b, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_log_softmax_consistent_with_softmax(x):
    soft = ops.softmax(Tensor(x), axis=-1).data
    log_soft = ops.log_softmax(Tensor(x), axis=-1).data
    np.testing.assert_allclose(np.exp(log_soft), soft, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_relu_idempotent(x):
    t = Tensor(x)
    once = t.relu().data
    twice = t.relu().relu().data
    np.testing.assert_array_equal(once, twice)


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_gelu_bounded_by_relu(x):
    gelu = ops.gelu(Tensor(x)).data
    relu = Tensor(x).relu().data
    assert (gelu <= relu + 1e-5).all()


@settings(max_examples=40, deadline=None)
@given(finite_arrays(max_dims=2))
def test_concat_then_split_roundtrip(x):
    t = Tensor(x)
    joined = concat([t, t], axis=0)
    assert joined.shape[0] == 2 * x.shape[0]
    np.testing.assert_array_equal(joined.data[:x.shape[0]], x)


@settings(max_examples=40, deadline=None)
@given(finite_arrays(max_dims=2, max_side=4),
       st.integers(min_value=1, max_value=4))
def test_matmul_linear_in_scalar(x, k):
    if x.ndim != 2:
        x = x.reshape(x.shape[0], -1)
    w = np.ones((x.shape[1], 2), dtype=np.float32)
    a = (Tensor(x * k) @ Tensor(w)).data
    b = (Tensor(x) @ Tensor(w)).data * k
    np.testing.assert_allclose(a, b, rtol=1e-3, atol=1e-3)


@settings(max_examples=30, deadline=None)
@given(finite_arrays(max_dims=2))
def test_gradient_of_linear_function_is_constant(x):
    # d/dx (3x + 1).sum() == 3 everywhere, independent of x.
    t = Tensor(x, requires_grad=True)
    (t * 3.0 + 1.0).sum().backward()
    np.testing.assert_allclose(t.grad, 3.0, rtol=1e-6)


@settings(max_examples=30, deadline=None)
@given(finite_arrays(max_dims=2))
def test_layer_norm_output_standardized(x):
    if x.shape[-1] < 4:
        x = np.repeat(x, 4, axis=-1)
    # Guard against constant rows (zero variance is fine, just check mean).
    from repro.nn.modules import LayerNorm

    ln = LayerNorm(x.shape[-1])
    out = ln(Tensor(x)).data
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-3)
