"""Split-SNN (EC-SNN-style) baseline tests."""

import numpy as np
import pytest

from repro.baselines.split_snn import SplitSNNConfig, build_split_snn
from repro.core.training import TrainConfig, train_classifier
from repro.models.snn import ConvSNN, SNNConfig


@pytest.fixture(scope="module")
def trained_snn(tiny_dataset):
    cfg = SNNConfig(image_size=16, num_classes=10, channels=(8, 16),
                    time_steps=3, classifier_hidden=32)
    model = ConvSNN(cfg, rng=np.random.default_rng(0))
    train_classifier(model, tiny_dataset.x_train, tiny_dataset.y_train,
                     TrainConfig(epochs=6, lr=2e-3, seed=0))
    return model


@pytest.fixture(scope="module")
def snn_system(trained_snn, tiny_dataset):
    return build_split_snn(trained_snn, tiny_dataset,
                           SplitSNNConfig(num_devices=2, keep_ratio=0.5,
                                          adapt_epochs=1, finetune_epochs=2,
                                          fusion_epochs=8, seed=0))


class TestBuildSplitSNN:
    def test_submodel_count(self, snn_system):
        assert len(snn_system.submodels) == 2

    def test_partition_covers_all_classes(self, snn_system):
        classes = sorted(c for g in snn_system.partition for c in g)
        assert classes == list(range(10))

    def test_submodels_pruned(self, snn_system, trained_snn):
        for sm in snn_system.submodels:
            assert sm.model.num_parameters() < trained_snn.num_parameters()

    def test_channels_halved(self, snn_system):
        for sm in snn_system.submodels:
            assert sm.model.config.scaled_channels() == (4, 8)

    def test_accuracy_beats_chance(self, snn_system, tiny_dataset):
        assert snn_system.accuracy(tiny_dataset) > 0.12

    def test_softmax_average_in_range(self, snn_system, tiny_dataset):
        acc = snn_system.softmax_average_accuracy(tiny_dataset)
        assert 0.0 <= acc <= 1.0

    def test_total_params_reported(self, snn_system):
        assert snn_system.total_params() > 0

    def test_spiking_dynamics_preserved_after_split(self, snn_system):
        # Sub-models remain rate-coded SNNs with the original time steps.
        for sm in snn_system.submodels:
            assert sm.model.config.time_steps == 3
