"""Split-CNN (NNFacet-style) baseline tests."""

import numpy as np
import pytest

from repro.baselines.split_cnn import SplitCNNConfig, build_split_cnn
from repro.core.training import TrainConfig, train_classifier
from repro.models.vgg import VGG, vgg8_micro_config


@pytest.fixture(scope="module")
def trained_vgg(tiny_dataset):
    model = VGG(vgg8_micro_config(num_classes=10, image_size=16,
                                 width_scale=0.25),
                rng=np.random.default_rng(0))
    train_classifier(model, tiny_dataset.x_train, tiny_dataset.y_train,
                     TrainConfig(epochs=6, lr=2e-3, seed=0))
    return model


@pytest.fixture(scope="module")
def cnn_system(trained_vgg, tiny_dataset):
    return build_split_cnn(trained_vgg, tiny_dataset,
                           SplitCNNConfig(num_devices=2, keep_ratio=0.5,
                                          adapt_epochs=1, finetune_epochs=2,
                                          fusion_epochs=8, seed=0))


class TestBuildSplitCNN:
    def test_submodel_count(self, cnn_system):
        assert len(cnn_system.submodels) == 2

    def test_partition_covers_all_classes(self, cnn_system):
        classes = sorted(c for g in cnn_system.partition for c in g)
        assert classes == list(range(10))

    def test_submodels_pruned(self, cnn_system, trained_vgg):
        for sm in cnn_system.submodels:
            assert sm.model.num_parameters() < trained_vgg.num_parameters()

    def test_submodel_heads_match_subsets(self, cnn_system):
        for sm, classes in zip(cnn_system.submodels, cnn_system.partition):
            assert sm.model.config.num_classes == len(classes)

    def test_accuracy_beats_chance(self, cnn_system, tiny_dataset):
        assert cnn_system.accuracy(tiny_dataset) > 0.15

    def test_softmax_average_beats_chance(self, cnn_system, tiny_dataset):
        assert cnn_system.softmax_average_accuracy(tiny_dataset) > 0.15

    def test_history_recorded(self, cnn_system):
        for sm in cnn_system.submodels:
            assert "adapt_acc" in sm.history
            assert "finetune_acc" in sm.history

    def test_total_params_reported(self, cnn_system):
        assert cnn_system.total_params() > 0

    def test_keep_ratio_one_skips_pruning(self, trained_vgg, tiny_dataset):
        system = build_split_cnn(trained_vgg, tiny_dataset,
                                 SplitCNNConfig(num_devices=2, keep_ratio=1.0,
                                                adapt_epochs=0,
                                                finetune_epochs=0,
                                                fusion_epochs=1, seed=0))
        # Head layers differ but backbones keep their widths.
        convs_base = [m.out_channels for m in trained_vgg.features
                      if hasattr(m, "out_channels")]
        convs_sub = [m.out_channels for m in system.submodels[0].model.features
                     if hasattr(m, "out_channels")]
        assert convs_base == convs_sub
