"""Arrival traces and traffic generators."""

import json

import pytest

from repro.serving.traffic import (
    ArrivalTrace,
    burst_trace,
    diurnal_trace,
    flash_crowd_trace,
    mmpp_trace,
    poisson_trace,
)


class TestArrivalTrace:
    def test_validates_sorted_finite_nonnegative(self):
        with pytest.raises(ValueError):
            ArrivalTrace(())
        with pytest.raises(ValueError):
            ArrivalTrace((1.0, 0.5))
        with pytest.raises(ValueError):
            ArrivalTrace((-0.1, 0.5))
        with pytest.raises(ValueError):
            ArrivalTrace((0.0, float("nan")))

    def test_stats(self):
        trace = ArrivalTrace((0.0, 1.0, 2.0, 4.0))
        assert trace.num_requests == 4
        assert trace.duration == 4.0
        assert trace.mean_rps == 1.0
        assert ArrivalTrace((0.0,)).mean_rps == 0.0

    def test_split_round_robin_preserves_times(self):
        trace = ArrivalTrace(tuple(float(i) for i in range(10)))
        shards = trace.split_round_robin(3)
        assert [s.num_requests for s in shards] == [4, 3, 3]
        assert shards[0].arrivals == (0.0, 3.0, 6.0, 9.0)
        merged = sorted(t for s in shards for t in s.arrivals)
        assert tuple(merged) == trace.arrivals
        with pytest.raises(ValueError):
            trace.split_round_robin(11)
        with pytest.raises(ValueError):
            trace.split_round_robin(0)

    def test_rescaled(self):
        trace = ArrivalTrace((0.0, 2.0, 4.0))
        faster = trace.rescaled(2.0)
        assert faster.arrivals == (0.0, 1.0, 2.0)
        assert faster.mean_rps == pytest.approx(2 * trace.mean_rps)
        with pytest.raises(ValueError):
            trace.rescaled(0.0)

    def test_jsonl_round_trip(self, tmp_path):
        trace = poisson_trace(50, 5, seed=3)
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == "repro.arrivals.v1"
        assert header["num_requests"] == trace.num_requests
        assert ArrivalTrace.from_jsonl(path) == trace

    def test_jsonl_rejects_bad_header_and_count(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "other.v1"}\n{"t": 0.0}\n')
        with pytest.raises(ValueError, match="format"):
            ArrivalTrace.from_jsonl(path)
        path.write_text('{"format": "repro.arrivals.v1", "num_requests": 2}\n'
                        '{"t": 0.0}\n')
        with pytest.raises(ValueError, match="arrivals"):
            ArrivalTrace.from_jsonl(path)


class TestGenerators:
    def test_poisson_rate_roughly_honoured(self):
        trace = poisson_trace(100, 20, seed=0)
        assert trace.arrivals[-1] < 20
        assert trace.mean_rps == pytest.approx(100, rel=0.15)

    def test_generators_deterministic_in_seed(self):
        for make in (lambda s: poisson_trace(40, 10, seed=s),
                     lambda s: mmpp_trace([10, 100], 2, 10, seed=s),
                     lambda s: diurnal_trace(10, 80, 10, 10, seed=s),
                     lambda s: burst_trace(10, 100, 4, 1, 10, seed=s),
                     lambda s: flash_crowd_trace(10, 100, 2, 1, 10, seed=s)):
            assert make(5) == make(5)
            assert make(5) != make(6)

    def test_burst_raises_rate_inside_bursts(self):
        trace = burst_trace(base_rps=5, burst_rps=200, burst_every_s=10,
                            burst_duration_s=2, duration_s=40, seed=2)
        in_burst = sum(1 for t in trace.arrivals
                       if (t % 10) >= 8)
        calm = trace.num_requests - in_burst
        # 8 calm seconds at ~5 rps vs 2 burst seconds at ~200 rps per
        # period: the bursts must dominate despite 4x less wall time.
        assert in_burst > 3 * calm

    def test_flash_crowd_spikes_after_onset(self):
        trace = flash_crowd_trace(base_rps=5, peak_rps=300, onset_s=10,
                                  decay_s=3, duration_s=30, seed=4)
        before = sum(1 for t in trace.arrivals if t < 10)
        after = sum(1 for t in trace.arrivals if 10 <= t < 20)
        assert after > 5 * max(before, 1)

    def test_mmpp_visits_multiple_rates(self):
        trace = mmpp_trace([2, 200], mean_dwell_s=2, duration_s=40, seed=1)
        # Per-second counts must show both regimes: near-idle seconds and
        # busy seconds, or the modulation is not happening.
        counts = [0] * 40
        for t in trace.arrivals:
            counts[int(t)] += 1
        assert min(counts) < 10 < max(counts)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            poisson_trace(0, 10)
        with pytest.raises(ValueError):
            mmpp_trace([50], 1, 10)
        with pytest.raises(ValueError):
            diurnal_trace(100, 50, 10, 10)
        with pytest.raises(ValueError):
            burst_trace(10, 5, 10, 2, 30)
        with pytest.raises(ValueError):
            burst_trace(10, 100, 2, 5, 30)
        with pytest.raises(ValueError):
            flash_crowd_trace(10, 100, 50, 3, 30)
