"""End-to-end observability over the serving stack.

Covers the tentpole contract (worker-process spans joined to the
server-side trace by the propagated context), the report schema fields,
the serving/edge metrics series, the vectorized aggregation, and the
swap-attribution guarantee: a retired worker's series must not leak
into its replacement's.
"""

import json

import numpy as np
import pytest

from repro.edge.device import DeviceModel
from repro.edge.network import LinkModel
from repro.edge.runtime import WorkerSpec
from repro.obs import (
    disable_tracing,
    enable_tracing,
    get_registry,
    get_tracer,
)
from repro.serving import (
    BatchingConfig,
    InferenceServer,
    ServerConfig,
    build_demo_system,
)
from repro.serving.telemetry import (
    RequestTelemetry,
    SERVING_SCHEMA_VERSION,
    ServingReport,
    percentile,
)

WORKER_SPAN_NAMES = {"worker.request", "worker.forward", "codec.encode",
                     "worker.emulate"}


@pytest.fixture(scope="module")
def system():
    return build_demo_system(num_workers=2, transport="inprocess")


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


def make_server(system, **batching):
    batching.setdefault("max_batch_samples", 8)
    batching.setdefault("max_wait_s", 0.002)
    return InferenceServer(system.make_cluster(), system.fusion,
                           ServerConfig(batching=BatchingConfig(**batching)))


def inputs(system, count, seed=0):
    return np.random.default_rng(seed).normal(
        size=(count, *system.input_shape)).astype(np.float32)


def counter_value(name, **labels):
    return get_registry().counter(name, **labels).value


class TestSpanTree:
    def test_request_tree_spans_both_processes(self, system):
        enable_tracing()
        with make_server(system) as server:
            for seed in range(3):
                server.infer(inputs(system, 2, seed=seed))
        spans = get_tracer().spans()
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)

        roots = by_name["request"]
        assert len(roots) == 3
        batch_spans = {s.trace_id: s for s in by_name["batch.serve"]}
        for root in roots:
            assert root.attrs["batch_id"] in batch_spans
            queue = [s for s in by_name["request.queue"]
                     if s.trace_id == root.trace_id]
            assert queue and queue[0].parent_id == root.span_id

        # Worker spans are emitted in the worker and joined to the
        # server-side batch span by the propagated trace context.
        assert set(by_name) >= WORKER_SPAN_NAMES | {"codec.decode"}
        for s in by_name["worker.request"]:
            assert s.process in {"w0", "w1"}
            assert s.parent_id == batch_spans[s.trace_id].span_id
        for s in by_name["worker.forward"]:
            parent_ids = {w.span_id for w in by_name["worker.request"]}
            assert s.parent_id in parent_ids
        for s in by_name["codec.decode"]:
            assert s.process == "server"

    def test_no_spans_when_disabled(self, system):
        enable_tracing()
        get_tracer().clear()
        disable_tracing()
        before = len(get_tracer())
        with make_server(system) as server:
            server.infer(inputs(system, 2))
        assert len(get_tracer()) == before

    def test_span_timing_nests_inside_batch(self, system):
        enable_tracing()
        with make_server(system) as server:
            server.infer(inputs(system, 2))
        spans = get_tracer().spans()
        batch = next(s for s in spans if s.name == "batch.serve")
        for child in spans:
            if child.name == "worker.request" \
                    and child.trace_id == batch.trace_id:
                assert child.ts >= batch.ts - 0.05
                assert child.ts + child.duration_s <= \
                    batch.ts + batch.duration_s + 0.05


class TestReportSchema:
    def test_report_carries_version_start_and_metrics(self, system):
        with make_server(system) as server:
            server.infer(inputs(system, 2))
            report = server.stats(include_metrics=True)
        data = report.to_dict()
        assert data["schema_version"] == SERVING_SCHEMA_VERSION
        assert data["started_at"] is not None and data["started_at"] > 0
        assert any(key.startswith("serving.") for key in data["metrics"])
        json.dumps(data)               # the whole report must be JSON-safe

    def test_metrics_omitted_by_default(self, system):
        with make_server(system) as server:
            server.infer(inputs(system, 2))
            assert server.stats().metrics is None


class TestServingMetrics:
    def test_request_and_dispatch_counters_grow(self, system):
        before_requests = counter_value("serving.requests_total")
        before_w0 = counter_value("edge.dispatch_total", worker="w0")
        before_bytes = counter_value("wire.bytes_out_total", worker="w0")
        x = inputs(system, 2)
        with make_server(system) as server:
            for _ in range(3):
                server.infer(x)
        assert counter_value("serving.requests_total") == \
            before_requests + 3
        assert counter_value("edge.dispatch_total", worker="w0") == \
            before_w0 + 3
        # Each dispatch scatters the full input to every worker.
        assert counter_value("wire.bytes_out_total", worker="w0") == \
            before_bytes + 3 * x.nbytes

    def test_inflight_settles_to_zero(self, system):
        with make_server(system) as server:
            server.infer(inputs(system, 2))
        for worker in ("w0", "w1"):
            assert get_registry().gauge("edge.inflight",
                                        worker=worker).value == 0


class TestSwapAttribution:
    def replacement_spec(self, system, worker_id):
        return WorkerSpec.from_model(
            worker_id, system.models[0], "vit", flops_per_sample=1e6,
            device=DeviceModel(device_id=worker_id, macs_per_second=1e12),
            link=LinkModel(bandwidth_bps=1e9, overhead_seconds=0.0))

    def test_retired_series_frozen_replacement_starts_fresh(self, system):
        enable_tracing()
        with make_server(system) as server:
            server.infer(inputs(system, 2))
            at_swap_old = counter_value("edge.dispatch_total", worker="w0")
            at_swap_new = counter_value("edge.dispatch_total",
                                        worker="w0@obs")
            assert at_swap_old > 0
            new_id = server.swap_worker(
                "w0", self.replacement_spec(system, "w0@obs"))
            assert new_id == "w0@obs"
            for seed in range(2):
                server.infer(inputs(system, 2, seed=seed))
            # The retired worker's series stop growing; the replacement
            # accrues its own — post-swap traffic is never attributed to
            # the old id (or vice versa).
            assert counter_value("edge.dispatch_total", worker="w0") == \
                at_swap_old
            assert counter_value("edge.dispatch_total",
                                 worker="w0@obs") == at_swap_new + 2
            assert get_registry().gauge("edge.inflight",
                                        worker="w0").value == 0
            assert counter_value("serving.swaps_total") >= 1

        # Post-swap worker spans carry the replacement's process name.
        post_swap = [s for s in get_tracer().spans()
                     if s.name == "worker.request"
                     and s.process == "w0@obs"]
        assert len(post_swap) == 2
        assert all(s.process != "w0" or s.ts > 0 for s in post_swap)


class TestVectorizedAggregation:
    def make_records(self, n=37, seed=0):
        rng = np.random.default_rng(seed)
        records = []
        for i in range(n):
            enq = float(rng.uniform(0, 1))
            total = float(rng.uniform(0.001, 0.2))
            records.append(RequestTelemetry(
                request_id=i, num_samples=int(rng.integers(1, 5)),
                enqueued_at=enq, dispatched_at=enq + total / 3,
                completed_at=enq + total,
                batch_requests=int(rng.integers(1, 8)),
                queue_s=total / 3, gather_s=total / 4, fusion_s=total / 10,
                bytes_out=int(rng.integers(100, 5000)),
                bytes_in=int(rng.integers(100, 5000)),
                degraded=bool(i % 5 == 0),
                error="boom" if i % 11 == 10 else None))
        return records

    def test_matches_naive_reference(self):
        records = self.make_records()
        report = ServingReport.from_records(records, wall_seconds=2.0,
                                            worker_health={"w0": "up"})
        done = [r for r in records if r.error is None]
        totals = [r.total_s for r in done]
        assert report.completed == len(done)
        assert report.failed == len(records) - len(done)
        assert report.latency_p50_s == pytest.approx(percentile(totals, 50))
        assert report.latency_p95_s == pytest.approx(percentile(totals, 95))
        assert report.latency_p99_s == pytest.approx(percentile(totals, 99))
        assert report.latency_mean_s == pytest.approx(np.mean(totals))
        assert report.queue_mean_s == pytest.approx(
            np.mean([r.queue_s for r in done]))
        assert report.gather_mean_s == pytest.approx(
            np.mean([r.gather_s for r in done]))
        assert report.fusion_mean_s == pytest.approx(
            np.mean([r.fusion_s for r in done]))
        assert report.mean_batch_requests == pytest.approx(
            np.mean([r.batch_requests for r in done]))
        assert report.degraded_requests == \
            sum(1 for r in done if r.degraded)
        assert report.wire_bytes_out == sum(r.bytes_out for r in done)
        assert report.wire_bytes_in == sum(r.bytes_in for r in done)
        assert report.throughput_rps == pytest.approx(len(done) / 2.0)
        assert report.throughput_sps == pytest.approx(
            sum(r.num_samples for r in done) / 2.0)

    def test_empty_window(self):
        report = ServingReport.from_records([], wall_seconds=1.0)
        assert report.completed == 0 and report.failed == 0
        assert report.latency_p50_s is None
        assert report.mean_batch_requests is None
        assert report.wire_bytes_in == 0
        json.dumps(report.to_dict())

    def test_all_failed_window(self):
        records = [RequestTelemetry(request_id=i, num_samples=1,
                                    enqueued_at=0.0, completed_at=0.1,
                                    error="dead")
                   for i in range(4)]
        report = ServingReport.from_records(records, wall_seconds=1.0)
        assert report.completed == 0 and report.failed == 4
        assert report.latency_p50_s is None
