"""Load-generator tests: open/closed loops, drops, and the batching win."""

import pytest

from repro.serving import (
    BatchingConfig,
    InferenceServer,
    LoadgenConfig,
    ServerConfig,
    build_demo_system,
    percentile,
    run_load,
    sweep_offered_load,
)


@pytest.fixture(scope="module")
def system():
    return build_demo_system(num_workers=2)


def make_server(system, max_batch_samples=16, max_wait_s=0.002):
    return InferenceServer(
        system.make_cluster(), system.fusion,
        ServerConfig(batching=BatchingConfig(
            max_batch_samples=max_batch_samples, max_wait_s=max_wait_s)))


class TestPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_empty_is_none(self):
        # None (JSON null), not NaN: NaN breaks machine-readable reports.
        assert percentile([], 50) is None


class TestClosedLoop:
    def test_all_requests_complete(self, system):
        with make_server(system) as server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=40, mode="closed",
                                            concurrency=4))
        assert result.completed == 40
        assert result.errors == 0 and result.dropped == 0
        assert len(result.latencies_s) == 40
        assert 0 < result.p50_s <= result.p95_s <= result.p99_s
        assert result.achieved_rps > 0
        assert result.report.completed == 40

    def test_dynamic_batching_beats_batch_one(self, system):
        """Acceptance criterion: batching strictly increases throughput."""
        with make_server(system, max_batch_samples=16,
                         max_wait_s=0.005) as server:
            batched = run_load(server, system.input_shape,
                               LoadgenConfig(num_requests=150, mode="closed",
                                             concurrency=8))
        with make_server(system, max_batch_samples=1,
                         max_wait_s=0.0) as server:
            single = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=150, mode="closed",
                                            concurrency=8))
        assert batched.errors == 0 and single.errors == 0
        assert batched.achieved_rps > single.achieved_rps
        assert batched.report.mean_batch_requests > \
            single.report.mean_batch_requests

    def test_images_per_request(self, system):
        with make_server(system) as server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=10, mode="closed",
                                            concurrency=2,
                                            images_per_request=3))
        assert result.completed == 10
        assert result.report.throughput_sps > result.report.throughput_rps


class TestOpenLoop:
    def test_poisson_arrivals_zero_drops(self, system):
        with make_server(system) as server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=50, mode="open",
                                            offered_rps=400.0))
        assert result.completed == 50
        assert result.errors == 0 and result.dropped == 0
        assert result.offered_rps == 400.0

    def test_sweep_returns_one_result_per_rate(self, system):
        with make_server(system) as server:
            results = sweep_offered_load(server, system.input_shape,
                                         [100.0, 500.0], num_requests=25)
        assert [r.offered_rps for r in results] == [100.0, 500.0]
        for result in results:
            assert result.completed == 25 and result.errors == 0
            # Each rate's report covers only that run, not the whole sweep.
            assert result.report.completed == 25


def test_unknown_mode_rejected(system):
    with make_server(system) as server:
        with pytest.raises(ValueError):
            run_load(server, system.input_shape, LoadgenConfig(mode="sine"))


class TestTraceMode:
    def test_replays_an_explicit_schedule(self, system):
        arrivals = tuple(i * 0.004 for i in range(25))
        with make_server(system) as server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(mode="trace", arrivals=arrivals))
        assert result.completed == 25
        assert result.errors == 0 and result.dropped == 0
        # Mean offered rate over the trace span, not config.offered_rps.
        assert result.offered_rps == pytest.approx(25 / arrivals[-1])

    def test_instant_trace_has_no_offered_rate(self, system):
        with make_server(system) as server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(mode="trace",
                                            arrivals=(0.0, 0.0, 0.0)))
        assert result.completed == 3
        assert result.offered_rps is None

    def test_trace_mode_requires_valid_arrivals(self, system):
        with make_server(system) as server:
            for bad in (None, (), (0.2, 0.1), (-1.0,), (float("nan"),)):
                with pytest.raises(ValueError):
                    run_load(server, system.input_shape,
                             LoadgenConfig(mode="trace", arrivals=bad))


class TestRowSerialization:
    def test_closed_loop_row_survives_allow_nan_false(self, system):
        """Regression: offered_rps was NaN for closed loops, which blew up
        json.dumps(..., allow_nan=False) in --json consumers."""
        import json

        with make_server(system) as server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=8, mode="closed",
                                            concurrency=2))
        assert result.offered_rps is None
        row = result.row()
        assert row["offered_rps"] is None
        json.dumps(row, allow_nan=False)  # must not raise

    def test_row_still_guards_legacy_nan(self, system):
        import dataclasses
        import json

        with make_server(system) as server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=4, mode="closed",
                                            concurrency=2))
        legacy = dataclasses.replace(result, offered_rps=float("nan"))
        assert legacy.row()["offered_rps"] is None
        json.dumps(legacy.row(), allow_nan=False)


class TestSweepSeeds:
    def test_each_rate_gets_an_independent_derived_seed(self, system,
                                                        monkeypatch):
        """Regression: the sweep reused the caller's seed verbatim at every
        rate, correlating all points of the latency curve."""
        from repro.serving import loadgen

        seen = []

        def fake_run_load(server, input_shape, config, make_input=None):
            seen.append(config)
            return "sentinel"

        monkeypatch.setattr(loadgen, "run_load", fake_run_load)
        results = loadgen.sweep_offered_load(None, (3, 8, 8),
                                             [50.0, 100.0, 200.0], seed=7)
        assert results == ["sentinel"] * 3
        seeds = [c.seed for c in seen]
        assert len(set(seeds)) == 3          # pairwise independent streams
        assert seeds != [7, 7, 7]

        seen.clear()
        loadgen.sweep_offered_load(None, (3, 8, 8), [50.0, 100.0, 200.0],
                                   seed=7)
        assert [c.seed for c in seen] == seeds   # deterministic contract
