"""Load-generator tests: open/closed loops, drops, and the batching win."""

import pytest

from repro.serving import (
    BatchingConfig,
    InferenceServer,
    LoadgenConfig,
    ServerConfig,
    build_demo_system,
    percentile,
    run_load,
    sweep_offered_load,
)


@pytest.fixture(scope="module")
def system():
    return build_demo_system(num_workers=2)


def make_server(system, max_batch_samples=16, max_wait_s=0.002):
    return InferenceServer(
        system.make_cluster(), system.fusion,
        ServerConfig(batching=BatchingConfig(
            max_batch_samples=max_batch_samples, max_wait_s=max_wait_s)))


class TestPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_empty_is_none(self):
        # None (JSON null), not NaN: NaN breaks machine-readable reports.
        assert percentile([], 50) is None


class TestClosedLoop:
    def test_all_requests_complete(self, system):
        with make_server(system) as server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=40, mode="closed",
                                            concurrency=4))
        assert result.completed == 40
        assert result.errors == 0 and result.dropped == 0
        assert len(result.latencies_s) == 40
        assert 0 < result.p50_s <= result.p95_s <= result.p99_s
        assert result.achieved_rps > 0
        assert result.report.completed == 40

    def test_dynamic_batching_beats_batch_one(self, system):
        """Acceptance criterion: batching strictly increases throughput."""
        with make_server(system, max_batch_samples=16,
                         max_wait_s=0.005) as server:
            batched = run_load(server, system.input_shape,
                               LoadgenConfig(num_requests=150, mode="closed",
                                             concurrency=8))
        with make_server(system, max_batch_samples=1,
                         max_wait_s=0.0) as server:
            single = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=150, mode="closed",
                                            concurrency=8))
        assert batched.errors == 0 and single.errors == 0
        assert batched.achieved_rps > single.achieved_rps
        assert batched.report.mean_batch_requests > \
            single.report.mean_batch_requests

    def test_images_per_request(self, system):
        with make_server(system) as server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=10, mode="closed",
                                            concurrency=2,
                                            images_per_request=3))
        assert result.completed == 10
        assert result.report.throughput_sps > result.report.throughput_rps


class TestOpenLoop:
    def test_poisson_arrivals_zero_drops(self, system):
        with make_server(system) as server:
            result = run_load(server, system.input_shape,
                              LoadgenConfig(num_requests=50, mode="open",
                                            offered_rps=400.0))
        assert result.completed == 50
        assert result.errors == 0 and result.dropped == 0
        assert result.offered_rps == 400.0

    def test_sweep_returns_one_result_per_rate(self, system):
        with make_server(system) as server:
            results = sweep_offered_load(server, system.input_shape,
                                         [100.0, 500.0], num_requests=25)
        assert [r.offered_rps for r in results] == [100.0, 500.0]
        for result in results:
            assert result.completed == 25 and result.errors == 0
            # Each rate's report covers only that run, not the whole sweep.
            assert result.report.completed == 25


def test_unknown_mode_rejected(system):
    with make_server(system) as server:
        with pytest.raises(ValueError):
            run_load(server, system.input_shape, LoadgenConfig(mode="sine"))
