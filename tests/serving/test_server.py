"""End-to-end serving tests over a real 2-worker process fleet."""

import threading
import time

import numpy as np
import pytest

from repro.serving import (
    BatchingConfig,
    InferenceServer,
    ServerConfig,
    build_demo_system,
)


@pytest.fixture(scope="module")
def system():
    return build_demo_system(num_workers=2)


def make_server(system, max_batch_samples=8, max_wait_s=0.002,
                worker_timeout_s=10.0):
    return InferenceServer(
        system.make_cluster(), system.fusion,
        ServerConfig(batching=BatchingConfig(
            max_batch_samples=max_batch_samples, max_wait_s=max_wait_s),
            worker_timeout_s=worker_timeout_s))


def inputs(system, count, seed=0):
    return np.random.default_rng(seed).normal(
        size=(count, *system.input_shape)).astype(np.float32)


class TestServing:
    def test_served_labels_match_local_fusion(self, system):
        x = inputs(system, 5)
        with make_server(system) as server:
            labels = server.infer(x)
        np.testing.assert_array_equal(labels, system.local_fused_labels(x))

    def test_single_image_request_is_promoted_to_batch(self, system):
        x = inputs(system, 1)[0]                  # (C, H, W)
        with make_server(system) as server:
            labels = server.infer(x)
        assert labels.shape == (1,)

    def test_concurrent_requests_all_resolve_correctly(self, system):
        with make_server(system) as server:
            chunks = [inputs(system, 1 + i % 3, seed=i) for i in range(12)]
            futures = [server.submit(c) for c in chunks]
            results = [f.result(30.0) for f in futures]
        for chunk, result in zip(chunks, results):
            np.testing.assert_array_equal(result,
                                          system.local_fused_labels(chunk))

    def test_requests_are_dynamically_batched(self, system):
        with make_server(system, max_batch_samples=16,
                         max_wait_s=0.05) as server:
            futures = [server.submit(inputs(system, 1, seed=i))
                       for i in range(6)]
            for future in futures:
                future.result(30.0)
            merged = [f.telemetry.batch_requests for f in futures]
        assert max(merged) > 1                     # at least one coalesced batch

    def test_telemetry_breakdown_is_populated(self, system):
        with make_server(system) as server:
            future = server.submit(inputs(system, 2))
            future.result(30.0)
        telemetry = future.telemetry
        assert telemetry.total_s > 0
        assert telemetry.queue_s >= 0
        assert telemetry.gather_s > 0
        assert telemetry.fusion_s > 0
        assert telemetry.total_s >= telemetry.service_s
        assert telemetry.batch_requests >= 1
        assert telemetry.num_samples == 2
        assert not telemetry.degraded and telemetry.error is None

    def test_stats_report_fields(self, system):
        with make_server(system) as server:
            for _ in range(4):
                server.infer(inputs(system, 1))
            report = server.stats()
        assert report.completed == 4 and report.failed == 0
        assert report.throughput_rps > 0
        assert report.latency_p50_s <= report.latency_p95_s \
            <= report.latency_p99_s
        assert report.worker_health == {"w0": "up", "w1": "up"}


class TestDegradedServing:
    def test_killed_worker_degrades_to_zero_filled_fusion(self, system):
        x = inputs(system, 4)
        with make_server(system, worker_timeout_s=5.0) as server:
            healthy = server.infer(x)
            server.cluster.kill_worker("w0")
            deadline = time.perf_counter() + 10.0
            degraded = server.infer(x)
            while not server.stats().degraded_requests \
                    and time.perf_counter() < deadline:
                degraded = server.infer(x)         # kill may land mid-batch
            report = server.stats()
        np.testing.assert_array_equal(healthy, system.local_fused_labels(x))
        np.testing.assert_array_equal(
            degraded, system.local_fused_labels(x, zero_workers=(0,)))
        assert report.worker_health["w0"] != "up"
        assert report.worker_health["w1"] == "up"
        assert report.degraded_requests > 0
        assert report.failed == 0                  # degraded, never dropped

    def test_mid_stream_kill_keeps_every_request_answered(self, system):
        with make_server(system, worker_timeout_s=5.0) as server:
            threading.Timer(0.05, server.cluster.kill_worker,
                            ("w1",)).start()
            futures = []
            for i in range(40):
                futures.append(server.submit(inputs(system, 1, seed=i)))
                time.sleep(0.005)
            labels = [f.result(30.0) for f in futures]
            report = server.stats()
        assert len(labels) == 40
        assert report.failed == 0
        assert report.degraded_requests > 0
        assert any(f.telemetry.workers_down == ("w1",) for f in futures)

    def test_all_workers_down_fails_loudly_not_silently(self, system):
        from repro.serving import RequestError

        x = inputs(system, 2)
        with make_server(system, worker_timeout_s=5.0) as server:
            server.infer(x)
            server.cluster.kill_worker("w0")
            server.cluster.kill_worker("w1")
            # An all-zeros fusion answer would be a constant-label lie, so
            # a fully-dead fleet surfaces a typed error instead.
            with pytest.raises(RequestError, match="no live workers"):
                server.infer(x)
            report = server.stats()
        assert all(h != "up" for h in report.worker_health.values())
        assert report.failed >= 1


class TestBadRequests:
    def test_shape_mismatch_rejected_at_submit(self, system):
        from repro.serving import RequestError

        with make_server(system) as server:
            good = server.submit(inputs(system, 2))
            with pytest.raises(RequestError, match="bad request shape"):
                server.submit(np.zeros((1, 3, 16, 16), dtype=np.float32))
            # The offender is counted as dropped; innocents still resolve.
            assert server.dropped == 1
            np.testing.assert_array_equal(
                good.result(30.0), system.local_fused_labels(good.x))

    def test_all_workers_erroring_fails_batch_but_not_fleet(self, system):
        from repro.serving import RequestError

        # Bypass submit-side validation to force an in-worker error: every
        # worker replies ("error", ...).  With no features at all the batch
        # must fail loudly (an all-zeros fusion would fabricate a constant
        # label), but the workers survive and keep serving valid requests.
        with make_server(system) as server:
            server._input_shape = None
            bad = np.zeros((2, 5, 8, 8), dtype=np.float32)
            with pytest.raises(RequestError, match="no worker produced"):
                server.submit(bad).result(30.0)
            assert all(server.cluster.is_alive(w) for w in ("w0", "w1"))
            x = inputs(system, 3)
            healthy = server.infer(x)
            report = server.stats()
        np.testing.assert_array_equal(healthy, system.local_fused_labels(x))
        assert report.worker_health == {"w0": "up", "w1": "up"}
        assert report.failed == 1 and report.degraded_requests == 0


class TestLifecycle:
    def test_stop_is_idempotent_and_rejects_new_requests(self, system):
        server = make_server(system)
        server.start()
        server.infer(inputs(system, 1))
        server.stop()
        server.stop()                              # no-op
        with pytest.raises(RuntimeError):
            server.submit(inputs(system, 1))

    def test_submit_before_start_raises(self, system):
        server = make_server(system)
        with pytest.raises(RuntimeError):
            server.submit(inputs(system, 1))

    def test_double_start_raises(self, system):
        server = make_server(system)
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_restart_after_stop_serves_again(self, system):
        server = make_server(system)
        x = inputs(system, 2)
        server.start()
        server.infer(x)
        server.stop()
        server.start()                             # fresh queue + cluster
        try:
            labels = server.infer(x)
        finally:
            server.stop()
        np.testing.assert_array_equal(labels, system.local_fused_labels(x))

    def test_post_stop_stats_keep_worker_health(self, system):
        with make_server(system, worker_timeout_s=5.0) as server:
            server.infer(inputs(system, 1))
            server.cluster.kill_worker("w0")
            deadline = time.perf_counter() + 10.0
            while not server.stats().degraded_requests \
                    and time.perf_counter() < deadline:
                server.infer(inputs(system, 1))
        # Cluster shutdown cleared its down-map, but the report read after
        # the with-block must still show the failure.
        report = server.stats()
        assert report.worker_health["w0"] != "up"
        assert report.degraded_requests > 0
