"""ServingReport aggregation tests, incl. the empty-window JSON bugfix."""

import json
import time

import numpy as np

from repro.serving import (
    InferenceServer,
    RequestTelemetry,
    ServingReport,
    build_demo_system,
    percentile,
)


def record(request_id: int, total_s: float = 0.01,
           error: str | None = None) -> RequestTelemetry:
    start = 100.0
    return RequestTelemetry(request_id=request_id, num_samples=1,
                            enqueued_at=start, dispatched_at=start,
                            completed_at=start + total_s, error=error)


class TestEmptyWindow:
    def test_empty_report_has_null_stats(self):
        report = ServingReport.from_records([], wall_seconds=1.0)
        assert report.completed == 0 and report.failed == 0
        assert report.latency_p50_s is None
        assert report.latency_p95_s is None
        assert report.latency_p99_s is None
        assert report.latency_mean_s is None
        assert report.queue_mean_s is None
        assert report.mean_batch_requests is None

    def test_empty_report_serializes_to_valid_json(self):
        report = ServingReport.from_records(
            [], wall_seconds=1.0, worker_health={"w0": "up"})
        # allow_nan=False is the strict-JSON mode that used to explode
        # (json.dumps emits the non-standard token NaN otherwise).
        text = json.dumps(report.to_dict(), allow_nan=False)
        parsed = json.loads(text)
        assert parsed["latency_p50_s"] is None
        assert parsed["completed"] == 0

    def test_all_failed_report_is_json_safe(self):
        records = [record(i, error="boom") for i in range(3)]
        report = ServingReport.from_records(records, wall_seconds=1.0)
        assert report.failed == 3 and report.completed == 0
        assert report.latency_p99_s is None
        json.dumps(report.to_dict(), allow_nan=False)

    def test_empty_row_renders(self):
        row = ServingReport.from_records([], wall_seconds=1.0).row()
        assert row["p50_ms"] is None and row["completed"] == 0

    def test_percentile_none_for_empty(self):
        assert percentile([], 50) is None
        assert percentile([1.0, 3.0], 50) == 2.0


class TestZeroCompletedServer:
    def test_server_with_no_requests_reports_cleanly(self):
        system = build_demo_system(num_workers=1, transport="inprocess")
        server = InferenceServer(system.make_cluster(), system.fusion)
        with server:
            time.sleep(0.01)           # serve nothing
        report = server.stats()
        assert report.completed == 0
        json.dumps(report.to_dict(), allow_nan=False)


class TestPopulatedWindow:
    def test_stats_are_floats_when_requests_completed(self):
        records = [record(i, total_s=0.01 * (i + 1)) for i in range(10)]
        report = ServingReport.from_records(records, wall_seconds=1.0)
        assert report.completed == 10
        assert isinstance(report.latency_p50_s, float)
        assert np.isclose(report.latency_p50_s, 0.055)
        json.dumps(report.to_dict(), allow_nan=False)
